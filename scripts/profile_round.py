#!/usr/bin/env python
"""Profile one engine round with cProfile and print the hot functions.

The companion tool to ``benchmarks/bench_hot_path.py``: where the bench
answers "how fast is the server path", this answers "where does a round
actually spend its time".  It builds a small experiment, runs warmup
rounds (pool/data startup excluded), profiles ``Engine.run_round`` and
prints the top functions by cumulative time.

Usage::

    PYTHONPATH=src python scripts/profile_round.py
    PYTHONPATH=src python scripts/profile_round.py --clients 64 --rounds 5 \
        --sort tottime --top 40
    PYTHONPATH=src python scripts/profile_round.py --executor process --workers 2
    PYTHONPATH=src python scripts/profile_round.py --mode semisync
    PYTHONPATH=src python scripts/profile_round.py --aggregator trimmed_mean
    PYTHONPATH=src python scripts/profile_round.py --client

The profiled engine always carries a live :mod:`repro.obs` recorder, so
every run ends with a per-phase wall breakdown and the metric summary
table sourced from the metrics registry — the same numbers ``--trace`` /
``--metrics-out`` runs export.

``--client`` adds a breakdown of where *local-step* time goes — the
client-side phases (forward, backward, attach ops, optimizer, clipping,
broadcast adoption, upload) the plane-backed flat path accelerates — and
restricts the raw listing to client-side code.

See docs/performance.md and docs/observability.md for how to read the
output.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

#: client-side phases reported by --client: label -> (file basename | None,
#: function) matchers.  Each matcher targets the phase's *top-level* function
#: in the local-training call tree (stats are strip_dirs()'d), so summing
#: cumulative times never double-counts across phases.
CLIENT_PHASES = [
    ("forward + loss", [("fedmodel.py", "forward"),
                        ("fedmodel.py", "forward_with_features"),
                        ("losses.py", "forward")]),
    ("backward", [("fedmodel.py", "backward")]),
    ("zero_grad", [("module.py", "zero_grad")]),
    ("attach ops (modify_gradients)", [(None, "modify_gradients")]),
    ("gradient clipping", [("base.py", "maybe_clip")]),
    ("optimizer step", [("sgd.py", "step"), ("adam.py", "step")]),
    ("broadcast adoption", [("fedmodel.py", "set_weights_flat"),
                            ("module.py", "set_weights")]),
    ("upload snapshot", [("module.py", "get_weights_flat"),
                         ("types.py", "from_flat")]),
    ("strategy round hooks", [(None, "on_round_start"), (None, "on_round_end")]),
]


def _client_breakdown(stats: pstats.Stats, rounds: int) -> None:
    """Print cumulative seconds per client-side phase (per profiled run)."""
    totals = {label: 0.0 for label, _ in CLIENT_PHASES}
    for (path, _line, func), (_cc, _nc, _tt, ct, _callers) in stats.stats.items():
        if path in ("callbacks.py", "engine.py"):
            continue  # engine-side hooks share names with strategy hooks
        for label, matchers in CLIENT_PHASES:
            if any((mod is None or path == mod) and func == fn
                   for mod, fn in matchers):
                totals[label] += ct
                break
    # execute_task is the denominator: it spans broadcast adoption (in
    # build_round_context) plus run_client_round, so every phase above is
    # inside it and shares can never sum past 100%.
    total_key = next(
        (k for k in stats.stats if k[2] == "execute_task"), None)
    task_total = stats.stats[total_key][3] if total_key else None
    print("\n--- client-side breakdown (cumulative seconds, "
          f"{rounds} profiled rounds) ---")
    width = max(len(label) for label, _ in CLIENT_PHASES)
    for label, _ in CLIENT_PHASES:
        share = (f"  {100.0 * totals[label] / task_total:5.1f}% of client tasks"
                 if task_total else "")
        print(f"  {label.ljust(width)}  {totals[label]:8.4f}s{share}")
    if task_total is not None:
        print(f"  {'client task total'.ljust(width)}  {task_total:8.4f}s")


def _phase_breakdown(metrics, rounds: int) -> None:
    """Per-phase wall seconds from the registry's labeled phase counters."""
    phases = []
    for name in metrics.names():
        if name.startswith("fl_phase_seconds_total{"):
            label = name.split('phase="', 1)[1].rstrip('"}')
            phases.append((label, metrics.get(name).value))
    if not phases:
        return
    total = sum(v for _, v in phases) or 1.0
    print(f"\n--- engine phase breakdown ({rounds} profiled rounds, "
          "from the metrics registry) ---")
    width = max(len(label) for label, _ in phases)
    for label, seconds in sorted(phases, key=lambda p: -p[1]):
        print(f"  {label.ljust(width)}  {seconds:8.4f}s  {100.0 * seconds / total:5.1f}%")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="tiny")
    parser.add_argument("--model", default="mlp")
    parser.add_argument("--method", default="fedavg")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--clients-per-round", type=int, default=None,
                        help="default: all clients every round")
    parser.add_argument("--rounds", type=int, default=3,
                        help="profiled rounds (after one warmup round)")
    parser.add_argument("--batch-size", type=int, default=20)
    parser.add_argument("--executor", default="serial",
                        choices=["serial", "threaded", "process"])
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--mode", default="sync",
                        choices=["sync", "semisync", "async"],
                        help="server mode to profile (the event-driven "
                             "modes run on the virtual-clock scheduler)")
    parser.add_argument("--aggregator", default="mean",
                        help="server aggregation rule (mean, or a robust "
                             "rule from repro.fl.robust)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--top", type=int, default=30)
    parser.add_argument("--client", action="store_true",
                        help="summarize local-step time by client-side phase "
                             "and restrict the listing to client-side code")
    parser.add_argument("--metrics", action="store_true",
                        help="also print the full metric summary table")
    args = parser.parse_args()

    import os
    import tempfile

    from repro.api import ExperimentSpec
    from repro.api.registry import build_mode

    # A metrics_out path turns the obs recorder on end-to-end — including
    # the process pool's worker shards, whose obs flag is baked into the
    # picklable worker spec at engine construction.  The exposition file
    # itself is a throwaway; the breakdown below reads the live registry.
    fd, metrics_tmp = tempfile.mkstemp(prefix="profile_round_", suffix=".prom")
    os.close(fd)
    spec = ExperimentSpec(
        dataset=args.dataset, model=args.model, method=args.method,
        n_clients=args.clients,
        clients_per_round=args.clients_per_round or args.clients,
        rounds=args.rounds + 1, batch_size=args.batch_size,
        eval_every=10_000,  # keep evaluation out of the profile
        executor=args.executor, n_workers=args.workers,
        mode=args.mode, aggregator=args.aggregator,
        metrics_out=metrics_tmp,
    )
    engine = build_mode(args.mode, spec=spec, data=spec.build_data())
    recorder = engine.obs
    try:
        engine.run_round()  # warmup: JIT-free, but primes caches and pools
        recorder.metrics.drain()  # keep the breakdown to profiled rounds

        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(args.rounds):
            engine.run_round()
        profiler.disable()
    finally:
        engine.close()
        os.unlink(metrics_tmp)

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort)
    if args.client:
        # Paths are strip_dirs()'d basenames here, so filter on the
        # client-side file names themselves (strategies, optimizers, nn
        # layers, the client/executor plumbing).
        stats.print_stats(
            r"client|executor|fed|scaffold|mime|moon|slowmo|losses|module"
            r"|parameter|linear|conv|activations|sgd|adam|base|utils", args.top)
        _client_breakdown(stats, args.rounds)
    else:
        stats.print_stats(args.top)
    _phase_breakdown(recorder.metrics, args.rounds)
    if args.metrics:
        print("\n--- metric summary ---")
        print(recorder.summary_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
