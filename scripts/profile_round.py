#!/usr/bin/env python
"""Profile one engine round with cProfile and print the hot functions.

The companion tool to ``benchmarks/bench_hot_path.py``: where the bench
answers "how fast is the server path", this answers "where does a round
actually spend its time".  It builds a small experiment, runs warmup
rounds (pool/data startup excluded), profiles ``Engine.run_round`` and
prints the top functions by cumulative time.

Usage::

    PYTHONPATH=src python scripts/profile_round.py
    PYTHONPATH=src python scripts/profile_round.py --clients 64 --rounds 5 \
        --sort tottime --top 40
    PYTHONPATH=src python scripts/profile_round.py --executor process --workers 2

See docs/performance.md for how to read the output.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="tiny")
    parser.add_argument("--model", default="mlp")
    parser.add_argument("--method", default="fedavg")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--clients-per-round", type=int, default=None,
                        help="default: all clients every round")
    parser.add_argument("--rounds", type=int, default=3,
                        help="profiled rounds (after one warmup round)")
    parser.add_argument("--batch-size", type=int, default=20)
    parser.add_argument("--executor", default="serial",
                        choices=["serial", "threaded", "process"])
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--top", type=int, default=30)
    args = parser.parse_args()

    from repro.api import ExperimentSpec
    from repro.api.engine import Engine

    spec = ExperimentSpec(
        dataset=args.dataset, model=args.model, method=args.method,
        n_clients=args.clients,
        clients_per_round=args.clients_per_round or args.clients,
        rounds=args.rounds + 1, batch_size=args.batch_size,
        eval_every=10_000,  # keep evaluation out of the profile
    )
    engine = Engine(
        spec.build_data(), spec.build_strategy(), spec.build_config(),
        model_name=spec.model, executor=args.executor, n_workers=args.workers,
    )
    try:
        engine.run_round()  # warmup: JIT-free, but primes caches and pools

        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(args.rounds):
            engine.run_round()
        profiler.disable()
    finally:
        engine.close()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
