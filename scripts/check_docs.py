#!/usr/bin/env python
"""Docs health check, run by the CI docs job and ``tests/test_docs.py``.

Two checks, stdlib only:

1. **Intra-repo Markdown links resolve.**  Every relative link target in
   every tracked ``*.md`` file must exist; ``file.md#anchor`` links must
   also match a heading in the target file (GitHub slug rules, simplified).
   Links inside fenced code blocks and external (``scheme://`` / ``mailto:``)
   links are ignored.
2. **The README quickstart runs.**  The first ``python`` code block of
   ``README.md`` is executed (with ``src/`` on the path) so the 60-second
   quickstart can never rot.

Exit code 0 = healthy; failures are listed one per line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def _strip_fences(text: str) -> str:
    """Blank out fenced code blocks so code examples are never parsed."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
        else:
            out.append("" if in_fence else line)
    return "\n".join(out)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug, simplified: lowercase, drop punctuation,
    spaces become hyphens (inline code ticks are stripped first)."""
    heading = heading.replace("`", "").strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return re.sub(r"\s+", "-", heading)


def _anchors(md_path: Path) -> set:
    text = _strip_fences(md_path.read_text(encoding="utf-8"))
    return {
        _github_slug(m.group(1))
        for line in text.splitlines()
        if (m := HEADING_RE.match(line))
    }


def md_files() -> list:
    """Every tracked-looking Markdown file (dot-directories excluded);
    the single source of truth for what the docs job and the tier-1 docs
    tests both check."""
    return sorted(
        p for p in REPO.rglob("*.md")
        if not any(part.startswith(".") for part in p.relative_to(REPO).parts)
    )


def check_links(md_files) -> list:
    errors = []
    for md in md_files:
        text = _strip_fences(md.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(text):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (md.parent / path_part).resolve()
            rel = md.relative_to(REPO)
            if not resolved.exists():
                errors.append(f"{rel}: broken link -> {target}")
            elif anchor and resolved.suffix == ".md":
                if _github_slug(anchor) not in _anchors(resolved):
                    errors.append(f"{rel}: missing anchor -> {target}")
    return errors


def check_quickstart(readme: Path) -> list:
    text = readme.read_text(encoding="utf-8")
    m = re.search(r"```python\n(.*?)```", text, flags=re.S)
    if not m:
        return ["README.md: no ```python quickstart block found"]
    snippet = m.group(1)
    sys.path.insert(0, str(REPO / "src"))
    try:
        exec(compile(snippet, "README.md#quickstart", "exec"), {"__name__": "__quickstart__"})
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        return [f"README.md quickstart failed: {type(exc).__name__}: {exc}"]
    return []


def main() -> int:
    corpus = md_files()
    errors = check_links(corpus)
    errors += check_quickstart(REPO / "README.md")
    for err in errors:
        print(err)
    if not errors:
        print(f"docs ok: {len(corpus)} markdown files, quickstart ran")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
