"""Time-to-target-accuracy: sync vs semi-sync vs async under stragglers.

The paper argues FedTrip's value in *rounds*; deployments care about
*hours*.  This bench prices the same workload (mini_mnist / MLP / FedTrip,
Dir-0.5, 8-of-10) on the ``iot`` device preset with a strong compute-speed
spread (heterogeneity 12: the slowest client is ~12x the fastest) and asks
each server mode how many **simulated hours** it needs to first reach the
target test accuracy:

* **sync** — every round waits for the slowest of the 8 selected clients;
  with 8-of-10 selection some near-worst straggler is almost always in the
  round, so the straggler sets the pace (the classic synchronous-FL tax).
* **semisync** — over-selection: 8 clients dispatched, the round closes on
  the first ``buffer_size=4`` arrivals; stragglers keep training and land
  in a later round with measured staleness.
* **async** — 8 clients training at all times, each arriving update mixed
  with the staleness-decayed FedAsync weight.

The regime matters and is chosen deliberately: with mild heterogeneity or
small selections, synchronous rounds converge in so few rounds that
dropping stragglers' data costs more than their time (semisync loses).
The over-selected, heavy-tail regime here is the one the async-FL
literature targets — and the one the assertion pins.

All three modes draw per-client durations from the *same*
:class:`~repro.fl.systems.SystemModel`, so the comparison isolates the
server protocol.  The headline assertion is the semisync-beats-sync
speedup; async is reported (its accuracy-per-update is lower, so where it
lands depends on the staleness profile).  A determinism cross-check reruns
semisync and asserts byte-identical histories.

Output: ``benchmarks/out/async_time_to_target.json`` (published as a CI
artifact).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, save_json  # noqa: E402

from repro.api import ExperimentSpec, run_experiment  # noqa: E402

TARGET_ACC = 80.0
#: one sync round trains 8 clients; async aggregates one update per round,
#: so its round budget is 8x for an equal client-round budget.
SYNC_ROUNDS = 40
ASYNC_ROUNDS = 320

WORKLOAD = dict(
    dataset="mini_mnist", model="mlp", method="fedtrip",
    partition="dirichlet", alpha=0.5,
    n_clients=10, clients_per_round=8, batch_size=50, lr=0.05, seed=0,
    device_profile="iot", heterogeneity=12.0,
    target_accuracy=TARGET_ACC,
)

MODES = [
    ("sync", dict(mode="sync", rounds=SYNC_ROUNDS)),
    ("semisync", dict(mode="semisync", rounds=SYNC_ROUNDS * 4, buffer_size=4)),
    # Async sees measured staleness up to ~7 here; FedTrip's xi-scaled push
    # at that staleness overshoots without the global clip (the Fig. 7
    # large-mu/xi degradation regime), so the async cell runs the config's
    # stability lever.
    ("async", dict(mode="async", rounds=ASYNC_ROUNDS, max_grad_norm=1.0)),
]


def _spec(mode_kwargs) -> ExperimentSpec:
    return ExperimentSpec(**{**WORKLOAD, **mode_kwargs})


def _measure(data, mode_kwargs):
    hist = run_experiment(_spec(mode_kwargs), data=data)
    seconds = hist.time_to_accuracy(TARGET_ACC)
    return {
        "reached_target": seconds is not None,
        "simulated_hours_to_target": None if seconds is None else seconds / 3600.0,
        "rounds_run": len(hist),
        "best_accuracy": hist.best_accuracy(),
        "total_simulated_hours": float(hist.records[-1].virtual_time_s) / 3600.0,
        "mean_staleness": hist.mean_staleness(),
        "total_gflops": hist.total_gflops(),
    }


def _determinism_check(data) -> bool:
    _, kwargs = MODES[1]
    a = run_experiment(_spec(kwargs), data=data)
    b = run_experiment(_spec(kwargs), data=data)
    strip = lambda h: [  # noqa: E731 - wall/phase seconds are host time
        {k: v for k, v in r.to_dict().items()
         if k not in ("wall_seconds", "phase_seconds")}
        for r in h.records
    ]
    return strip(a) == strip(b)


def _run():
    data = _spec({}).build_data()
    results = {name: _measure(data, kwargs) for name, kwargs in MODES}
    deterministic = _determinism_check(data)

    sync_h = results["sync"]["simulated_hours_to_target"]
    semi_h = results["semisync"]["simulated_hours_to_target"]
    payload = {
        "workload": {**WORKLOAD, "target_accuracy": TARGET_ACC,
                     "sync_rounds": SYNC_ROUNDS, "async_rounds": ASYNC_ROUNDS},
        "results": results,
        "semisync_speedup_vs_sync": (
            None if not (sync_h and semi_h) else round(sync_h / semi_h, 3)
        ),
        "deterministic_semisync_rerun": deterministic,
    }
    save_json("async_time_to_target", payload)

    rows = [
        [name,
         (f"{r['simulated_hours_to_target'] * 3600.0:.1f}"
          if r["reached_target"] else "-"),
         r["rounds_run"], f"{r['best_accuracy']:.2f}",
         f"{r['mean_staleness']:.2f}" if r["mean_staleness"] == r["mean_staleness"] else "-"]
        for name, r in results.items()
    ]
    print_table(
        f"Simulated seconds to {TARGET_ACC:.0f}% "
        f"(iot preset, heterogeneity {WORKLOAD['heterogeneity']:g}, 8-of-10)",
        ["mode", "secs to target", "rounds", "best %", "mean staleness"], rows,
    )

    assert deterministic, "semisync rerun diverged — event loop is not deterministic"
    assert results["sync"]["reached_target"], "sync never reached target"
    assert results["semisync"]["reached_target"], "semisync never reached target"
    assert semi_h < sync_h, (
        f"semisync must beat sync under stragglers: {semi_h:.3f}h vs {sync_h:.3f}h"
    )
    return payload


def test_async_time_to_target(benchmark):
    from conftest import run_once

    run_once(benchmark, _run)


if __name__ == "__main__":
    _run()
