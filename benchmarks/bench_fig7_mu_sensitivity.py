"""Fig. 7: sensitivity of FedTrip to the regularization strength mu.

Sweeps mu over the paper's [0.1, 2.5] range on (a-c) CNN / MNIST-like data
under Dir-0.1, Dir-0.5 and Orthogonal-5, and (d) MLP / FMNIST-like data
under Dir-0.5, reporting best accuracy and rounds-to-target.

Paper's shape: small mu converges slowly; moderate mu is the accuracy
sweet spot; large mu keeps accelerating briefly but trades accuracy away,
with the orthogonal setting more stable in mu than Dirichlet.

Mini-scale note: our runs use lr ~3x the paper's, so the sweet spot and the
degradation onset shift to smaller mu by roughly that factor (the paper's
0.4-1.5 window maps to ~0.1-0.5 here); the *shape* — rise, plateau,
degradation — is what this bench asserts.
"""

from __future__ import annotations

from conftest import run_once
from harness import print_table, run_case, save_json

MUS = (0.05, 0.1, 0.2, 0.4, 0.8, 1.5, 2.5)
ROUNDS = 30
PANELS = [
    ("CNN/MNIST Dir-0.1", "mini_mnist", "cnn", 0.02,
     {"partition": "dirichlet", "alpha": 0.1}, 80.0),
    ("CNN/MNIST Dir-0.5", "mini_mnist", "cnn", 0.02,
     {"partition": "dirichlet", "alpha": 0.5}, 90.0),
    ("CNN/MNIST Orth-5", "mini_mnist", "cnn", 0.02,
     {"partition": "orthogonal", "n_clusters": 5}, 80.0),
    ("MLP/FMNIST Dir-0.5", "mini_fmnist", "mlp", 0.05,
     {"partition": "dirichlet", "alpha": 0.5}, 88.0),
]


def _run():
    results = {}
    for label, dataset, model, lr, pkw, target in PANELS:
        panel = {}
        for mu in MUS:
            hist = run_case(dataset, model, "fedtrip", rounds=ROUNDS, lr=lr,
                            strategy_overrides={"mu": mu}, **pkw)
            panel[str(mu)] = {
                "best_accuracy": hist.best_accuracy(),
                "final5": hist.final_accuracy_stats(last_k=5)["mean"],
                "rounds_to_target": hist.rounds_to_accuracy(target),
            }
        results[label] = {"target": target, "sweep": panel}
    return results


def test_fig7_mu_sensitivity(benchmark):
    results = run_once(benchmark, _run)

    for label, case in results.items():
        rows = [[mu, f"{v['best_accuracy']:.2f}", f"{v['final5']:.2f}",
                 str(v["rounds_to_target"]) if v["rounds_to_target"] else f">{ROUNDS}"]
                for mu, v in case["sweep"].items()]
        print_table(f"Fig. 7 [{label}] target={case['target']:.0f}%",
                    ["mu", "best acc", "final5", "rounds to target"], rows)
    save_json("fig7", results)

    for label, case in results.items():
        sweep = case["sweep"]
        best_by_mu = {float(mu): v["best_accuracy"] for mu, v in sweep.items()}
        peak_mu = max(best_by_mu, key=best_by_mu.get)
        # Shape 1: the accuracy peak is interior — not at the largest mu.
        assert peak_mu < max(MUS), f"{label}: accuracy peak at the mu boundary"
        # Shape 2: the largest mu degrades accuracy vs the peak.
        assert best_by_mu[max(MUS)] < best_by_mu[peak_mu] - 0.5, label
    # Shape 3: FedTrip converges successfully (hits target for some mu)
    # in every panel — the paper's "under all settings, FedTrip eventually
    # converges successfully".
    for label, case in results.items():
        assert any(v["rounds_to_target"] is not None for v in case["sweep"].values()), label
