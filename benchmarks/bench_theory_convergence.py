"""Theorem 1: numeric evaluation of the convergence-analysis quantities.

Checks the three analytic claims of Sec. IV-C:

1. FedTrip's decrease coefficient rho equals FedProx's (identical first
   three terms of Eq. 14);
2. Q_t's coefficient E[xi] = p ln p/(p-1) is monotonically increasing in
   the participation rate p — low participation slows FedTrip's extra gain;
3. with FedProx's example mu = 6 L B^2 the descent condition rho > 0 holds.

Also validates E[xi] against a Monte-Carlo simulation of the actual
client-sampling process (geometric staleness).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import print_table, save_json
from repro.analysis import compare_fedprox_fedtrip, expected_xi, rho, suggested_mu


def _monte_carlo_exi(p: float, rounds: int = 40_000, seed: int = 0) -> float:
    """Empirical E[xi_t] as t -> inf: for a client participating i.i.d. with
    probability p each round, xi is the gap since last participation.

    The stationary expectation of the *observed* gap at participation times
    is E[geometric(p)] = 1/p; the paper's E[xi^t] = p ln p/(p-1) instead
    weights by the discounted contribution over the optimization horizon —
    we verify our closed form against direct numerical integration of the
    paper's expression rather than the raw geometric mean.
    """
    # Direct numerical check: p ln p / (p-1) = p * integral_0^1 x^{... } —
    # evaluate via the series p * sum_{s>=1} (1-p)^{s-1} / s = -p ln p/(p-1).
    s = np.arange(1, 5000)
    series = p * np.sum((1 - p) ** (s - 1) / s)
    return float(series)


def _run():
    ps = [0.08, 0.2, 0.4, 0.8, 1.0]
    rows = []
    for p in ps:
        analytic = expected_xi(p)
        series = _monte_carlo_exi(p)
        rows.append({"p": p, "E_xi_closed_form": analytic, "E_xi_series": series})
    mu_ex = suggested_mu(L=1.0, B=1.0)
    cmp = compare_fedprox_fedtrip(mu=mu_ex, L=1.0, B=1.0, participation_rate=0.4)
    return {"exi": rows, "mu_example": mu_ex, "comparison": cmp.summary(),
            "rho_small_mu": rho(0.05, 1.0, 1.0)}


def test_theory_convergence(benchmark):
    out = run_once(benchmark, _run)

    print_table(
        "Theorem 1: E[xi] = p ln p / (p-1)",
        ["p", "closed form", "series check"],
        [[f"{r['p']:.2f}", f"{r['E_xi_closed_form']:.4f}", f"{r['E_xi_series']:.4f}"]
         for r in out["exi"]],
    )
    print_table(
        "Theorem 1: FedProx vs FedTrip at mu = 6LB^2",
        ["rho fedprox", "rho fedtrip", "Q_t coeff", "fedtrip strictly faster"],
        [[f"{out['comparison']['rho_fedprox']:.4f}",
          f"{out['comparison']['rho_fedtrip']:.4f}",
          f"{out['comparison']['qt_coefficient']:.4f}",
          str(bool(out["comparison"]["fedtrip_strictly_faster"]))]],
    )
    save_json("theory", out)

    # Claim 1: identical rho.
    assert out["comparison"]["rho_fedprox"] == out["comparison"]["rho_fedtrip"]
    # Claim 2: monotone E[xi], and closed form matches the series identity
    # p * sum (1-p)^{s-1}/s = p ln p/(p-1) to high precision.
    vals = [r["E_xi_closed_form"] for r in out["exi"]]
    assert all(a < b or b == 1.0 for a, b in zip(vals, vals[1:]))
    for r in out["exi"]:
        assert abs(r["E_xi_closed_form"] - r["E_xi_series"]) < 1e-6
    # Claim 3: descent holds at the example mu, fails for tiny mu.
    assert out["comparison"]["rho_fedprox"] > 0
    assert out["rho_small_mu"] < 0
