"""Supplementary analyses beyond the paper's tables.

1. **Drift diagnostics** (quantitative Fig. 1): update divergence and
   cosine consistency of client updates, IID vs Dir-0.5 vs Orthogonal-5,
   and the effect of FedTrip/FedProx regularization on drift.
2. **Simulated time-to-accuracy** (the deployment-facing reading of
   "resource-efficient"): per-method simulated wall-clock to target under
   wifi / 4g / iot device profiles, combining the measured FLOPs and bytes
   with the systems model.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import get_data, print_table, save_json
from repro import FLConfig, Simulation, build_strategy
from repro.analysis import DriftTracker
from repro.fl import SystemModel

ROUNDS = 15
TARGET = 80.0


def _drift_for(partition_kwargs, method):
    data = get_data("mini_mnist", 10, **partition_kwargs)
    config = FLConfig(rounds=ROUNDS, n_clients=10, clients_per_round=4,
                      batch_size=50, lr=0.02, seed=0)
    strategy = build_strategy(method, model="mlp", dataset="mini_mnist")
    sim = Simulation(data, strategy, config, model_name="mlp")
    tracker = DriftTracker().attach(sim)
    sim.run()
    out = tracker.summary()
    sim.close()
    return out


def _time_for(method, preset):
    data = get_data("mini_mnist", 10, "dirichlet", alpha=0.5)
    config = FLConfig(rounds=ROUNDS, n_clients=10, clients_per_round=4,
                      batch_size=50, lr=0.05, seed=0)
    strategy = build_strategy(method, model="mlp", dataset="mini_mnist")
    sim = Simulation(data, strategy, config, model_name="mlp")
    sysmodel = SystemModel(preset, n_clients=10, heterogeneity=3.0).attach(sim)
    hist = sim.run()
    t = sysmodel.time_to_accuracy(hist, TARGET)
    summary = sysmodel.summary()
    sim.close()
    return {"time_to_target_s": t, **summary}


def _run():
    out = {"drift": {}, "time": {}}
    partitions = {
        "iid": {"partition": "iid"},
        "dir-0.5": {"partition": "dirichlet", "alpha": 0.5},
        "orth-5": {"partition": "orthogonal", "n_clusters": 5},
    }
    for plabel, pkw in partitions.items():
        for method in ("fedavg", "fedprox", "fedtrip"):
            out["drift"][f"{plabel}/{method}"] = _drift_for(pkw, method)
    for preset in ("wifi", "4g", "iot"):
        for method in ("fedtrip", "fedavg", "moon", "scaffold"):
            out["time"][f"{preset}/{method}"] = _time_for(method, preset)
    return out


def test_supplementary_drift_and_time(benchmark):
    out = run_once(benchmark, _run)

    print_table(
        "Drift diagnostics (quantitative Fig. 1)",
        ["partition/method", "divergence", "cosine consistency", "mean drift"],
        [[k, f"{v['mean_divergence']:.4f}", f"{v['mean_consistency']:.4f}",
          f"{v['mean_drift']:.4f}"] for k, v in out["drift"].items()],
    )
    print_table(
        f"Simulated time to {TARGET:.0f}% accuracy",
        ["preset/method", "seconds to target", "comm fraction"],
        [[k, f"{v['time_to_target_s']:.1f}" if v["time_to_target_s"] else "miss",
          f"{v['comm_fraction']:.3f}"] for k, v in out["time"].items()],
    )
    save_json("supplementary_drift_time", out)

    d = out["drift"]
    # Fig. 1 quantified: heterogeneity lowers update consistency.
    assert d["iid/fedavg"]["mean_consistency"] > d["dir-0.5/fedavg"]["mean_consistency"]
    assert d["iid/fedavg"]["mean_consistency"] > d["orth-5/fedavg"]["mean_consistency"]
    # Regularization (high-mu prox pull inside FedTrip/FedProx) cannot
    # *increase* drift relative to FedAvg by much.
    assert d["dir-0.5/fedprox"]["mean_drift"] <= 1.2 * d["dir-0.5/fedavg"]["mean_drift"]

    t = out["time"]
    for preset in ("wifi", "4g", "iot"):
        # SCAFFOLD ships 2x the bytes: its comm share must exceed FedTrip's.
        assert t[f"{preset}/scaffold"]["comm_fraction"] > t[f"{preset}/fedtrip"]["comm_fraction"]
        # The MLP is tiny (0.01 MFLOP/sample): every preset is
        # communication-bound, which is exactly why reducing *rounds*
        # (FedTrip's goal) beats reducing per-round compute here.
        assert t[f"{preset}/fedtrip"]["comm_fraction"] > 0.5
    # Slower networks stretch absolute wall-clock time per round.
    assert (
        t["iot/fedtrip"]["mean_round_seconds"]
        > t["4g/fedtrip"]["mean_round_seconds"]
        > t["wifi/fedtrip"]["mean_round_seconds"]
    )
