"""Table IV: communication rounds until the global model reaches the target
accuracy, six methods x six model/dataset cases, Dir-0.5, 4-of-10 clients.

Paper's shape: FedTrip (with MOON close on some cases) needs the fewest
rounds; FedAvg/FedProx need ~1.4-2.7x more; SlowMo/FedDyn are worst on the
harder datasets.
"""

from __future__ import annotations

from conftest import run_once
from harness import (
    METHODS,
    TABLE4_CASES,
    fmt_rounds,
    print_table,
    relative,
    run_case,
    save_json,
)


def _run_grid():
    results = {}
    for label, dataset, model, lr, rounds, target, overrides in TABLE4_CASES:
        row = {}
        for method in METHODS:
            hist = run_case(dataset, model, method, rounds=rounds, lr=lr,
                            strategy_overrides=overrides.get(method))
            row[method] = {
                "rounds_to_target": hist.rounds_to_accuracy(target),
                "best_accuracy": hist.best_accuracy(),
                "total_gflops": hist.total_gflops(),
            }
        results[label] = {"target": target, "budget_rounds": rounds, "methods": row}
    return results


def test_table4_rounds_to_target(benchmark):
    results = run_once(benchmark, _run_grid)

    header = ["method"] + [f"{label} ({case['target']:.0f}%)"
                           for label, case in results.items()]
    rows = []
    for method in METHODS:
        cells = [method]
        for label, case in results.items():
            r = case["methods"][method]["rounds_to_target"]
            base = case["methods"]["fedavg"]["rounds_to_target"]
            cells.append(f"{fmt_rounds(r, case['budget_rounds'])} ({relative(base, r)})")
        rows.append(cells)
    print_table("Table IV: rounds to target accuracy (vs FedAvg)", header, rows)
    save_json("table4", results)

    # Shape assertions (lenient: mini-scale noise; see DESIGN.md).
    near_best = 0
    beats_or_ties_fedavg = 0
    for label, case in results.items():
        rounds = {m: case["methods"][m]["rounds_to_target"] for m in METHODS}
        reached = {m: r for m, r in rounds.items() if r is not None}
        assert "fedtrip" in reached, f"FedTrip never hit the target in {label}"
        if reached["fedtrip"] <= min(reached.values()) + 2:
            near_best += 1
        r_avg = rounds["fedavg"]
        if r_avg is None or reached["fedtrip"] <= r_avg:
            beats_or_ties_fedavg += 1
    assert near_best >= len(results) // 2, (
        f"FedTrip near-fastest in only {near_best}/{len(results)} cases"
    )
    assert beats_or_ties_fedavg >= len(results) - 1, (
        f"FedTrip should not lose to FedAvg: {beats_or_ties_fedavg}/{len(results)}"
    )
