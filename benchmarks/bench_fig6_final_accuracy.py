"""Fig. 6: final-accuracy boxplots (mean over the last 10 rounds) for CNN
and MLP on FMNIST under the four heterogeneity types.

Paper's shape: FedTrip has the highest final accuracy in most settings;
MOON collapses under Orthogonal-10 (the "invisible in the boxplot" case);
convergence gains are larger under Dirichlet than orthogonal skew.
"""

from __future__ import annotations

from conftest import run_once
from harness import METHODS, print_table, run_case, save_json

ROUNDS = 30
SETTINGS = [
    ("Dir-0.1", {"partition": "dirichlet", "alpha": 0.1}),
    ("Dir-0.5", {"partition": "dirichlet", "alpha": 0.5}),
    ("Orth-5", {"partition": "orthogonal", "n_clusters": 5}),
    ("Orth-10", {"partition": "orthogonal", "n_clusters": 10}),
]
MODELS = [("cnn", 0.02), ("mlp", 0.05)]


def _run():
    results = {}
    for model, lr in MODELS:
        for label, pkw in SETTINGS:
            cell = {}
            for method in METHODS:
                hist = run_case("mini_fmnist", model, method, rounds=ROUNDS, lr=lr, **pkw)
                cell[method] = hist.final_accuracy_stats(last_k=10)
            results[f"{model}/{label}"] = cell
    return results


def test_fig6_final_accuracy(benchmark):
    results = run_once(benchmark, _run)

    from repro.analysis import box_plot

    for key, cell in results.items():
        rows = [[m, f"{s['mean']:.2f}", f"{s['q1']:.2f}", f"{s['median']:.2f}",
                 f"{s['q3']:.2f}"] for m, s in cell.items()]
        print_table(f"Fig. 6 [{key}]: final accuracy over last 10 rounds",
                    ["method", "mean", "q1", "median", "q3"], rows)
        print(box_plot(cell, width=52, title=f"Fig. 6 [{key}] boxplot"))
    save_json("fig6", results)

    # FedTrip top-2 by mean in most of the 8 cells.
    top2 = 0
    for key, cell in results.items():
        means = sorted((s["mean"] for s in cell.values()), reverse=True)
        if cell["fedtrip"]["mean"] >= means[1] - 1.0:
            top2 += 1
    assert top2 >= 5, f"FedTrip top-2 in only {top2}/{len(results)} cells"

    # The paper's Dirichlet-advantage observation: FedTrip's margin over
    # FedAvg is positive under Dirichlet skew for the CNN.
    margin_dir = results["cnn/Dir-0.5"]["fedtrip"]["mean"] - results["cnn/Dir-0.5"]["fedavg"]["mean"]
    assert margin_dir > 0.0

    # MOON's Orthogonal-10 collapse (the paper: "significantly lower than
    # others, so it is invisible in the boxplot").
    o10 = results["cnn/Orth-10"]
    assert o10["moon"]["mean"] == min(s["mean"] for s in o10.values())
