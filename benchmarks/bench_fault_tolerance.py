"""Fault-tolerance overhead: clean rounds/sec vs an active failure policy.

Both legs run the identical tiny serial sync workload end to end through
:func:`repro.api.run_experiment`; only the fault policy differs:

* ``clean``   — no injector, no retries: the legacy fast path where the
  policy machinery is entirely gated off (``_policy_active`` false).
* ``faulted`` — the CI configuration: ``crash`` injector at rate 0.2
  with ``task_retries=2``.  Every fired coin costs a synthesized failure,
  a screening pass, and a retry wave re-dispatching the failed clients.

Reported: rounds/sec per leg and the retention ratio (faulted / clean);
the acceptance bar is >= 70% retention — the policy may not tax a
moderately faulty deployment by more than ~1.4x.  Crash faults skip
local training, so the dominant cost is the retry waves' re-training
plus the per-round screening/bookkeeping, which is exactly what the bar
pins.  Output: ``benchmarks/out/fault_tolerance.json`` and (from the
repo checkout) the root ``BENCH_faults.json`` baseline consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import get_data, print_table, save_json  # noqa: E402

from repro.api import ExperimentSpec, run_experiment  # noqa: E402

FAULT = "crash"
FAULT_RATE = 0.2
TASK_RETRIES = 2
MIN_RETENTION = 0.70
ROUNDS = 30
QUICK_ROUNDS = 10
REPEATS = 5
QUICK_REPEATS = 3


def _spec(rounds: int, *, faulted: bool) -> ExperimentSpec:
    kwargs = {}
    if faulted:
        kwargs = dict(fault=FAULT, fault_rate=FAULT_RATE, task_retries=TASK_RETRIES)
    return ExperimentSpec(
        dataset="tiny", model="mlp", method="fedavg",
        partition="dirichlet", alpha=0.5,
        rounds=rounds, n_clients=8, clients_per_round=4,
        batch_size=20, local_epochs=1, lr=0.05, seed=0,
        executor="serial", mode="sync", **kwargs,
    )


def _time_leg(spec: ExperimentSpec, data, repeats: int):
    """Median wall rounds/sec over ``repeats`` full runs of ``spec``."""
    secs = []
    history = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        history = run_experiment(spec, data=data)
        secs.append(time.perf_counter() - t0)
    return spec.rounds / statistics.median(secs), history


def _run(rounds: int = ROUNDS, repeats: int = REPEATS):
    clean_spec = _spec(rounds, faulted=False)
    fault_spec = _spec(rounds, faulted=True)
    data = get_data("tiny", clean_spec.n_clients, "dirichlet", alpha=0.5, seed=0)

    # One warmup run per leg (caches, first-touch allocations), then the
    # timed repeats; the workload is deterministic so every repeat trains
    # the identical rounds.
    run_experiment(clean_spec, data=data)
    run_experiment(fault_spec, data=data)
    clean_rps, _ = _time_leg(clean_spec, data, repeats)
    fault_rps, fault_hist = _time_leg(fault_spec, data, repeats)

    retention = fault_rps / clean_rps
    n_failed = sum(len(r.failed_clients) for r in fault_hist.records)
    n_retried = sum(len(r.retried_clients) for r in fault_hist.records)
    payload = {
        "workload": {
            "dataset": "tiny", "model": "mlp", "method": "fedavg",
            "n_clients": clean_spec.n_clients,
            "clients_per_round": clean_spec.clients_per_round,
            "rounds": rounds, "repeats": repeats,
            "executor": "serial", "mode": "sync",
        },
        "fault_policy": {
            "fault": FAULT, "fault_rate": FAULT_RATE,
            "task_retries": TASK_RETRIES,
            "terminal_failures": n_failed,
            "retry_dispatches": n_retried,
        },
        "host": {"cpus": os.cpu_count()},
        "rounds_per_sec": {
            "clean": round(clean_rps, 2),
            "faulted": round(fault_rps, 2),
        },
        "retention": round(retention, 4),
        "min_retention": MIN_RETENTION,
    }
    save_json("fault_tolerance", payload)

    # The root-level baseline: the per-PR trajectory CI publishes.
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    if os.path.isfile(os.path.join(root, "ROADMAP.md")):
        with open(os.path.join(root, "BENCH_faults.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    print_table(
        f"Fault-tolerance overhead ({FAULT} rate {FAULT_RATE}, "
        f"retries {TASK_RETRIES}, {rounds} rounds)",
        ["leg", "rounds/sec", "retention"],
        [["clean (policy gated off)", f"{clean_rps:.1f}", "-"],
         ["faulted (crash 0.2, 2 retries)", f"{fault_rps:.1f}",
          f"{100.0 * retention:.1f}%"]],
    )

    assert n_retried > 0, "faulted leg never retried: injector did not fire"
    assert retention >= MIN_RETENTION, (
        f"failure policy must retain >= {100 * MIN_RETENTION:.0f}% of clean "
        f"throughput: measured {100 * retention:.1f}% "
        f"({fault_rps:.1f} vs {clean_rps:.1f} rounds/sec)")
    return payload


def test_fault_tolerance(benchmark):
    from conftest import run_once

    run_once(benchmark, lambda: _run(rounds=QUICK_ROUNDS, repeats=QUICK_REPEATS))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"time {QUICK_ROUNDS} rounds x {QUICK_REPEATS} "
                             f"repeats instead of {ROUNDS} x {REPEATS}")
    args = parser.parse_args()
    if args.quick:
        _run(rounds=QUICK_ROUNDS, repeats=QUICK_REPEATS)
    else:
        _run()
