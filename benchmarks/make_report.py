#!/usr/bin/env python
"""Regenerate the measured-results section of EXPERIMENTS.md from
``benchmarks/out/*.json``.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/make_report.py > /tmp/measured.md

The output is the markdown block pasted into EXPERIMENTS.md under
"Measured results"; keeping it generated means the document can never drift
from the artifacts.
"""

from __future__ import annotations

import json
import os
import sys

OUT = os.path.join(os.path.dirname(__file__), "out")
METHODS = ("fedtrip", "fedavg", "fedprox", "slowmo", "moon", "feddyn")


def load(name):
    path = os.path.join(OUT, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def md_table(header, rows):
    out = ["| " + " | ".join(str(h) for h in header) + " |",
           "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def fmt_rounds(r, budget):
    return str(r) if r is not None else f">{budget}"


def section_table4():
    data = load("table4")
    if not data:
        return ""
    header = ["method"] + [f"{k} ({v['target']:.0f}%)" for k, v in data.items()]
    rows = []
    for m in METHODS:
        cells = [m]
        for case in data.values():
            r = case["methods"][m]["rounds_to_target"]
            base = case["methods"]["fedavg"]["rounds_to_target"]
            rel = f" ({base / r:.2f}x)" if (r and base) else ""
            cells.append(fmt_rounds(r, case["budget_rounds"]) + rel)
        rows.append(cells)
    return "### Table IV — rounds to target accuracy (vs FedAvg)\n\n" + md_table(header, rows)


def section_table5():
    data = load("table5")
    if not data:
        return ""
    header = ["case"] + list(METHODS) + ["MOON/FedTrip"]
    rows = []
    for label, row in data.items():
        cells = [label] + [f"{row[m]['total_gflops']:.2f}" for m in METHODS]
        cells.append(f"{row['moon']['total_gflops'] / row['fedtrip']['total_gflops']:.2f}x")
        rows.append(cells)
    return "### Table V — total training GFLOPs\n\n" + md_table(header, rows)


def section_table6():
    data = load("table6")
    if not data:
        return ""
    header = ["method"] + [f"{k} ({v['target']:.0f}%)" for k, v in data.items()]
    rows = []
    for m in METHODS:
        cells = [m]
        for case in data.values():
            cells.append(fmt_rounds(case["methods"][m]["rounds_to_target"], 24))
        rows.append(cells)
    return "### Table VI — 4-of-50 scalability (rounds to target)\n\n" + md_table(header, rows)


def section_table7():
    data = load("table7")
    if not data:
        return ""
    rows = []
    for key, row in data.items():
        for cp in (5, 10):
            rows.append([key, f"round {cp}"] + [f"{row[m][f'acc_at_{cp}']:.2f}" for m in METHODS])
    return "### Table VII — accuracy with local epochs 5/10\n\n" + md_table(
        ["epochs", "checkpoint"] + list(METHODS), rows)


def section_fig5():
    data = load("fig5")
    if not data:
        return ""
    rows = [[label] + [f"{panel[m]['final5']:.1f}" for m in METHODS]
            for label, panel in data.items()]
    return ("### Fig. 5 — CNN final-5-round mean accuracy per panel\n\n"
            + md_table(["panel"] + list(METHODS), rows))


def section_fig6():
    data = load("fig6")
    if not data:
        return ""
    rows = [[key] + [f"{cell[m]['mean']:.1f}" for m in METHODS]
            for key, cell in data.items()]
    return ("### Fig. 6 — final accuracy, mean of last 10 rounds (FMNIST)\n\n"
            + md_table(["cell"] + list(METHODS), rows))


def section_fig7():
    data = load("fig7")
    if not data:
        return ""
    blocks = []
    for label, case in data.items():
        rows = [[mu, f"{v['best_accuracy']:.1f}",
                 fmt_rounds(v["rounds_to_target"], 30)]
                for mu, v in case["sweep"].items()]
        blocks.append(f"**{label}** (target {case['target']:.0f}%)\n\n"
                      + md_table(["mu", "best acc %", "rounds to target"], rows))
    return "### Fig. 7 — mu sensitivity\n\n" + "\n\n".join(blocks)


def section_fig2():
    data = load("fig2")
    if not data:
        return ""
    rows = [[k, f"{v['tsne_separation']:.2f}", f"{v['test_accuracy']:.1f}"]
            for k, v in data.items()]
    return ("### Fig. 2 — feature quality (t-SNE separation / accuracy)\n\n"
            + md_table(["model", "t-SNE separation", "test acc %"], rows))


def section_fig1_fig3():
    data = load("fig1_fig3")
    if not data:
        return ""
    rows1 = [[s, f"{data[f'fig1_{s}']['mean_update_inconsistency']:.4f}",
              f"{data[f'fig1_{s}']['final_distance_to_optimum']:.4f}"]
             for s in ("iid", "noniid")]
    rows3 = [[m, f"{data[f'fig3_{m}']['final_distance']:.4f}",
              f"{data[f'fig3_{m}']['auc_distance']:.3f}"]
             for m in ("fedavg", "fedprox", "fedtrip")]
    return ("### Fig. 1 — update consistency (quadratic toy)\n\n"
            + md_table(["setting", "client gap", "final dist to w*"], rows1)
            + "\n\n### Fig. 3 — trajectory comparison (quadratic toy)\n\n"
            + md_table(["method", "final dist", "distance AUC"], rows3))


def section_ablation():
    data = load("ablation_xi")
    if not data:
        return ""
    rows = [[k, f"{v['best_accuracy']:.1f}", f"{v['final5']:.1f}",
             fmt_rounds(v["rounds_to_80"], 30)] for k, v in data.items()]
    return ("### Ablation — xi schedule and historical anchor\n\n"
            + md_table(["variant", "best %", "final5 %", "rounds to 80%"], rows))


def section_supplementary():
    data = load("supplementary_drift_time")
    if not data:
        return ""
    rows = [[k, f"{v['mean_divergence']:.3f}", f"{v['mean_consistency']:.3f}"]
            for k, v in data["drift"].items()]
    rows2 = [[k, f"{v['time_to_target_s']:.1f}s" if v["time_to_target_s"] else "miss",
              f"{v['comm_fraction']:.2f}"] for k, v in data["time"].items()]
    return ("### Supplementary — drift diagnostics\n\n"
            + md_table(["partition/method", "divergence", "consistency"], rows)
            + "\n\n### Supplementary — simulated time to 80%\n\n"
            + md_table(["preset/method", "time", "comm fraction"], rows2))


SECTIONS = [
    section_fig1_fig3, section_fig2, section_table4, section_table5,
    section_fig5, section_fig6, section_table6, section_table7,
    section_fig7, section_ablation, section_supplementary,
]


def main() -> int:
    parts = [s() for s in SECTIONS]
    print("\n\n".join(p for p in parts if p))
    return 0


if __name__ == "__main__":
    sys.exit(main())
