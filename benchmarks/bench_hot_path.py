"""Server hot-path throughput: flat-parameter path vs the pre-PR loop path.

The workload isolates the server's per-round overhead — the part of an FL
round that does not parallelize across clients: finite-screening K client
updates, aggregating them (Eq. 2), adopting the new global model, and
broadcasting it to the executor's shared segment.  With many clients and a
tiny model this is exactly the regime where the historical list-of-arrays
representation drowned in per-layer Python loops (K x L axpys to
aggregate, L copies to adopt, L copies to broadcast).

Two legs run the identical workload (same K updates, same values):

* ``legacy`` — a faithful inline reimplementation of the pre-PR server
  round: per-layer finite checks, ``weighted_average_trees_loop``
  (the K x L axpy reduction), per-layer dtype adoption, per-layer
  broadcast copies.
* ``flat`` — the shipped path: :class:`repro.fl.Server` backed by a
  :class:`~repro.fl.params.ParamPlane`, flat finite checks, the
  ``(K, P)`` GEMM aggregation, one in-place plane write, and a
  single-memcpy broadcast (the process executor's segment protocol).

Reported: rounds/sec per leg and the speedup; the acceptance bar is the
flat path at >= 2x legacy.  Output: ``benchmarks/out/hot_path.json`` and
(when run from the repo root or benchmarks/) the root ``BENCH_hotpath.json``
baseline consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, save_json  # noqa: E402

from repro.algorithms.registry import build_strategy  # noqa: E402
from repro.fl.aggregation import weighted_average_trees_loop  # noqa: E402
from repro.fl.params import ParamPlane, WeightLayout  # noqa: E402
from repro.fl.server import Server  # noqa: E402
from repro.fl.types import ClientUpdate, FLConfig  # noqa: E402

#: A tiny-MLP-like parameter tree (P = 8,874 parameters, 6 arrays) — small
#: enough that per-layer interpreter overhead, not arithmetic, dominates.
SHAPES = [(64, 100), (64,), (32, 64), (32,), (10, 32), (10,)]
N_CLIENTS = 64
WARMUP = 5
TIMED_ROUNDS = 300
QUICK_ROUNDS = 60


def _make_updates(n_clients: int, rng: np.random.Generator, with_flat: bool):
    """K healthy client updates over SHAPES; ``with_flat`` selects the
    flat-native construction (post-PR) vs plain weight lists (pre-PR)."""
    sizes = [int(np.prod(s)) for s in SHAPES]
    total = sum(sizes)
    updates = []
    for cid in range(n_clients):
        flat = rng.standard_normal(total).astype(np.float32)
        if with_flat:
            updates.append(ClientUpdate.from_flat(
                flat, SHAPES, client_id=cid, num_samples=10 + cid, train_loss=0.1))
        else:
            tree, cursor = [], 0
            for shape, size in zip(SHAPES, sizes):
                tree.append(flat[cursor:cursor + size].reshape(shape).copy())
                cursor += size
            updates.append(ClientUpdate(cid, tree, 10 + cid, 0.1))
    return updates


def _legacy_round(weights, updates, segment_views):
    """One pre-PR server round: per-layer screen, loop aggregate, per-layer
    adopt + broadcast.  Mirrors the seed implementation of
    ``Server.apply_updates`` + ``ProcessExecutor.broadcast``."""
    healthy = [u for u in updates
               if all(np.isfinite(w).all() for w in u.weights)]
    new = weighted_average_trees_loop(
        [u.weights for u in healthy], [u.num_samples for u in healthy])
    weights = [np.asarray(w, dtype=weights[i].dtype) for i, w in enumerate(new)]
    for view, w in zip(segment_views, weights):
        np.copyto(view, w)
    return weights


def _measure_legacy(n_clients: int, rounds: int) -> float:
    rng = np.random.default_rng(0)
    updates = _make_updates(n_clients, rng, with_flat=False)
    weights = [np.zeros(s, dtype=np.float32) for s in SHAPES]
    layout = WeightLayout.from_weights(weights)
    segment = bytearray(layout.total_bytes)
    views = layout.views(segment, writeable=True)
    for _ in range(WARMUP):
        weights = _legacy_round(weights, updates, views)
    t0 = time.perf_counter()
    for _ in range(rounds):
        weights = _legacy_round(weights, updates, views)
    return rounds / (time.perf_counter() - t0)


def _measure_flat(n_clients: int, rounds: int) -> float:
    rng = np.random.default_rng(0)
    updates = _make_updates(n_clients, rng, with_flat=True)
    config = FLConfig(rounds=1, n_clients=n_clients, clients_per_round=n_clients)
    server = Server([np.zeros(s, dtype=np.float32) for s in SHAPES],
                    build_strategy("fedavg"), config)
    # The process-executor segment protocol: same layout, one memcpy.
    segment = np.zeros(server.plane.layout.total_bytes, dtype=np.uint8)

    def flat_round():
        server.apply_updates(updates)
        np.copyto(segment, server.plane.bytes_view())

    for _ in range(WARMUP):
        flat_round()
    t0 = time.perf_counter()
    for _ in range(rounds):
        flat_round()
    return rounds / (time.perf_counter() - t0)


def _equivalence_check(n_clients: int) -> float:
    """Max |flat - legacy| after one aggregation of identical updates."""
    rng = np.random.default_rng(7)
    updates = _make_updates(n_clients, rng, with_flat=True)
    config = FLConfig(rounds=1, n_clients=n_clients, clients_per_round=n_clients)
    server = Server([np.zeros(s, dtype=np.float32) for s in SHAPES],
                    build_strategy("fedavg"), config)
    server.apply_updates(updates)
    reference = weighted_average_trees_loop(
        [u.weights for u in updates], [u.num_samples for u in updates])
    return max(
        float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))
        for a, b in zip(server.weights, reference)
    )


def _run(rounds: int = TIMED_ROUNDS, n_clients: int = N_CLIENTS):
    # Best of three interleaved blocks per leg: rounds/sec on a shared CI
    # host is noisy, and the *best* block is the least-perturbed estimate
    # of each path's actual cost.
    legacy_rps, flat_rps = 0.0, 0.0
    for _ in range(3):
        legacy_rps = max(legacy_rps, _measure_legacy(n_clients, rounds))
        flat_rps = max(flat_rps, _measure_flat(n_clients, rounds))
    speedup = flat_rps / legacy_rps
    max_abs_diff = _equivalence_check(n_clients)

    payload = {
        "workload": {
            "n_clients": n_clients,
            "shapes": [list(s) for s in SHAPES],
            "n_params": int(sum(np.prod(s) for s in SHAPES)),
            "timed_rounds": rounds,
            "warmup_rounds": WARMUP,
            "round": "finite-screen + aggregate + adopt + broadcast",
        },
        "host": {"cpus": os.cpu_count()},
        "rounds_per_sec": {
            "legacy_loop_path": round(legacy_rps, 2),
            "flat_gemm_path": round(flat_rps, 2),
        },
        "speedup": round(speedup, 3),
        "loop_vs_gemm_max_abs_diff": max_abs_diff,
    }
    save_json("hot_path", payload)

    # The root-level baseline: the per-PR trajectory CI publishes.
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    if os.path.isfile(os.path.join(root, "ROADMAP.md")):
        with open(os.path.join(root, "BENCH_hotpath.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    print_table(
        f"Server hot path ({n_clients} clients, "
        f"{payload['workload']['n_params']} params)",
        ["path", "rounds/sec", "speedup"],
        [["legacy loop", f"{legacy_rps:.1f}", "1.00x"],
         ["flat GEMM", f"{flat_rps:.1f}", f"{speedup:.2f}x"]],
    )

    assert max_abs_diff < 1e-4, (
        f"loop vs GEMM aggregation diverged: max abs diff {max_abs_diff}")
    assert speedup >= 2.0, (
        f"flat hot path must be >=2x the loop path: got {speedup:.2f}x "
        f"({flat_rps:.1f} vs {legacy_rps:.1f} rounds/sec)")
    return payload


def test_hot_path(benchmark):
    from conftest import run_once

    run_once(benchmark, lambda: _run(rounds=QUICK_ROUNDS))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"time {QUICK_ROUNDS} rounds instead of {TIMED_ROUNDS}")
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    args = parser.parse_args()
    _run(rounds=QUICK_ROUNDS if args.quick else TIMED_ROUNDS,
         n_clients=args.clients)
