"""Tracing overhead on the server hot path: obs on vs the no-op recorder.

The workload is ``bench_hot_path``'s flat leg — finite-screen + aggregate
+ adopt + broadcast over K client updates of a tiny-MLP tree — wrapped in
exactly the per-round observability the engine performs: ``begin_round``,
a phase span around the aggregation and the broadcast, the downlink byte
counter, and ``end_round`` over a freshly built RoundRecord.  Both legs
run the identical function; only the recorder differs:

* ``off`` — the shared :data:`repro.obs.NULL_RECORDER`: every hook a
  no-op, ``enabled`` false, zero allocations.  This is the default path
  every untraced run takes.
* ``on``  — a live :class:`repro.obs.Recorder` with a JSONL exporter and
  the metrics registry, spans flushed to a real temp file.

Reported: rounds/sec per leg and the overhead percentage; the acceptance
bar is tracing at <= 3% wall overhead.  Output:
``benchmarks/out/obs_overhead.json`` and (when run from the repo root or
benchmarks/) the root ``BENCH_obs.json`` baseline consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, save_json  # noqa: E402

from repro.algorithms.registry import build_strategy  # noqa: E402
from repro.fl.server import Server  # noqa: E402
from repro.fl.types import ClientUpdate, FLConfig, RoundRecord  # noqa: E402
from repro.obs import NULL_RECORDER, Recorder  # noqa: E402

#: the bench_hot_path workload: P = 8,874 parameters over 6 arrays.
SHAPES = [(64, 100), (64,), (32, 64), (32,), (10, 32), (10,)]
N_CLIENTS = 64
WARMUP = 10
TIMED_ROUNDS = 600
QUICK_ROUNDS = 150
MAX_OVERHEAD_PCT = 3.0


def _make_updates(n_clients: int, rng: np.random.Generator):
    sizes = [int(np.prod(s)) for s in SHAPES]
    total = sum(sizes)
    return [
        ClientUpdate.from_flat(
            rng.standard_normal(total).astype(np.float32), SHAPES,
            client_id=cid, num_samples=10 + cid, train_loss=0.1)
        for cid in range(n_clients)
    ]


def _obs_round(server, updates, segment, recorder, round_idx: int) -> None:
    """One hot-path round under the engine's per-round observability.

    Mirrors ``Engine.run_round``'s instrumentation shape: phase timings
    are computed unconditionally (RoundRecord.phase_seconds is always
    recorded), the recorder hooks are what the two legs differ on.
    """
    t0 = time.perf_counter()
    recorder.begin_round(round_idx)
    recorder.begin_phase("aggregate")
    t = time.perf_counter()
    server.apply_updates(updates)
    agg_s = time.perf_counter() - t
    recorder.end_phase(dur_s=agg_s, n_updates=len(updates))
    recorder.begin_phase("broadcast")
    t = time.perf_counter()
    np.copyto(segment, server.plane.bytes_view())
    cast_s = time.perf_counter() - t
    recorder.end_phase(dur_s=cast_s)
    if recorder.enabled:
        recorder.broadcast_bytes(
            server.plane.layout.total_bytes, 0, len(updates))
    record = RoundRecord(
        round_idx, [u.client_id for u in updates], None, None, 0.1,
        0.0, 0.0, time.perf_counter() - t0,
        phase_seconds={"aggregate": agg_s, "broadcast": cast_s},
    )
    recorder.end_round(record)


def _make_state(n_clients: int):
    rng = np.random.default_rng(0)
    updates = _make_updates(n_clients, rng)
    config = FLConfig(rounds=1, n_clients=n_clients, clients_per_round=n_clients)
    server = Server([np.zeros(s, dtype=np.float32) for s in SHAPES],
                    build_strategy("fedavg"), config)
    segment = np.zeros(server.plane.layout.total_bytes, dtype=np.uint8)
    return server, updates, segment


def _run(rounds: int = TIMED_ROUNDS, n_clients: int = N_CLIENTS):
    tmp = tempfile.mkdtemp(prefix="bench_obs_")
    traced = Recorder.create(
        trace_path=os.path.join(tmp, "trace.jsonl"),
        metrics_path=os.path.join(tmp, "metrics.prom"),
    )
    try:
        # Paired rounds, median of per-pair differences: scheduler noise
        # on a shared host dwarfs the ~2% effect under measurement, but
        # it lives on timescales much longer than one ~1ms round, so an
        # off/on pair back-to-back sees the same noise and the difference
        # cancels it.  The median of the paired differences is then
        # robust to the fat tail a mean or a block average would absorb.
        state_off = _make_state(n_clients)
        state_on = _make_state(n_clients)
        for i in range(WARMUP):  # warm caches, pools, the file handle
            _obs_round(*state_off, NULL_RECORDER, i)
            _obs_round(*state_on, traced, i)
        offs, diffs = [], []
        for i in range(WARMUP, WARMUP + rounds):
            t0 = time.perf_counter()
            _obs_round(*state_off, NULL_RECORDER, i)
            t1 = time.perf_counter()
            _obs_round(*state_on, traced, i)
            t2 = time.perf_counter()
            offs.append(t1 - t0)
            diffs.append((t2 - t1) - (t1 - t0))
        off_spr = statistics.median(offs)
        on_spr = off_spr + statistics.median(diffs)
        off_rps, on_rps = 1.0 / off_spr, 1.0 / on_spr
        traced.close()
        n_spans = sum(1 for _ in open(os.path.join(tmp, "trace.jsonl")))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    overhead_pct = 100.0 * (1.0 - on_rps / off_rps)
    payload = {
        "workload": {
            "n_clients": n_clients,
            "n_params": int(sum(np.prod(s) for s in SHAPES)),
            "timed_rounds": rounds,
            "warmup_rounds": WARMUP,
            "round": "aggregate + broadcast under per-round obs hooks",
            "spans_emitted": n_spans,
        },
        "host": {"cpus": os.cpu_count()},
        "rounds_per_sec": {
            "obs_off_null_recorder": round(off_rps, 2),
            "obs_on_jsonl_metrics": round(on_rps, 2),
        },
        "overhead_pct": round(overhead_pct, 3),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }
    save_json("obs_overhead", payload)

    # The root-level baseline: the per-PR trajectory CI publishes.
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    if os.path.isfile(os.path.join(root, "ROADMAP.md")):
        with open(os.path.join(root, "BENCH_obs.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    print_table(
        f"Tracing overhead ({n_clients} clients, "
        f"{payload['workload']['n_params']} params)",
        ["leg", "rounds/sec", "overhead"],
        [["obs off (null recorder)", f"{off_rps:.1f}", "-"],
         ["obs on (jsonl + metrics)", f"{on_rps:.1f}",
          f"{overhead_pct:.2f}%"]],
    )

    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"tracing must cost <= {MAX_OVERHEAD_PCT}% on the hot-path "
        f"workload: measured {overhead_pct:.2f}% "
        f"({on_rps:.1f} vs {off_rps:.1f} rounds/sec)")
    return payload


def test_obs_overhead(benchmark):
    from conftest import run_once

    run_once(benchmark, lambda: _run(rounds=QUICK_ROUNDS))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"time {QUICK_ROUNDS} rounds instead of {TIMED_ROUNDS}")
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    args = parser.parse_args()
    _run(rounds=QUICK_ROUNDS if args.quick else TIMED_ROUNDS,
         n_clients=args.clients)
