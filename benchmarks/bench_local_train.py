"""Client-side local-training throughput: plane-backed path vs tree path.

The companion to ``bench_hot_path.py`` on the other side of the wire: where
that bench isolates the *server's* per-round overhead, this one isolates the
*client's* — the local-training inner loop that dominates simulation wall
time.  The workload trains 64 clients for one FL round each (broadcast
adoption, local SGD-with-momentum steps with FedTrip's triplet attach op,
and the flat upload), with a tiny MLP so per-layer Python/interpreter
overhead — not BLAS — dominates, exactly the regime the flat refactor
targets.

Two legs run the identical workload (same init, same data, same batches):

* ``tree`` — the pre-PR client path: a non-materialized model, per-layer
  optimizer loops, per-layer attach ops against the broadcast tree,
  per-parameter broadcast adoption, ``np.concatenate`` upload.
* ``plane`` — the shipped path: the worker model re-homed onto weight/grad
  planes (:meth:`~repro.nn.module.Module.materialize_flat`), fused flat
  optimizer and attach ops, one-``copyto`` adoption, one-memcpy upload.

Reported: client rounds/sec per leg and the speedup; the acceptance bar is
the plane path at >= 1.8x.  The two legs are elementwise-identical
arithmetic, so the bench also asserts max-abs-diff exactly 0.0 between the
uploaded models.  Output: ``benchmarks/out/local_train.json`` and (from a
repo checkout) the root ``BENCH_localtrain.json`` baseline consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, save_json  # noqa: E402

from repro.algorithms.registry import build_strategy  # noqa: E402
from repro.data.dataset import ArrayDataset  # noqa: E402
from repro.fl.client import Client  # noqa: E402
from repro.fl.executor import (  # noqa: E402
    ClientTaskSpec,
    TaskRuntime,
    WorkerContext,
    execute_task,
    make_optimizer,
)
from repro.fl.params import ParamPlane  # noqa: E402
from repro.fl.types import FLConfig  # noqa: E402
from repro.nn.losses import CrossEntropyLoss  # noqa: E402
from repro.utils.rng import RngStream  # noqa: E402

N_CLIENTS = 64
INPUT_DIM = 48
HIDDEN = 48
DEPTH = 4
SAMPLES_PER_CLIENT = 40
BATCH_SIZE = 10
METHOD = "fedtrip"
OPTIMIZER = "sgdm"
WARMUP = 2
TIMED_ROUNDS = 30
QUICK_ROUNDS = 8


def _bench_model(seed_name: str, root: RngStream):
    """A deep narrow MLP (DEPTH hidden Linears): enough layers that the
    pre-PR per-layer loops — not the tiny GEMMs — carry the cost, matching
    the CNN/AlexNet-lite regime where layer count is what grows."""
    from repro.models.fedmodel import FedModel
    from repro.nn import Linear, ReLU, Sequential

    rng = root.child(seed_name).generator
    layers = [Linear(INPUT_DIM, HIDDEN, rng=rng), ReLU()]
    for _ in range(DEPTH - 1):
        layers += [Linear(HIDDEN, HIDDEN, rng=rng), ReLU()]
    return FedModel(Sequential(*layers), Sequential(Linear(HIDDEN, 10, rng=rng)),
                    input_shape=(INPUT_DIM,), name="bench-mlp")


def _build_leg(flat: bool):
    """One leg's full fixture: worker context, runtime, clients, states."""
    root = RngStream(0)
    model = _bench_model("model-init", root)
    frozen = _bench_model("model-init", root)
    frozen.eval()
    config = FLConfig(rounds=1, n_clients=N_CLIENTS, clients_per_round=N_CLIENTS,
                      batch_size=BATCH_SIZE, optimizer=OPTIMIZER, lr=0.05)
    optimizer = make_optimizer(OPTIMIZER, model if flat else model.parameters(), config)
    worker = WorkerContext(model, frozen, optimizer, CrossEntropyLoss())

    data_rng = np.random.default_rng(1)
    clients = [
        Client(k, ArrayDataset(
            data_rng.standard_normal((SAMPLES_PER_CLIENT, INPUT_DIM)).astype(np.float32),
            data_rng.integers(0, 10, SAMPLES_PER_CLIENT)), seed=0)
        for k in range(N_CLIENTS)
    ]
    strategy = build_strategy(METHOD)
    glob = _bench_model("g", RngStream(7))
    plane = ParamPlane.from_tree(glob.get_weights())
    runtime = TaskRuntime(clients=clients, strategy=strategy, config=config,
                          fp_flops=100.0, global_weights=plane.tree,
                          global_flat=plane.flat if flat else None)
    states = {k: strategy.init_client_state(k) for k in range(N_CLIENTS)}
    return worker, runtime, states


def _run_round(worker, runtime, states, round_idx: int) -> None:
    for k in range(N_CLIENTS):
        result = execute_task(
            ClientTaskSpec(client_id=k, round_idx=round_idx, state=states[k]),
            worker, runtime)
        states[k] = result.state


def _measure(flat: bool, rounds: int) -> float:
    worker, runtime, states = _build_leg(flat)
    for r in range(WARMUP):
        _run_round(worker, runtime, states, r)
    t0 = time.perf_counter()
    for r in range(WARMUP, WARMUP + rounds):
        _run_round(worker, runtime, states, r)
    return rounds / (time.perf_counter() - t0)


def _equivalence_check() -> float:
    """Max |plane - tree| over every client's round-2 upload (two rounds so
    FedTrip's historical-anchor path is exercised on both legs)."""
    worst = 0.0
    uploads = {}
    for flat in (True, False):
        worker, runtime, states = _build_leg(flat)
        vectors = {}
        for r in range(2):
            for k in range(N_CLIENTS):
                result = execute_task(
                    ClientTaskSpec(client_id=k, round_idx=r, state=states[k]),
                    worker, runtime)
                states[k] = result.state
                vectors[k] = result.update.flat_vector()
        uploads[flat] = vectors
    for k in range(N_CLIENTS):
        worst = max(worst, float(np.max(np.abs(
            uploads[True][k].astype(np.float64) -
            uploads[False][k].astype(np.float64)))))
    return worst


def _run(rounds: int = TIMED_ROUNDS):
    # Best of three interleaved blocks per leg, as in bench_hot_path: the
    # best block is the least-perturbed estimate on a noisy shared host.
    tree_rps, plane_rps = 0.0, 0.0
    for _ in range(3):
        tree_rps = max(tree_rps, _measure(False, rounds))
        plane_rps = max(plane_rps, _measure(True, rounds))
    speedup = plane_rps / tree_rps
    max_abs_diff = _equivalence_check()

    n_params = _bench_model("count", RngStream(0)).num_parameters()
    payload = {
        "workload": {
            "n_clients": N_CLIENTS,
            "model": (f"mlp ({DEPTH} hidden Linears of {HIDDEN}, "
                      f"input {INPUT_DIM}, {n_params} params)"),
            "method": METHOD,
            "optimizer": OPTIMIZER,
            "samples_per_client": SAMPLES_PER_CLIENT,
            "batch_size": BATCH_SIZE,
            "timed_rounds": rounds,
            "warmup_rounds": WARMUP,
            "round": "adopt broadcast + local steps (attach op, fused "
                     "optimizer) + flat upload, per client",
        },
        "host": {"cpus": os.cpu_count()},
        "client_rounds_per_sec": {
            "tree_path": round(tree_rps * N_CLIENTS, 2),
            "plane_path": round(plane_rps * N_CLIENTS, 2),
        },
        "rounds_per_sec": {
            "tree_path": round(tree_rps, 2),
            "plane_path": round(plane_rps, 2),
        },
        "speedup": round(speedup, 3),
        "tree_vs_plane_max_abs_diff": max_abs_diff,
    }
    save_json("local_train", payload)

    # The root-level baseline: the per-PR trajectory CI publishes.
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    if os.path.isfile(os.path.join(root, "ROADMAP.md")):
        with open(os.path.join(root, "BENCH_localtrain.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    print_table(
        f"Client local-training path ({N_CLIENTS} clients, {n_params} params, "
        f"{METHOD}/{OPTIMIZER})",
        ["path", "rounds/sec", "client rounds/sec", "speedup"],
        [["tree", f"{tree_rps:.1f}", f"{tree_rps * N_CLIENTS:.0f}", "1.00x"],
         ["plane", f"{plane_rps:.1f}", f"{plane_rps * N_CLIENTS:.0f}",
          f"{speedup:.2f}x"]],
    )

    assert max_abs_diff == 0.0, (
        f"plane vs tree training diverged: max abs diff {max_abs_diff} "
        f"(elementwise ops must be byte-identical)")
    assert speedup >= 1.8, (
        f"plane-backed local training must be >=1.8x the tree path: got "
        f"{speedup:.2f}x ({plane_rps:.1f} vs {tree_rps:.1f} rounds/sec)")
    return payload


def test_local_train(benchmark):
    from conftest import run_once

    run_once(benchmark, lambda: _run(rounds=QUICK_ROUNDS))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"time {QUICK_ROUNDS} rounds instead of {TIMED_ROUNDS}")
    args = parser.parse_args()
    _run(rounds=QUICK_ROUNDS if args.quick else TIMED_ROUNDS)
