"""Byzantine robustness: robust aggregation rules vs a sign-flip attack.

The acceptance experiment for the ``repro.fl.robust`` subsystem.  A
64-client mini_mnist/MLP workload (full participation, IID shards) is
attacked by ``sign_flip`` adversaries — a seeded quarter (and, in the full
run, an eighth) of the fleet submits ``g - gamma * (w - g)``, the honest
delta reflected about the global weights and boosted by ``gamma`` — and
each aggregation rule is asked to train through it:

* **mean** — plain sample-weighted FedAvg, the undefended baseline.  The
  reflected deltas enter the average at full weight, so the attack drags
  the model backwards every round.
* **coordinate_median / trimmed_mean** — coordinate-wise order statistics
  with breakdown point 1/2 (resp. ``beta``); at f/K = 0.25 the corrupted
  rows land outside the middle of every coordinate's order and vanish.
* **multi_krum / norm_screen** — selection rules: score rows by
  neighbour distances (resp. update norm) and aggregate the survivors
  only.  Both also *report* who they screened, which the History records.

The headline assertion is the ISSUE acceptance criterion: under sign-flip
at f/K = 0.25, ``coordinate_median``, ``trimmed_mean`` and ``multi_krum``
must all reach >= 90% of the no-attack final accuracy while the undefended
mean degrades below it.

Output: ``benchmarks/out/robust_aggregation.json`` plus (on a repo
checkout) the root ``BENCH_robust.json`` artifact consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, save_json  # noqa: E402

from repro.api import ExperimentSpec, run_experiment  # noqa: E402

N_CLIENTS = 64
ROUNDS = 20
GAMMA = 5.0
#: robust rules must retain this share of the clean final accuracy
RETENTION = 0.90

WORKLOAD = dict(
    dataset="mini_mnist", model="mlp", method="fedavg", partition="iid",
    n_clients=N_CLIENTS, clients_per_round=N_CLIENTS,
    samples_per_client=40, batch_size=20, lr=0.05, seed=0,
)

#: (label, aggregator, aggregator_kwargs).  Screening parameters are sized
#: for the f/K = 0.25 worst case; at the milder fraction they are simply
#: over-provisioned, which a robust deployment would be anyway.
AGGREGATORS = [
    ("mean", "mean", {}),
    ("coordinate_median", "coordinate_median", {}),
    ("trimmed_mean", "trimmed_mean", {"beta": 0.25}),
    ("multi_krum", "multi_krum", {"f": 16}),
    ("norm_screen", "norm_screen", {"f": 16}),
]

#: the rules the acceptance criterion names
HEADLINE = ("coordinate_median", "trimmed_mean", "multi_krum")


def _spec(rounds, aggregator, agg_kwargs, fraction) -> ExperimentSpec:
    attack = {}
    if fraction > 0.0:
        attack = dict(adversary="sign_flip", adversary_fraction=fraction,
                      adversary_kwargs={"gamma": GAMMA})
    return ExperimentSpec(**WORKLOAD, rounds=rounds, aggregator=aggregator,
                          aggregator_kwargs=agg_kwargs, **attack)


def _final_accuracy(hist) -> float:
    """Mean test accuracy over the last 3 rounds — one round's jitter must
    not decide a pass/fail retention ratio."""
    accs = [r.test_accuracy for r in hist.records[-3:] if r.test_accuracy is not None]
    return float(sum(accs) / len(accs))


def _measure(data, rounds, aggregator, agg_kwargs, fraction):
    hist = run_experiment(_spec(rounds, aggregator, agg_kwargs, fraction), data=data)
    adversaries = sorted({c for r in hist.records
                          for c in (r.adversary_clients or [])})
    return {
        "final_accuracy": round(_final_accuracy(hist), 3),
        "best_accuracy": round(hist.best_accuracy(), 3),
        "n_adversaries": len(adversaries),
        "screened_updates": len(hist.screened_client_ids()),
        "adversary_hit_rate": (
            None if not hist.screened_client_ids()
            else round(hist.adversary_hit_rate(), 4)),
        "skipped_rounds": hist.skipped_rounds(),
    }


def _run(rounds: int = ROUNDS, fractions=(0.0, 0.125, 0.25)):
    data = _spec(rounds, "mean", {}, 0.0).build_data()

    # One clean baseline; every attacked cell is measured against it.
    clean = _measure(data, rounds, "mean", {}, 0.0)
    clean_acc = clean["final_accuracy"]

    cells = {}
    for fraction in [f for f in fractions if f > 0.0]:
        row = {}
        for label, aggregator, kwargs in AGGREGATORS:
            r = _measure(data, rounds, aggregator, kwargs, fraction)
            r["retention_vs_clean"] = round(r["final_accuracy"] / clean_acc, 4)
            row[label] = r
        cells[f"{fraction:g}"] = row

    worst = cells[f"{max(fractions):g}"]
    payload = {
        "workload": {**WORKLOAD, "rounds": rounds,
                     "attack": "sign_flip", "gamma": GAMMA,
                     "fractions": list(fractions)},
        "clean_baseline": clean,
        "attacked": cells,
        "criterion": {
            "retention_threshold": RETENTION,
            "at_fraction": max(fractions),
            "robust_rules": {k: worst[k]["retention_vs_clean"] for k in HEADLINE},
            "undefended_mean": worst["mean"]["retention_vs_clean"],
        },
    }
    save_json("robust_aggregation", payload)

    # The root-level artifact: the per-PR robustness record CI publishes.
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    if os.path.isfile(os.path.join(root, "ROADMAP.md")):
        with open(os.path.join(root, "BENCH_robust.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    for fraction, row in cells.items():
        print_table(
            f"sign-flip f/K={fraction} (gamma {GAMMA:g}, {N_CLIENTS} clients, "
            f"clean final {clean_acc:.2f}%)",
            ["aggregator", "final %", "retention", "screened", "hit rate"],
            [[label,
              f"{r['final_accuracy']:.2f}",
              f"{r['retention_vs_clean']:.3f}",
              r["screened_updates"],
              "-" if r["adversary_hit_rate"] is None
              else f"{r['adversary_hit_rate']:.3f}"]
             for label, r in row.items()],
        )

    for label in HEADLINE:
        retention = worst[label]["retention_vs_clean"]
        assert retention >= RETENTION, (
            f"{label} must retain >={RETENTION:.0%} of clean accuracy under "
            f"sign-flip at f/K={max(fractions):g}: got {retention:.3f} "
            f"({worst[label]['final_accuracy']:.2f}% vs {clean_acc:.2f}%)")
    mean_retention = worst["mean"]["retention_vs_clean"]
    assert mean_retention < RETENTION, (
        f"undefended mean should degrade under the attack the robust rules "
        f"survive: retained {mean_retention:.3f}")
    return payload


def test_robust_aggregation(benchmark):
    from conftest import run_once

    run_once(benchmark, lambda: _run(fractions=(0.0, 0.25)))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="measure the worst-case fraction only, "
                             "instead of the full fraction grid")
    args = parser.parse_args()
    _run(fractions=(0.0, 0.25) if args.quick else (0.0, 0.125, 0.25))
