"""Benchmark-suite configuration.

``pytest benchmarks/ --benchmark-only`` runs every bench exactly once
(pedantic mode, one round, one iteration): these are experiment
regenerators, not micro-benchmarks, and a single run of e.g. the Table IV
grid takes minutes.
"""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
