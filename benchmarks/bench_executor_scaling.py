"""Executor scaling: rounds/sec vs worker count across execution backends.

The workload is the paper's 10-client synthetic setup (mini_mnist / MLP)
with **all 10 clients selected every round** and an emulated per-client
device latency (``Engine(client_latency_s=...)``, see
:mod:`repro.fl.systems` for why wall latency, not FLOPs, dominates real FL
rounds).  Each client task therefore costs ``latency + compute``; a backend
earns throughput exactly by *overlapping* client tasks, which is the
quantity a scheduler benchmark should isolate — it is also the only
scaling dimension measurable on a single-core CI host.  On a multi-core
host the process backend additionally overlaps the compute portion, which
the in-process backends cannot (the tape/optimizer work holds the GIL).

Measured per backend: wall time of ``TIMED_ROUNDS`` engine rounds after one
warmup round (pool startup and data building excluded), reported as
rounds/sec.  A determinism cross-check also trains a short run on every
backend and asserts the round records are identical — the byte-identical
contract the executor layer guarantees.

Output: ``benchmarks/out/executor_scaling.json``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, save_json  # noqa: E402

from repro.api import ExperimentSpec  # noqa: E402
from repro.api.engine import Engine  # noqa: E402

#: 10-client synthetic workload, every client participating every round.
WORKLOAD = dict(
    dataset="mini_mnist", model="mlp", method="fedavg",
    n_clients=10, clients_per_round=10, batch_size=50, lr=0.03,
    rounds=1000, eval_every=1000, seed=0,
)
#: Emulated per-client device/network latency (seconds).
CLIENT_LATENCY_S = 0.04
WARMUP_ROUNDS = 1
TIMED_ROUNDS = 5

#: (backend, n_workers) grid.
CONFIGS = [
    ("serial", 1),
    ("threaded", 2),
    ("threaded", 4),
    ("process", 2),
    ("process", 4),
]


def _build_engine(data, executor: str, n_workers: int, latency: float) -> Engine:
    spec = ExperimentSpec(**WORKLOAD)
    return Engine(
        data, spec.build_strategy(), spec.build_config(),
        model_name=spec.model, sampler=spec.build_sampler(),
        executor=executor, n_workers=n_workers, client_latency_s=latency,
    )


def _measure(data, executor: str, n_workers: int) -> float:
    """Rounds/sec over TIMED_ROUNDS after warmup; pool startup excluded."""
    engine = _build_engine(data, executor, n_workers, CLIENT_LATENCY_S)
    try:
        for _ in range(WARMUP_ROUNDS):
            engine.run_round()
        t0 = time.perf_counter()
        for _ in range(TIMED_ROUNDS):
            engine.run_round()
        elapsed = time.perf_counter() - t0
    finally:
        engine.close()
    return TIMED_ROUNDS / elapsed


def _determinism_check(data) -> bool:
    """Fixed seed => identical round records on every backend."""
    reference = None
    for executor, n_workers in [("serial", 1), ("threaded", 4), ("process", 4)]:
        engine = _build_engine(data, executor, n_workers, latency=0.0)
        try:
            records = [engine.run_round() for _ in range(3)]
        finally:
            engine.close()
        signature = [
            (r.round_idx, tuple(r.selected), r.mean_train_loss,
             r.cumulative_flops, r.cumulative_comm_bytes)
            for r in records
        ]
        if reference is None:
            reference = signature
        elif signature != reference:
            return False
    return True


def _run():
    spec = ExperimentSpec(**WORKLOAD)
    data = spec.build_data()

    results = []
    for executor, n_workers in CONFIGS:
        rps = _measure(data, executor, n_workers)
        results.append(
            {"backend": executor, "n_workers": n_workers,
             "rounds_per_sec": round(rps, 4)}
        )

    by_key = {(r["backend"], r["n_workers"]): r["rounds_per_sec"] for r in results}
    serial = by_key[("serial", 1)]
    deterministic = _determinism_check(data)

    payload = {
        "workload": {**WORKLOAD, "client_latency_ms": CLIENT_LATENCY_S * 1e3,
                     "warmup_rounds": WARMUP_ROUNDS, "timed_rounds": TIMED_ROUNDS},
        "host": {"cpus": os.cpu_count()},
        "results": results,
        "speedup_vs_serial": {
            f"{backend}-{n}": round(by_key[(backend, n)] / serial, 3)
            for backend, n in CONFIGS
        },
        "deterministic_across_backends": deterministic,
    }
    save_json("executor_scaling", payload)

    rows = [
        [r["backend"], r["n_workers"], f"{r['rounds_per_sec']:.2f}",
         f"{r['rounds_per_sec'] / serial:.2f}x"]
        for r in results
    ]
    print_table("Executor scaling (rounds/sec, 10 clients/round, 40ms client latency)",
                ["backend", "workers", "rounds/sec", "vs serial"], rows)

    assert deterministic, "round records diverged across backends"
    assert by_key[("process", 4)] >= 1.5 * serial, (
        f"process@4 must be >=1.5x serial: {by_key[('process', 4)]:.2f} "
        f"vs {serial:.2f} rounds/sec"
    )
    return payload


def test_executor_scaling(benchmark):
    from conftest import run_once

    run_once(benchmark, _run)


if __name__ == "__main__":
    _run()
