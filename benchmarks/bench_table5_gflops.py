"""Table V: total training GFLOPs (feedforward + attaching operations) per
method over the training run, plus the paper's headline ratios.

Reuses the Table IV training runs (session-level memoization), exactly as
the paper derives Table V from the Table IV experiments.

Paper's shape: FedTrip's total cost is the lowest or tied-lowest; MOON's is
several times higher (4.52x FedTrip on average in the paper) because of its
per-batch extra forward passes.
"""

from __future__ import annotations

from conftest import run_once
from harness import METHODS, TABLE4_CASES, print_table, run_case, save_json


def _run():
    results = {}
    for label, dataset, model, lr, rounds, target, overrides in TABLE4_CASES:
        row = {}
        for method in METHODS:
            hist = run_case(dataset, model, method, rounds=rounds, lr=lr,
                            strategy_overrides=overrides.get(method))
            row[method] = {
                "total_gflops": hist.total_gflops(),
                "gflops_to_target": hist.flops_to_accuracy(target),
            }
        results[label] = row
    return results


def test_table5_gflops(benchmark):
    results = run_once(benchmark, _run)

    header = ["case"] + list(METHODS)
    rows = []
    for label, row in results.items():
        rows.append([label] + [f"{row[m]['total_gflops']:.2f}" for m in METHODS])
    print_table("Table V: total training GFLOPs over the full run", header, rows)

    ratio_rows = []
    for label, row in results.items():
        moon_over_trip = row["moon"]["total_gflops"] / row["fedtrip"]["total_gflops"]
        trip_over_avg = row["fedtrip"]["total_gflops"] / row["fedavg"]["total_gflops"]
        ratio_rows.append([label, f"{moon_over_trip:.2f}x", f"{trip_over_avg:.3f}x"])
    print_table(
        "Table V ratios", ["case", "MOON / FedTrip", "FedTrip / FedAvg"], ratio_rows
    )
    save_json("table5", results)

    # Shape: MOON pays a large compute premium in every case; FedTrip's
    # attach overhead is negligible (<10% over FedAvg).
    for label, row in results.items():
        assert row["moon"]["total_gflops"] > 1.3 * row["fedtrip"]["total_gflops"], label
        assert row["fedtrip"]["total_gflops"] < 1.1 * row["fedavg"]["total_gflops"], label
