"""Fig. 5: CNN convergence curves, 6 methods, Dirichlet-0.5 and
Orthogonal-5, on the three grayscale datasets.

Prints each curve (EMA-smoothed accuracy per round, as the paper plots) and
asserts the figure's qualitative claims: FedTrip's curve dominates or
matches the best baseline late in training in most panels.

The Dir-0.5 panels reuse the Table IV runs via the session cache.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import METHODS, print_table, run_case, save_json

ROUNDS = 30
PANELS = [
    ("MNIST Dir-0.5", "mini_mnist", {"partition": "dirichlet", "alpha": 0.5}),
    ("FMNIST Dir-0.5", "mini_fmnist", {"partition": "dirichlet", "alpha": 0.5}),
    ("EMNIST Dir-0.5", "mini_emnist", {"partition": "dirichlet", "alpha": 0.5}),
    ("MNIST Orth-5", "mini_mnist", {"partition": "orthogonal", "n_clusters": 5}),
    ("FMNIST Orth-5", "mini_fmnist", {"partition": "orthogonal", "n_clusters": 5}),
    ("EMNIST Orth-5", "mini_emnist", {"partition": "orthogonal", "n_clusters": 5}),
]


def _run():
    results = {}
    for label, dataset, pkw in PANELS:
        panel = {}
        for method in METHODS:
            hist = run_case(dataset, "cnn", method, rounds=ROUNDS, lr=0.02, **pkw)
            panel[method] = {
                "ema": [None if np.isnan(v) else round(float(v), 2)
                        for v in hist.ema_accuracy()],
                "final5": hist.final_accuracy_stats(last_k=5)["mean"],
            }
        results[label] = panel
    return results


def test_fig5_convergence(benchmark):
    results = run_once(benchmark, _run)

    from repro.analysis import line_plot

    for label, panel in results.items():
        rows = [[m, f"{panel[m]['final5']:.2f}",
                 " ".join(f"{v:.0f}" if v is not None else "." for v in panel[m]["ema"][::3])]
                for m in METHODS]
        print_table(f"Fig. 5 [{label}]: final-5 mean + EMA curve (every 3rd round)",
                    ["method", "final5", "curve"], rows)
        curves = {m: [v if v is not None else float("nan") for v in panel[m]["ema"]]
                  for m in METHODS}
        print(line_plot(curves, width=66, height=14,
                        title=f"Fig. 5 [{label}] EMA accuracy vs round"))
    save_json("fig5", results)

    # Shape claims (see EXPERIMENTS.md for the mini-scale caveats):
    # (a) FedTrip's final accuracy beats FedAvg's in (almost) every panel;
    # (b) FedTrip is the best of the SGDm-family methods (FedTrip, FedAvg,
    #     FedProx, MOON — the apples-to-apples comparison; SlowMo/FedDyn run
    #     plain SGD, which is disproportionately stable at mini scale);
    # (c) FedTrip lands within 10 points of the overall best in a majority.
    sgdm_family = ("fedtrip", "fedavg", "fedprox", "moon")
    beats_avg = family_best = near_top = 0
    for label, panel in results.items():
        finals = {m: panel[m]["final5"] for m in METHODS}
        if finals["fedtrip"] >= finals["fedavg"]:
            beats_avg += 1
        if finals["fedtrip"] >= max(finals[m] for m in sgdm_family):
            family_best += 1
        if finals["fedtrip"] >= max(finals.values()) - 10.0:
            near_top += 1
    assert beats_avg >= len(PANELS) - 1, f"FedTrip beats FedAvg in only {beats_avg} panels"
    assert family_best >= len(PANELS) - 1, f"FedTrip best-in-family in only {family_best}"
    assert near_top >= len(PANELS) // 2, f"FedTrip near-top in only {near_top} panels"
