"""Population scale: throughput and memory must be flat in population size.

The acceptance experiment for the population subsystem (virtual id space +
O(K) rejection sampler + lazy client directory + streaming aggregation).
One fixed workload — a 64-client cohort drawn from 64 mini_mnist shards —
is run against virtual populations from 10^3 to 10^6 ids.  Per-round work
is a function of the *cohort*, so both measured quantities must not move
as the population grows three orders of magnitude:

* **rounds/sec** — an O(N) term anywhere in the loop (an eager roster
  walk, a permutation-based sampler, per-id state init) shows up here
  immediately: 10^6 vs 10^3 is a 1000x amplifier.
* **peak RSS** — an eager roster at 10^6 ids would need ~P x N x 4 bytes
  ~ 26 GiB of client state alone; the lazy directory materializes only
  the touched cohort.

Every cell runs in its own subprocess: ``getrusage`` reports a
process-lifetime high-water mark, so cells sharing a process would see
each other's peaks (and the first cell's warmed caches).

The headline criterion mirrors the ISSUE: from the smallest to the
largest population, rounds/sec may degrade at most 10% and peak RSS may
grow at most 10%.

Output: ``benchmarks/out/population_scale.json`` plus (on a repo
checkout) the root ``BENCH_population.json`` artifact consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, save_json  # noqa: E402

COHORT = 64
ROUNDS = 20
#: max tolerated movement from the smallest to the largest population
TOLERANCE = 0.10

WORKLOAD = dict(
    dataset="mini_mnist", model="mlp", method="fedavg", partition="iid",
    n_clients=COHORT, clients_per_round=COHORT,
    samples_per_client=20, batch_size=20, lr=0.05, seed=0,
)

POPULATIONS = (10**3, 10**4, 10**5, 10**6)

#: one benchmark cell, run via ``python -c`` in a fresh process.  Training
#: time excludes the dataset build (identical across cells by construction);
#: RSS includes everything the process ever touched.
_CELL_SCRIPT = """\
import json, resource, sys, time
from repro.api import ExperimentSpec, run_experiment
workload = json.loads(sys.argv[1])
spec = ExperimentSpec(**workload, population_size=int(sys.argv[2]),
                      rounds=int(sys.argv[3]))
data = spec.build_data()
t0 = time.perf_counter()
history = run_experiment(spec, data=data)
elapsed = time.perf_counter() - t0
selected = sorted({c for r in history.records for c in r.selected})
print(json.dumps({
    "rounds_per_sec": len(history.records) / elapsed,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "final_accuracy": history.records[-1].test_accuracy,
    "max_selected_id": selected[-1],
}))
"""


def _measure_cell(population: int, rounds: int) -> dict:
    out = subprocess.run(
        [sys.executable, "-c", _CELL_SCRIPT,
         json.dumps(WORKLOAD), str(population), str(rounds)],
        capture_output=True, text=True, check=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(filter(None, [
                 os.path.join(os.path.dirname(__file__), "..", "src"),
                 os.environ.get("PYTHONPATH")]))},
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _run(rounds: int = ROUNDS, populations=POPULATIONS):
    cells = {}
    for population in populations:
        cell = _measure_cell(population, rounds)
        # the sampler really used the virtual space (not just the shards)
        assert cell["max_selected_id"] >= COHORT, (
            f"population {population}: no virtual id beyond the shard count "
            "was ever selected — the population sampler is not in the loop")
        cells[str(population)] = cell

    smallest = cells[str(min(populations))]
    largest = cells[str(max(populations))]
    rps_ratio = largest["rounds_per_sec"] / smallest["rounds_per_sec"]
    rss_ratio = largest["peak_rss_kb"] / smallest["peak_rss_kb"]

    payload = {
        "workload": {**WORKLOAD, "rounds": rounds},
        "populations": list(populations),
        "cells": cells,
        "criterion": {
            "tolerance": TOLERANCE,
            "rounds_per_sec_ratio_largest_vs_smallest": round(rps_ratio, 4),
            "peak_rss_ratio_largest_vs_smallest": round(rss_ratio, 4),
        },
    }
    save_json("population_scale", payload)

    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    if os.path.isfile(os.path.join(root, "ROADMAP.md")):
        with open(os.path.join(root, "BENCH_population.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    print_table(
        f"population scale (cohort {COHORT}, {rounds} rounds, "
        f"tolerance {TOLERANCE:.0%})",
        ["population", "rounds/sec", "peak RSS MiB", "final %"],
        [[f"{int(p):.0e}".replace("e+0", "e"),
          f"{c['rounds_per_sec']:.2f}",
          f"{c['peak_rss_kb'] / 1024:.1f}",
          f"{c['final_accuracy']:.2f}"]
         for p, c in cells.items()],
    )

    assert rps_ratio >= 1.0 - TOLERANCE, (
        f"rounds/sec degraded {1 - rps_ratio:.1%} from population "
        f"{min(populations):g} to {max(populations):g} (tolerance "
        f"{TOLERANCE:.0%}) — something in the round loop is O(population)")
    assert rss_ratio <= 1.0 + TOLERANCE, (
        f"peak RSS grew {rss_ratio - 1:.1%} from population "
        f"{min(populations):g} to {max(populations):g} (tolerance "
        f"{TOLERANCE:.0%}) — client or state memory is O(population)")
    return payload


def test_population_scale(benchmark):
    from conftest import run_once

    run_once(benchmark, lambda: _run(rounds=10,
                                     populations=(10**3, 10**6)))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="measure the two extreme populations only with "
                             "a shorter round budget")
    args = parser.parse_args()
    if args.quick:
        _run(rounds=10, populations=(10**3, 10**6))
    else:
        _run()
