"""Figs. 1 and 3: the illustrative update-geometry toys.

Fig. 1 — with IID data (identical local optima) local updates stay
consistent; with non-IID data the plain-FedAvg global iterate is biased
toward the mean of the client optima, away from the true global optimum.

Fig. 3 — FedProx's proximal pull constrains divergence but slows progress;
FedTrip's extra push away from the historical model explores further and
reaches the global optimum faster.  We quantify both with
distance-to-optimum trajectories of the exact quadratic toy.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import print_table, save_json
from repro.analysis import ToyFLProblem, simulate_toy


def _run():
    iid = ToyFLProblem.two_client(separation=0.0)
    noniid = ToyFLProblem.two_client(separation=2.5)
    out = {}
    # Fig. 1: IID vs non-IID consistency under plain local SGD.
    for label, prob in (("iid", iid), ("noniid", noniid)):
        res = simulate_toy(prob, "fedavg", rounds=25, local_steps=4, lr=0.08)
        # Inconsistency: distance between the two clients' round-end models,
        # averaged over rounds.
        gaps = [
            float(np.linalg.norm(np.asarray(r[0][-1]) - np.asarray(r[1][-1])))
            for r in res["local_trajectories"]
        ]
        out[f"fig1_{label}"] = {
            "mean_update_inconsistency": float(np.mean(gaps)),
            "final_distance_to_optimum": float(res["distance_to_optimum"][-1]),
        }
    # Fig. 3: FedProx vs FedTrip on the non-IID toy.
    for method in ("fedavg", "fedprox", "fedtrip"):
        res = simulate_toy(noniid, method, rounds=25, local_steps=4, lr=0.08,
                           mu=0.6, xi=1.0)
        d = res["distance_to_optimum"]
        out[f"fig3_{method}"] = {
            "final_distance": float(d[-1]),
            "auc_distance": float(np.trapezoid(d)),  # lower = faster convergence
            "final_loss": res["final_loss"],
        }
    return out


def test_fig1_fig3_toy(benchmark):
    out = run_once(benchmark, _run)

    print_table(
        "Fig. 1: update consistency (quadratic toy)",
        ["setting", "mean client gap", "final dist to w*"],
        [
            ["IID", f"{out['fig1_iid']['mean_update_inconsistency']:.4f}",
             f"{out['fig1_iid']['final_distance_to_optimum']:.4f}"],
            ["non-IID", f"{out['fig1_noniid']['mean_update_inconsistency']:.4f}",
             f"{out['fig1_noniid']['final_distance_to_optimum']:.4f}"],
        ],
    )
    print_table(
        "Fig. 3: FedProx vs FedTrip trajectories (non-IID toy)",
        ["method", "final dist", "distance AUC (lower=faster)"],
        [[m, f"{out[f'fig3_{m}']['final_distance']:.4f}",
          f"{out[f'fig3_{m}']['auc_distance']:.3f}"]
         for m in ("fedavg", "fedprox", "fedtrip")],
    )
    save_json("fig1_fig3", out)

    # Fig. 1 shape: heterogeneity creates update inconsistency and bias.
    assert (
        out["fig1_noniid"]["mean_update_inconsistency"]
        > 5 * out["fig1_iid"]["mean_update_inconsistency"]
    )
    assert (
        out["fig1_noniid"]["final_distance_to_optimum"]
        > out["fig1_iid"]["final_distance_to_optimum"]
    )
    # Fig. 3 shape: FedTrip converges faster than FedProx (lower AUC) and
    # ends at least as close to the optimum.
    assert out["fig3_fedtrip"]["auc_distance"] < out["fig3_fedprox"]["auc_distance"]
    assert (
        out["fig3_fedtrip"]["final_distance"]
        <= out["fig3_fedprox"]["final_distance"] + 1e-6
    )
