"""Tables I-III: the paper's static/descriptive tables.

* Table I — qualitative comparison (information utilization vs resource
  cost) generated from each strategy's ``describe()`` metadata.
* Table II — dataset descriptions from the spec registry.
* Table III — model communication MB / params / MFLOPs from the profiler.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import print_table, save_json
from repro.algorithms import build_strategy
from repro.data import get_spec
from repro.models import build_alexnet, build_cnn, build_mlp, profile_model


def test_table1_method_properties(benchmark):
    def _run():
        rows = {}
        for name in ("fedprox", "feddyn", "moon", "fedgkd", "fedtrip"):
            rows[name] = build_strategy(name).describe()
        return rows

    rows = run_once(benchmark, _run)
    print_table(
        "Table I: information utilization vs resource cost",
        ["method", "family", "information", "cost"],
        [[r["name"], r["family"], r["information_utilization"], r["resource_cost"]]
         for r in rows.values()],
    )
    save_json("table1", rows)
    # The paper's claim: FedTrip uniquely pairs sufficient information
    # utilization with low resource cost.
    assert rows["fedtrip"]["information_utilization"] == "sufficient"
    assert rows["fedtrip"]["resource_cost"] == "low"
    assert rows["moon"]["resource_cost"].startswith("high")
    assert rows["fedprox"]["information_utilization"] == "insufficient"


def test_table2_datasets(benchmark):
    def _run():
        return {name: get_spec(name).table2_row()
                for name in ("mnist", "fmnist", "emnist", "cifar10")}

    rows = run_once(benchmark, _run)
    print_table(
        "Table II: dataset descriptions",
        ["dataset", "total", "classes", "channels", "client samples"],
        [[r["dataset"], r["total_samples"], r["classes"], r["channels"],
          r["client_samples"]] for r in rows.values()],
    )
    save_json("table2", rows)
    # Exact Table II values.
    assert rows["mnist"]["total_samples"] == 60_000
    assert rows["emnist"]["classes"] == 47
    assert rows["cifar10"]["channels"] == 3
    assert rows["fmnist"]["client_samples"] == 1_000


def test_table3_model_stats(benchmark):
    def _run():
        rng = np.random.default_rng(0)
        models = {
            "mlp": build_mlp((1, 28, 28), 10, rng=rng),
            "cnn": build_cnn((1, 28, 28), 10, rng=rng),
            "alexnet": build_alexnet((3, 32, 32), 10, rng=rng),
        }
        return {k: profile_model(m).table3_row() for k, m in models.items()}

    rows = run_once(benchmark, _run)
    print_table(
        "Table III: model communication / params / MFLOPs",
        ["model", "comm MB", "params M", "MFLOPs"],
        [[r["model"], r["communication_mb"], r["params_m"], r["mflops"]]
         for r in rows.values()],
    )
    save_json("table3", rows)
    # Shape of Table III: AlexNet dominates both params and FLOPs; the CNN
    # has fewer params than the MLP but far more FLOPs (conv weight sharing).
    assert rows["alexnet"]["params_m"] > rows["mlp"]["params_m"]
    assert rows["alexnet"]["mflops"] > rows["cnn"]["mflops"] > rows["mlp"]["mflops"]
    assert rows["cnn"]["params_m"] < rows["mlp"]["params_m"]
