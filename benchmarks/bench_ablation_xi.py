"""Ablations of FedTrip's design choices (DESIGN.md's ablation index).

1. **xi scheduling**: the paper's staleness-scaled xi vs a constant xi vs a
   participation-normalized xi vs xi=0 (which reduces FedTrip to FedProx).
2. **Historical anchor**: the client's last *local* model (paper) vs the
   last *global* model it received — isolates the value of client-specific
   history.

Expectation (lenient, mini-scale): the staleness-scaled, last-local variant
is at or near the top; xi=0 (no push term) is not better than the full
method; the ablations never beat the paper's design by a wide margin.
"""

from __future__ import annotations

from conftest import run_once
from harness import print_table, run_case, save_json

ROUNDS = 30
MU = 0.4
VARIANTS = {
    "paper (staleness, last-local)": {"mu": MU},
    "constant xi=1": {"mu": MU, "xi_mode": "constant", "xi_value": 1.0},
    "normalized xi": {"mu": MU, "xi_mode": "normalized", "participation_rate": 0.4},
    "no push (xi=0 == FedProx)": {"mu": MU, "xi_mode": "constant", "xi_value": 0.0},
    "last-global anchor": {"mu": MU, "historical_source": "last-global"},
}


def _run():
    results = {}
    for label, overrides in VARIANTS.items():
        hist = run_case(
            "mini_fmnist", "cnn", "fedtrip", rounds=ROUNDS, lr=0.02,
            partition="dirichlet", alpha=0.5, strategy_overrides=overrides,
        )
        results[label] = {
            "best_accuracy": hist.best_accuracy(),
            "final5": hist.final_accuracy_stats(last_k=5)["mean"],
            "rounds_to_80": hist.rounds_to_accuracy(80.0),
        }
    return results


def test_ablation_xi(benchmark):
    results = run_once(benchmark, _run)
    print_table(
        "Ablation: xi scheduling and historical anchor (CNN/FMNIST Dir-0.5)",
        ["variant", "best acc", "final5", "rounds to 80%"],
        [[k, f"{v['best_accuracy']:.2f}", f"{v['final5']:.2f}",
          str(v["rounds_to_80"]) if v["rounds_to_80"] else f">{ROUNDS}"]
         for k, v in results.items()],
    )
    save_json("ablation_xi", results)

    paper = results["paper (staleness, last-local)"]
    best = max(v["final5"] for v in results.values())
    # The paper's design is competitive with every ablation...
    assert paper["final5"] >= best - 4.0, results
    # ...and the push term contributes: dropping it (xi=0) should not give a
    # clearly better final model.
    assert results["no push (xi=0 == FedProx)"]["final5"] <= paper["final5"] + 3.0
