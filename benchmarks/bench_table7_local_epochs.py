"""Table VII: accuracy with enlarged aggregation intervals (local epochs 5
and 10), CNN on MNIST-like data, Dir-0.5, 4-of-10.

The paper reports accuracy at rounds 10 and 20 with 100-round-scale
workloads; at mini scale the model converges faster, so we report at rounds
5 and 10 of a 10-round run (same "early vs late checkpoint" structure).

Paper's shape: FedTrip highest at every (epochs, checkpoint) cell; more
local epochs raise everyone's early accuracy; SlowMo/FedDyn suffer from the
reduced frequency of their server-side corrections.
"""

from __future__ import annotations

from conftest import run_once
from harness import METHODS, print_table, run_case, save_json

ROUNDS = 10
CHECKPOINTS = (5, 10)   # 1-based round counts to report
EPOCHS = (5, 10)


def _run():
    # lr 0.01 (the paper's exact rate): with 5-10 local epochs each round
    # runs 20-40 local iterations, so the effective step budget matches the
    # paper's regime and higher rates destabilize every momentum method.
    # FedTrip runs with constant xi=1: when the aggregation interval is
    # enlarged, staleness measured in *rounds* no longer reflects the local
    # iteration count, so the raw-staleness scaling overshoots (the paper
    # defers exactly this xi discussion to future work; see DESIGN.md).
    results = {}
    for epochs in EPOCHS:
        row = {}
        for method in METHODS:
            overrides = (
                {"xi_mode": "constant", "xi_value": 1.0} if method == "fedtrip" else None
            )
            hist = run_case(
                "mini_mnist", "cnn", method, rounds=ROUNDS, lr=0.01,
                local_epochs=epochs, strategy_overrides=overrides,
            )
            row[method] = {
                f"acc_at_{cp}": hist.accuracy_at_round(cp - 1) for cp in CHECKPOINTS
            }
        results[f"epochs={epochs}"] = row
    return results


def test_table7_local_epochs(benchmark):
    results = run_once(benchmark, _run)

    rows = []
    for key, row in results.items():
        for cp in CHECKPOINTS:
            rows.append(
                [key, f"round {cp}"]
                + [f"{row[m][f'acc_at_{cp}']:.2f}" for m in METHODS]
            )
    print_table(
        "Table VII: accuracy with local epochs 5 and 10",
        ["local epochs", "checkpoint"] + list(METHODS),
        rows,
    )
    save_json("table7", results)

    # Shape: more local epochs improve the early checkpoint for most
    # methods, and FedTrip is at or near the top at the final checkpoint.
    improved = sum(
        results["epochs=10"][m][f"acc_at_{CHECKPOINTS[0]}"]
        >= results["epochs=5"][m][f"acc_at_{CHECKPOINTS[0]}"] - 1.0
        for m in METHODS
    )
    assert improved >= len(METHODS) - 2

    for key, row in results.items():
        final = {m: row[m][f"acc_at_{CHECKPOINTS[-1]}"] for m in METHODS}
        best = max(final.values())
        assert final["fedtrip"] >= best - 5.0, (key, final)
