"""Table VI: rounds to target accuracy with 4-of-50 client participation.

The paper's scalability study: the server samples 4 of 50 clients, so the
participation rate drops from 0.4 to 0.08 and FedTrip's staleness-scaled xi
grows (E[xi] shrinks per Theorem 1 — slower but still fastest overall).

Paper's shape: FedTrip fastest; MOON degrades notably at low participation
(its "previous model" is very stale); several methods miss the target
within budget (the paper's '>' entries).
"""

from __future__ import annotations

from conftest import run_once
from harness import METHODS, fmt_rounds, print_table, relative, run_case, save_json

ROUNDS = 24
# (label, dataset, partition kwargs, target) — CNN everywhere, 4-of-50.
# Targets are lower than Table IV's: with 80 samples/client and p=0.08 the
# mini-scale runs converge more slowly (the paper's 4-50 experiments see
# the opposite because their total data grows; our mini datasets are capped).
CASES = [
    ("MNIST Dir-0.1", "mini_mnist", {"partition": "dirichlet", "alpha": 0.1}, 50.0),
    ("MNIST Dir-0.5", "mini_mnist", {"partition": "dirichlet", "alpha": 0.5}, 70.0),
    ("MNIST Orth-5", "mini_mnist", {"partition": "orthogonal", "n_clusters": 5}, 55.0),
    ("FMNIST Dir-0.1", "mini_fmnist", {"partition": "dirichlet", "alpha": 0.1}, 45.0),
    ("FMNIST Dir-0.5", "mini_fmnist", {"partition": "dirichlet", "alpha": 0.5}, 60.0),
    ("FMNIST Orth-5", "mini_fmnist", {"partition": "orthogonal", "n_clusters": 5}, 42.0),
]


def _run():
    results = {}
    for label, dataset, pkw, target in CASES:
        row = {}
        for method in METHODS:
            hist = run_case(
                dataset, "cnn", method, rounds=ROUNDS, lr=0.02,
                n_clients=50, clients_per_round=4, samples_per_client=80,
                batch_size=40, **pkw,
            )
            row[method] = {
                "rounds_to_target": hist.rounds_to_accuracy(target),
                "best_accuracy": hist.best_accuracy(),
            }
        results[label] = {"target": target, "methods": row}
    return results


def test_table6_scalability(benchmark):
    results = run_once(benchmark, _run)

    header = ["method"] + [f"{lbl} ({case['target']:.0f}%)" for lbl, case in results.items()]
    rows = []
    for method in METHODS:
        cells = [method]
        for lbl, case in results.items():
            r = case["methods"][method]["rounds_to_target"]
            base = case["methods"]["fedavg"]["rounds_to_target"]
            cells.append(f"{fmt_rounds(r, ROUNDS)} ({relative(base, r)})")
        rows.append(cells)
    print_table("Table VI: rounds to target, 4-of-50 clients (vs FedAvg)", header, rows)
    save_json("table6", results)

    # Shape: FedTrip reaches the target in a majority of cases and, where
    # both reach it, is at least as fast as FedAvg most of the time.
    reached = sum(
        case["methods"]["fedtrip"]["rounds_to_target"] is not None
        for case in results.values()
    )
    assert reached >= len(CASES) - 2, f"FedTrip reached target in only {reached} cases"
    wins = ties = comparable = 0
    for case in results.values():
        rt = case["methods"]["fedtrip"]["rounds_to_target"]
        ra = case["methods"]["fedavg"]["rounds_to_target"]
        if rt is not None and ra is not None:
            comparable += 1
            wins += rt < ra
            ties += rt == ra
    if comparable:
        assert (wins + ties) >= comparable / 2
