"""Network federation: rounds/sec and bytes-on-wire vs the serial baseline.

Every leg trains the identical tiny sync workload; the serial leg runs
in-process, the network legs run the real loopback socket stack
(coordinator + worker subprocesses speaking the length-prefixed frame
protocol).  Measured:

* ``rounds/sec`` per leg — the network tax is frame encode/decode,
  pickle, kernel round-trips and the per-round broadcast, all on top of
  the same arithmetic (histories are byte-identical, which the harness
  asserts).
* ``bytes on wire`` (coordinator send + recv, from
  :meth:`NetworkExecutor.wire_stats`) — per leg and per round, with and
  without the top-k wire codec, so the codec's compression shows up as
  a concrete ratio instead of a claim.

Output: ``benchmarks/out/network_federation.json`` and (from the repo
checkout) the root ``BENCH_network.json`` baseline consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import get_data, print_table, save_json  # noqa: E402

from repro.api import ExperimentSpec  # noqa: E402
from repro.api.registry import build_mode  # noqa: E402

ROUNDS = 12
QUICK_ROUNDS = 4
REPEATS = 3
QUICK_REPEATS = 1
FLEETS = (2, 4, 8)
TOPK_FRACTION = 0.1


def _spec(rounds: int, **kwargs) -> ExperimentSpec:
    return ExperimentSpec(
        dataset="tiny", model="mlp", method="fedavg",
        partition="dirichlet", alpha=0.5,
        rounds=rounds, n_clients=8, clients_per_round=4,
        batch_size=20, local_epochs=1, lr=0.05, seed=0,
        mode="sync", **kwargs,
    )


def _time_leg(spec: ExperimentSpec, data, repeats: int):
    """Median rounds/sec over ``repeats`` runs; also the last run's history
    and wire stats (zeros for the serial leg).

    The engine is built per repeat so the network legs pay their real
    startup (socket bind, worker subprocess spawn, registration) — that
    cost is part of what the executor charges and hiding it would flatter
    the numbers.
    """
    secs, history, wire = [], None, {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine = build_mode("sync", spec=spec, data=data)
        with engine:
            history = engine.run()
            wire = (engine.executor.wire_stats()
                    if hasattr(engine.executor, "wire_stats") else {})
        secs.append(time.perf_counter() - t0)
    return spec.rounds / statistics.median(secs), history, wire


def _assert_identical(ref, hist, context):
    assert len(ref) == len(hist), context
    for ra, rb in zip(ref.records, hist.records):
        da, db = ra.to_dict(), rb.to_dict()
        for key in da:
            if key in ("wall_seconds", "phase_seconds"):
                continue
            assert da[key] == db[key], f"{context}: {key} diverged"


def _run(rounds: int = ROUNDS, repeats: int = REPEATS):
    data = get_data("tiny", 8, "dirichlet", alpha=0.5, seed=0)

    serial_rps, serial_hist, _ = _time_leg(_spec(rounds, executor="serial"),
                                           data, repeats)
    legs = {"serial": {"rounds_per_sec": round(serial_rps, 2),
                       "bytes_sent": 0, "bytes_recv": 0}}
    rows = [["serial (in-process)", f"{serial_rps:.1f}", "-", "-"]]

    for fleet in FLEETS:
        rps, hist, wire = _time_leg(
            _spec(rounds, executor="network", net_workers=fleet), data, repeats)
        _assert_identical(serial_hist, hist, f"network x{fleet}")
        legs[f"network_x{fleet}"] = {
            "rounds_per_sec": round(rps, 2),
            "bytes_sent": wire["bytes_sent"], "bytes_recv": wire["bytes_recv"],
        }
        rows.append([f"network x{fleet} workers", f"{rps:.1f}",
                     _fmt_bytes(wire["bytes_sent"] + wire["bytes_recv"]),
                     _fmt_bytes((wire["bytes_sent"] + wire["bytes_recv"]) / rounds)])

    # The top-k wire codec: same workload, deltas shipped sparse.  The
    # history legitimately differs from serial (sparsified updates), so
    # only completion is asserted, plus the compression actually biting.
    topk_rps, topk_hist, topk_wire = _time_leg(
        _spec(rounds, executor="network", net_workers=2,
              net_codec="topk", net_codec_kwargs={"fraction": TOPK_FRACTION}),
        data, repeats)
    assert len(topk_hist) == rounds, "top-k leg did not complete"
    dense = legs["network_x2"]
    dense_total = dense["bytes_sent"] + dense["bytes_recv"]
    topk_total = topk_wire["bytes_sent"] + topk_wire["bytes_recv"]
    assert topk_total < dense_total, (
        f"top-k codec must shrink wire traffic: {topk_total} vs {dense_total}")
    legs["network_x2_topk"] = {
        "rounds_per_sec": round(topk_rps, 2),
        "bytes_sent": topk_wire["bytes_sent"],
        "bytes_recv": topk_wire["bytes_recv"],
        "codec": {"name": "topk", "fraction": TOPK_FRACTION},
        "wire_reduction_vs_dense": round(dense_total / topk_total, 2),
    }
    rows.append([f"network x2 + topk({TOPK_FRACTION})", f"{topk_rps:.1f}",
                 _fmt_bytes(topk_total), _fmt_bytes(topk_total / rounds)])

    payload = {
        "workload": {
            "dataset": "tiny", "model": "mlp", "method": "fedavg",
            "n_clients": 8, "clients_per_round": 4,
            "rounds": rounds, "repeats": repeats,
        },
        "host": {"cpus": os.cpu_count()},
        "legs": legs,
        "identical_histories": True,
    }
    save_json("network_federation", payload)

    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    if os.path.isfile(os.path.join(root, "ROADMAP.md")):
        with open(os.path.join(root, "BENCH_network.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    print_table(
        f"Network federation vs serial ({rounds} rounds, median of {repeats})",
        ["leg", "rounds/sec", "wire total", "wire/round"], rows)
    return payload


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB"):
        if n < 1024:
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def test_network_federation(benchmark):
    from conftest import run_once

    run_once(benchmark, lambda: _run(rounds=QUICK_ROUNDS, repeats=QUICK_REPEATS))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"time {QUICK_ROUNDS} rounds x {QUICK_REPEATS} "
                             f"repeats instead of {ROUNDS} x {REPEATS}")
    args = parser.parse_args()
    if args.quick:
        _run(rounds=QUICK_ROUNDS, repeats=QUICK_REPEATS)
    else:
        _run()
