"""Fig. 4: client label distributions under the four heterogeneity types.

Regenerates the data behind the figure (a 10-client x 10-class count matrix
per setting) and asserts its qualitative description in Sec. V-A: under
Dir-0.5 most clients hold ~3-4 dominant classes, under Dir-0.1 only 1-2,
under Orthogonal-5 exactly 2, under Orthogonal-10 exactly 1.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import get_data, print_table, save_json
from repro.data import heterogeneity_summary


SETTINGS = [
    ("Dir-0.1", {"partition": "dirichlet", "alpha": 0.1}),
    ("Dir-0.5", {"partition": "dirichlet", "alpha": 0.5}),
    ("Orthogonal-5", {"partition": "orthogonal", "n_clusters": 5}),
    ("Orthogonal-10", {"partition": "orthogonal", "n_clusters": 10}),
]


def _dominant_classes(counts: np.ndarray, mass: float = 0.9) -> np.ndarray:
    """Per client: how many classes cover ``mass`` of its samples."""
    out = []
    for row in counts:
        order = np.sort(row)[::-1]
        cum = np.cumsum(order) / max(row.sum(), 1)
        out.append(int(np.searchsorted(cum, mass) + 1))
    return np.array(out)


def _run():
    results = {}
    for label, kwargs in SETTINGS:
        data = get_data(
            "mini_mnist", 10,
            kwargs["partition"],
            alpha=kwargs.get("alpha"),
            n_clusters=kwargs.get("n_clusters"),
        )
        counts = data.label_counts()
        results[label] = {
            "counts": counts.tolist(),
            "classes_present": (counts > 0).sum(axis=1).tolist(),
            "dominant_classes": _dominant_classes(counts).tolist(),
            "summary": heterogeneity_summary(counts),
        }
    return results


def test_fig4_partitions(benchmark):
    results = run_once(benchmark, _run)

    rows = []
    for label, r in results.items():
        rows.append([
            label,
            f"{np.mean(r['classes_present']):.1f}",
            f"{np.mean(r['dominant_classes']):.1f}",
            f"{r['summary']['mean_normalized_entropy']:.3f}",
        ])
    print_table(
        "Fig. 4: label-distribution skew per heterogeneity type",
        ["setting", "mean classes/client", "mean dominant classes", "norm. entropy"],
        rows,
    )
    from repro.analysis import heatmap

    for label, r in results.items():
        print(heatmap(np.asarray(r["counts"]),
                      row_labels=[f"cl{k}" for k in range(len(r["counts"]))],
                      col_labels=[str(c) for c in range(len(r["counts"][0]))],
                      title=f"Fig. 4 [{label}] client x class counts"))
    save_json("fig4", results)

    # Sec. V-A's qualitative description.
    dom01 = np.mean(results["Dir-0.1"]["dominant_classes"])
    dom05 = np.mean(results["Dir-0.5"]["dominant_classes"])
    assert dom01 <= 2.5, f"Dir-0.1 clients should hold 1-2 dominant classes, got {dom01}"
    assert dom01 < dom05 <= 5.5
    assert all(c == 2 for c in results["Orthogonal-5"]["classes_present"])
    assert all(c == 1 for c in results["Orthogonal-10"]["classes_present"])
    # Entropy ordering: Orth-10 < Dir-0.1 < Dir-0.5.
    e = {k: r["summary"]["mean_normalized_entropy"] for k, r in results.items()}
    assert e["Orthogonal-10"] < e["Dir-0.1"] < e["Dir-0.5"]
