"""Fig. 2: t-SNE of feature representations — global vs local vs historical.

The paper trains FedAvg's CNN on MNIST and embeds test-set features of (a)
the global model at round 50, (b) client 1's local model at round 50, and
(c) client 1's local model at round 30.  The figure supports two orderings
that motivate FedTrip's triplet term:

* the global model separates classes better than a client's local model
  (so pull the local model toward the global one);
* a newer local model beats an older one (so push away from the historical
  local model, not toward it).

At mini scale we use rounds 24 vs 12, give the local models 5 local epochs
on client 1's skewed shard (as drift accumulates over many paper-scale
iterations), and report both the t-SNE class-separation ratio (the visual
quantity) and global test accuracy (the assertable proxy).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import get_data, print_table, save_json
from repro import FLConfig, Simulation
from repro.algorithms import FedAvg
from repro.analysis import tsne
from repro.fl.evaluation import evaluate_model
from repro.nn.losses import CrossEntropyLoss
from repro.optim import SGD

ROUNDS = 24
MID_ROUND = 12
LOCAL_EPOCHS = 5
N_EMBED = 200


def _class_separation(embedding: np.ndarray, labels: np.ndarray) -> float:
    """Mean between-class centroid distance / mean within-class spread."""
    classes = np.unique(labels)
    centroids = np.stack([embedding[labels == c].mean(axis=0) for c in classes])
    within = np.mean(
        [np.linalg.norm(embedding[labels == c] - centroids[i], axis=1).mean()
         for i, c in enumerate(classes)]
    )
    diffs = centroids[:, None, :] - centroids[None, :, :]
    between = np.linalg.norm(diffs, axis=-1)[np.triu_indices(len(classes), k=1)].mean()
    return float(between / max(within, 1e-9))


def _train_local(model, dataset, lr: float, epochs: int) -> None:
    """Plain local SGDm training, as a FedAvg client would run."""
    crit = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=lr, momentum=0.9)
    model.train()
    for _ in range(epochs):
        for start in range(0, len(dataset), 50):
            xb = dataset.x[start : start + 50]
            yb = dataset.y[start : start + 50]
            logits = model(xb)
            _, d = crit(logits, yb)
            model.zero_grad()
            model.backward(d)
            opt.step()


def _run():
    data = get_data("mini_mnist", 10, "dirichlet", alpha=0.5)
    config = FLConfig(rounds=ROUNDS, n_clients=10, clients_per_round=4,
                      batch_size=50, lr=0.02, seed=0)
    sim = Simulation(data, FedAvg(), config, model_name="cnn")
    snapshots = {}
    for t in range(ROUNDS):
        sim.run_round()
        if t + 1 in (MID_ROUND, ROUNDS):
            snapshots[t + 1] = [w.copy() for w in sim.server.weights]

    x = data.test.x[:N_EMBED]
    y = data.test.y[:N_EMBED]
    shard = data.client_dataset(1)
    model = sim.global_model()

    panels = {}
    # (a) global model at the final round.
    model.set_weights(snapshots[ROUNDS])
    panels[f"global_r{ROUNDS}"] = model.get_weights()
    # (b, c) client 1's local models from the final and mid checkpoints.
    for r in (ROUNDS, MID_ROUND):
        model.set_weights(snapshots[r])
        _train_local(model, shard, config.lr, LOCAL_EPOCHS)
        panels[f"local1_r{r}"] = model.get_weights()

    out = {}
    for name, weights in panels.items():
        model.set_weights(weights)
        model.eval()
        _, z = model.forward_with_features(x)
        emb = tsne(z, perplexity=25, iterations=250, seed=0)
        acc, _ = evaluate_model(model, data.test)
        out[name] = {
            "tsne_separation": _class_separation(emb, y),
            "test_accuracy": acc,
        }
    sim.close()
    return out


def test_fig2_tsne(benchmark):
    out = run_once(benchmark, _run)
    print_table(
        "Fig. 2: feature quality of global vs local vs historical models",
        ["panel", "t-SNE separation", "test accuracy %"],
        [[k, f"{v['tsne_separation']:.3f}", f"{v['test_accuracy']:.2f}"]
         for k, v in out.items()],
    )
    save_json("fig2", out)

    g = out[f"global_r{ROUNDS}"]
    l_new = out[f"local1_r{ROUNDS}"]
    l_old = out[f"local1_r{MID_ROUND}"]
    # Ordering 1: the global model generalizes better than the drifted local.
    assert g["test_accuracy"] > l_new["test_accuracy"], (g, l_new)
    # Ordering 2: the newer local model beats the older (historical) one.
    assert l_new["test_accuracy"] > l_old["test_accuracy"] - 1.0, (l_new, l_old)
    assert g["test_accuracy"] > l_old["test_accuracy"], (g, l_old)
