"""Table VIII (Appendix A): analytic computation/communication overhead of
the attaching operations, evaluated for the paper's three models.

Also reproduces the appendix's headline per-iteration ratios: MOON's attach
cost is ~50x / ~171x / ~1336x FedTrip's on MLP / CNN / AlexNet (paper
values; ours differ in magnitude because the models are channel-reduced,
but the ordering and orders-of-magnitude growth with model size hold).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from harness import print_table, save_json
from repro.costs import (
    TABLE8_FORMULAS,
    WorkloadShape,
    attach_overhead_flops,
    comm_overhead_units,
)
from repro.models import build_alexnet, build_cnn, build_mlp, profile_model

TABLE8_METHODS = ("scaffold", "mimelite", "moon", "fedprox", "feddyn", "fedtrip")


def _profiles():
    rng = np.random.default_rng(0)
    return {
        "mlp": profile_model(build_mlp((1, 28, 28), 10, rng=rng)),
        "cnn": profile_model(build_cnn((1, 28, 28), 10, rng=rng)),
        "alexnet": profile_model(build_alexnet((3, 32, 32), 10, rng=rng)),
    }


def _run():
    profiles = _profiles()
    shape = WorkloadShape(n_samples=600, batch_size=50, local_epochs=1)
    out = {"formulas": TABLE8_FORMULAS, "evaluated": {}}
    for mname, prof in profiles.items():
        rows = {}
        for method in TABLE8_METHODS:
            rows[method] = {
                "attach_flops_per_round": attach_overhead_flops(method, prof, shape),
                "extra_comm_units": comm_overhead_units(method),
            }
        # Per-iteration MOON/FedTrip ratio (the appendix's 50x/171x/1336x).
        moon_it = shape.batch_size * 2 * prof.forward_flops
        trip_it = 4 * prof.num_params
        rows["_moon_over_fedtrip_per_iteration"] = moon_it / trip_it
        out["evaluated"][mname] = rows
    return out


def test_table8_overhead_model(benchmark):
    out = run_once(benchmark, _run)

    rows = []
    for method in TABLE8_METHODS:
        rows.append(
            [
                method,
                TABLE8_FORMULAS[method]["computation"],
                TABLE8_FORMULAS[method]["communication"],
            ]
            + [
                f"{out['evaluated'][m][method]['attach_flops_per_round']:.3g}"
                for m in ("mlp", "cnn", "alexnet")
            ]
        )
    print_table(
        "Table VIII: attach-op overhead (formulas + FLOPs/round per model)",
        ["method", "computation", "comm", "MLP", "CNN", "AlexNet"],
        rows,
    )
    ratio_row = [
        ["MOON/FedTrip per iter"]
        + [f"{out['evaluated'][m]['_moon_over_fedtrip_per_iteration']:.1f}x"
           for m in ("mlp", "cnn", "alexnet")]
    ]
    print_table("Appendix A headline ratios", ["quantity", "MLP", "CNN", "AlexNet"], ratio_row)
    save_json("table8", out)

    ev = out["evaluated"]
    for m in ("mlp", "cnn", "alexnet"):
        # FedTrip == FedDyn == 2x FedProx; zero extra communication.
        t = ev[m]["fedtrip"]["attach_flops_per_round"]
        assert t == ev[m]["feddyn"]["attach_flops_per_round"]
        assert t == 2 * ev[m]["fedprox"]["attach_flops_per_round"]
        assert ev[m]["fedtrip"]["extra_comm_units"] == 0
        assert ev[m]["scaffold"]["extra_comm_units"] == 2
    # The MOON/FedTrip ratio must grow with model compute intensity.
    r = [ev[m]["_moon_over_fedtrip_per_iteration"] for m in ("mlp", "cnn", "alexnet")]
    assert r[0] < r[1] < r[2]
    assert r[2] > 50  # orders of magnitude for the conv-heavy model
