"""Shared benchmark harness.

Every bench file regenerates one table or figure of the paper.  Because the
paper's tables reuse the same training runs (Table V reports the FLOPs of
Table IV's runs; Fig. 5's Dir-0.5 curves are Table IV's CNN runs), the
harness memoizes completed runs in-process: within one ``pytest
benchmarks/`` session each (dataset, model, method, partition, ...) case is
trained exactly once.

Scale note: the paper trains on full MNIST/FMNIST/EMNIST/CIFAR-10 with 100
rounds on a GPU; this harness uses the ``mini_*`` synthetic datasets and
fewer rounds so the full grid runs on one CPU core (see DESIGN.md's
substitution table).  Shape comparisons — who converges first, by what
factor, where methods break down — are preserved; absolute accuracies and
round counts are not comparable to the paper's.

Results are also dumped to ``benchmarks/out/*.json`` so EXPERIMENTS.md can
cite exact numbers.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro import build_federated_data
from repro.api import ExperimentSpec, run_experiment
from repro.fl.history import History

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: The six methods of the paper's evaluation, in its presentation order.
METHODS = ("fedtrip", "fedavg", "fedprox", "slowmo", "moon", "feddyn")

#: run memoization, keyed by ExperimentSpec.cell_key().
_RUN_CACHE: Dict[str, History] = {}
_DATA_CACHE: Dict[Tuple, object] = {}


def get_data(
    dataset: str,
    n_clients: int,
    partition: str,
    alpha: Optional[float] = None,
    n_clusters: Optional[int] = None,
    samples_per_client: Optional[int] = None,
    seed: int = 0,
):
    key = (dataset, n_clients, partition, alpha, n_clusters, samples_per_client, seed)
    if key not in _DATA_CACHE:
        kwargs = {}
        if alpha is not None:
            kwargs["alpha"] = alpha
        if n_clusters is not None:
            kwargs["n_clusters"] = n_clusters
        _DATA_CACHE[key] = build_federated_data(
            dataset,
            n_clients=n_clients,
            partition=partition,
            seed=seed,
            samples_per_client=samples_per_client,
            **kwargs,
        )
    return _DATA_CACHE[key]


def run_case(
    dataset: str,
    model: str,
    method: str,
    partition: str = "dirichlet",
    alpha: Optional[float] = 0.5,
    n_clusters: Optional[int] = None,
    rounds: int = 30,
    n_clients: int = 10,
    clients_per_round: int = 4,
    batch_size: int = 50,
    local_epochs: int = 1,
    lr: float = 0.03,
    seed: int = 0,
    samples_per_client: Optional[int] = None,
    strategy_overrides: Optional[dict] = None,
    executor: str = "auto",
    n_workers: int = 1,
) -> History:
    """Train one (case, method) cell, memoized for the whole pytest session.

    A thin adapter: normalizes the arguments into an
    :class:`~repro.api.spec.ExperimentSpec` and defers to
    :func:`~repro.api.engine.run_experiment`, memoizing on the spec's
    stable ``cell_key()``.
    """
    spec = ExperimentSpec(
        dataset=dataset, model=model, method=method, partition=partition,
        alpha=alpha if partition == "dirichlet" else None,
        n_clusters=n_clusters if n_clusters is not None else 5,
        rounds=rounds, n_clients=n_clients, clients_per_round=clients_per_round,
        batch_size=batch_size, local_epochs=local_epochs, lr=lr, seed=seed,
        samples_per_client=samples_per_client,
        overrides=strategy_overrides or {},
        executor=executor, n_workers=n_workers,
    )
    key = spec.cell_key()
    if key not in _RUN_CACHE:
        # Reuse the session-wide data cache: the six methods of one case
        # (and every lr/rounds axis) share a single partitioned dataset.
        data = get_data(
            dataset, n_clients, partition,
            alpha=spec.alpha,
            n_clusters=n_clusters if partition == "orthogonal" else None,
            samples_per_client=samples_per_client, seed=seed,
        )
        _RUN_CACHE[key] = run_experiment(spec, data=data)
    return _RUN_CACHE[key]


# ---------------------------------------------------------------------------
# Table IV / Fig. 5 case definitions (mini-scale analogues).
# ---------------------------------------------------------------------------

#: (label, dataset, model, lr, rounds, target accuracy %, per-method
#: strategy overrides) under Dir-0.5, 4-of-10.  Analogue of Table IV's six
#: columns.  Targets sit in the late-convergence regime where the methods
#: separate (the paper's targets are likewise near each model's plateau).
#:
#: lr calibration: the paper trains everything at lr 0.01 for 100 rounds;
#: our 30-round mini-scale runs use lr 0.02 (CNN/AlexNet) and 0.05 (MLP) —
#: at higher CNN rates the momentum methods destabilize and FedTrip's
#: staleness-scaled push overshoots (the Fig. 7 large-mu failure mode).
#: At these rates every method runs the paper's default hyperparameters.
TABLE4_CASES: List[Tuple[str, str, str, float, int, float, dict]] = [
    ("MLP/MNIST", "mini_mnist", "mlp", 0.05, 30, 93.0, {}),
    ("MLP/FMNIST", "mini_fmnist", "mlp", 0.05, 30, 88.0, {}),
    ("CNN/MNIST", "mini_mnist", "cnn", 0.02, 30, 94.0, {}),
    ("CNN/FMNIST", "mini_fmnist", "cnn", 0.02, 30, 85.0, {}),
    ("CNN/EMNIST", "mini_emnist", "cnn", 0.02, 30, 80.0, {}),
    ("AlexNet/CIFAR", "mini_cifar10", "alexnet", 0.02, 12, 90.0, {}),
]


def fmt_rounds(r: Optional[int], rounds: int) -> str:
    return str(r) if r is not None else f">{rounds}"


def relative(base: Optional[int], r: Optional[int]) -> str:
    if base is None or r is None:
        return "-"
    return f"{base / r:.2f}x"


def save_json(name: str, payload) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    return path


def print_table(title: str, header: List[str], rows: List[List[str]]) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
