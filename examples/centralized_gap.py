#!/usr/bin/env python
"""How much of the centralized ceiling does each FL method recover?

Trains (a) a centralized model on the pooled client data — the upper bound
no FL method can beat — and (b) FedTrip / FedAvg under Dirichlet skew, then
renders the three accuracy curves side by side in the terminal and reports
the fraction of the centralized-vs-FedAvg gap that FedTrip closes.

Run:  python examples/centralized_gap.py [--rounds N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.analysis import line_plot
from repro.fl import train_centralized
from repro.models import build_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--dataset", default="mini_mnist")
    parser.add_argument("--alpha", type=float, default=0.5)
    args = parser.parse_args()

    data = build_federated_data(
        args.dataset, n_clients=10, partition="dirichlet", alpha=args.alpha, seed=0
    )
    config = FLConfig(rounds=args.rounds, n_clients=10, clients_per_round=4,
                      batch_size=50, lr=0.05, seed=0)

    # Centralized ceiling: one epoch of pooled training per FL round keeps
    # the gradient-step budget comparable (4/10 of the data per round vs
    # the full pool per epoch — the ceiling sees *more* data per unit x).
    model = build_model("mlp", data.spec.input_shape, data.spec.num_classes,
                        rng=np.random.default_rng(0))
    central = train_centralized(data, model, epochs=args.rounds,
                                batch_size=50, lr=config.lr)

    curves = {"centralized": central.accuracies}
    finals = {}
    for method in ("fedtrip", "fedavg"):
        strategy = build_strategy(method, model="mlp", dataset=args.dataset)
        sim = Simulation(data, strategy, config, model_name="mlp")
        hist = sim.run()
        curves[method] = [a for a in hist.accuracies()]
        finals[method] = hist.final_accuracy_stats(last_k=5)["mean"]
        sim.close()

    print(line_plot(curves, width=70, height=16,
                    title=f"accuracy vs round — {args.dataset}, Dir-{args.alpha}",
                    y_label=" accuracy %"))

    ceiling = max(central.accuracies)
    gap_avg = ceiling - finals["fedavg"]
    gap_trip = ceiling - finals["fedtrip"]
    print(f"\ncentralized ceiling : {ceiling:.2f}%")
    print(f"fedavg final        : {finals['fedavg']:.2f}%  (gap {gap_avg:.2f})")
    print(f"fedtrip final       : {finals['fedtrip']:.2f}%  (gap {gap_trip:.2f})")
    if gap_avg > 0:
        closed = 100.0 * (gap_avg - gap_trip) / gap_avg
        print(f"FedTrip closes {closed:.0f}% of the heterogeneity gap")


if __name__ == "__main__":
    main()
