#!/usr/bin/env python
"""Compare the paper's six methods head-to-head (a mini Table IV / Fig. 5).

Trains FedTrip, FedAvg, FedProx, SlowMo, MOON and FedDyn on the same
Dirichlet-0.5 partition of a synthetic MNIST-like dataset, then prints:

* the convergence curve of each method (EMA-smoothed, as in Fig. 5);
* rounds-to-target-accuracy with FedAvg-relative speedups (Table IV's
  format);
* total training GFLOPs (Table V's format).

Run:  python examples/compare_algorithms.py [--rounds N] [--dataset NAME]
"""

from __future__ import annotations

import argparse

from repro.algorithms import PAPER_EVALUATED
from repro.api import ExperimentSpec, run_experiment


def sparkline(values, width: int = 40) -> str:
    """Render an accuracy curve as a unicode sparkline."""
    import numpy as np

    vals = np.asarray([v for v in values if v == v])  # drop NaN
    if vals.size == 0:
        return ""
    idx = np.linspace(0, vals.size - 1, min(width, vals.size)).astype(int)
    vals = vals[idx]
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = vals.min(), vals.max()
    span = max(hi - lo, 1e-9)
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in vals)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=25)
    parser.add_argument("--dataset", default="mini_mnist")
    parser.add_argument("--model", default="mlp", choices=["mlp", "cnn", "alexnet"])
    parser.add_argument("--target", type=float, default=75.0,
                        help="target accuracy %% for the rounds-to-target table")
    args = parser.parse_args()

    base = ExperimentSpec(
        dataset=args.dataset, model=args.model, partition="dirichlet", alpha=0.5,
        n_clients=10, clients_per_round=4, rounds=args.rounds,
        batch_size=50, lr=0.05, seed=0,
    )

    results = {}
    for name in PAPER_EVALUATED:
        hist = run_experiment(base.with_axis("method", name))
        results[name] = hist
        print(f"trained {name:8s}  best={hist.best_accuracy():6.2f}%  "
              f"{sparkline(hist.ema_accuracy())}")

    print(f"\n=== rounds to {args.target:.0f}% accuracy (Table IV format) ===")
    base = results["fedavg"].rounds_to_accuracy(args.target)
    for name, hist in sorted(results.items(), key=lambda kv: kv[1].rounds_to_accuracy(args.target) or 10**9):
        r = hist.rounds_to_accuracy(args.target)
        rel = f"{r and base and base / r:.2f}x vs fedavg" if (r and base) else ""
        print(f"  {name:8s}  {r if r is not None else '>' + str(args.rounds):>5}  {rel}")

    print("\n=== total training GFLOPs (Table V format) ===")
    for name, hist in sorted(results.items(), key=lambda kv: kv[1].total_gflops()):
        print(f"  {name:8s}  {hist.total_gflops():10.3f}")

    print("\n=== final accuracy, mean of last 10 evaluated rounds (Fig. 6) ===")
    for name, hist in sorted(results.items(),
                             key=lambda kv: -kv[1].final_accuracy_stats()["mean"]):
        s = hist.final_accuracy_stats()
        print(f"  {name:8s}  mean={s['mean']:6.2f}  q1={s['q1']:6.2f}  q3={s['q3']:6.2f}")


if __name__ == "__main__":
    main()
