#!/usr/bin/env python
"""Study FedTrip under the paper's four heterogeneity types (Fig. 4 + Fig. 6).

Partitions the same dataset with Dir-0.1, Dir-0.5, Orthogonal-5 and
Orthogonal-10, shows each partition's client label distribution (the data
behind Fig. 4), then trains FedTrip and FedAvg on every partition and
reports final accuracies (the Fig. 6 comparison at mini scale).

Run:  python examples/heterogeneity_study.py [--rounds N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.data import heterogeneity_summary


PARTITIONS = [
    ("Dir-0.1", "dirichlet", {"alpha": 0.1}),
    ("Dir-0.5", "dirichlet", {"alpha": 0.5}),
    ("Orthogonal-5", "orthogonal", {"n_clusters": 5}),
    ("Orthogonal-10", "orthogonal", {"n_clusters": 10}),
]


def print_label_matrix(name: str, counts: np.ndarray) -> None:
    """Fig. 4 as text: one row per client, one column per class."""
    print(f"\n{name}: client x class label counts")
    header = "        " + " ".join(f"c{c:<4d}" for c in range(counts.shape[1]))
    print(header)
    for k, row in enumerate(counts):
        cells = " ".join(f"{v:<5d}" for v in row)
        print(f"  cl{k:<3d} {cells}")
    summary = heterogeneity_summary(counts)
    print(f"  mean classes/client = {summary['mean_classes_per_client']:.1f}, "
          f"normalized entropy = {summary['mean_normalized_entropy']:.3f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--dataset", default="mini_mnist")
    args = parser.parse_args()

    config = FLConfig(
        rounds=args.rounds, n_clients=10, clients_per_round=4,
        batch_size=50, lr=0.05, seed=0,
    )

    results = {}
    for label, kind, kwargs in PARTITIONS:
        data = build_federated_data(
            args.dataset, n_clients=10, partition=kind, seed=0, **kwargs
        )
        print_label_matrix(label, data.label_counts())
        row = {}
        for method in ("fedtrip", "fedavg"):
            strategy = build_strategy(method, model="mlp", dataset=args.dataset)
            sim = Simulation(data, strategy, config, model_name="mlp")
            hist = sim.run()
            row[method] = hist.final_accuracy_stats(last_k=5)
            sim.close()
        results[label] = row

    print("\n=== final accuracy under each heterogeneity type (Fig. 6 style) ===")
    print(f"{'partition':>14} {'fedtrip':>10} {'fedavg':>10} {'advantage':>10}")
    for label, row in results.items():
        t, a = row["fedtrip"]["mean"], row["fedavg"]["mean"]
        print(f"{label:>14} {t:>10.2f} {a:>10.2f} {t - a:>+10.2f}")


if __name__ == "__main__":
    main()
