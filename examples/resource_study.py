#!/usr/bin/env python
"""Deployment-facing resource study: simulated wall-clock time to accuracy.

The paper argues FedTrip is "resource-efficient" in rounds and GFLOPs; this
example converts those into simulated *hours* under three device/network
profiles (wifi workstation, 4G phone, constrained IoT node) with a 3x
compute-speed spread across clients (stragglers).  It also demonstrates the
update-compression extension: how many bytes 8-bit quantization or top-10%
sparsification would save per round, and the reconstruction error each
introduces.

Run:  python examples/resource_study.py [--rounds N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.fl import (
    NETWORK_PRESETS,
    QuantizationCompressor,
    SystemModel,
    TopKCompressor,
)
from repro.utils.vectorize import flatten_arrays


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--dataset", default="mini_mnist")
    parser.add_argument("--target", type=float, default=80.0)
    args = parser.parse_args()

    data = build_federated_data(
        args.dataset, n_clients=10, partition="dirichlet", alpha=0.5, seed=0
    )
    config = FLConfig(rounds=args.rounds, n_clients=10, clients_per_round=4,
                      batch_size=50, lr=0.05, seed=0)

    print(f"=== simulated time to {args.target:.0f}% accuracy "
          f"(straggler spread 3x) ===")
    print(f"{'method':>9} " + " ".join(f"{p:>12}" for p in NETWORK_PRESETS))
    for method in ("fedtrip", "fedavg", "moon", "scaffold"):
        cells = []
        for preset in NETWORK_PRESETS:
            strategy = build_strategy(method, model="mlp", dataset=args.dataset)
            sim = Simulation(data, strategy, config, model_name="mlp")
            sysmodel = SystemModel(preset, n_clients=10, heterogeneity=3.0).attach(sim)
            hist = sim.run()
            t = sysmodel.time_to_accuracy(hist, args.target)
            cells.append(f"{t:>11.1f}s" if t is not None else f"{'miss':>12}")
            sim.close()
        print(f"{method:>9} " + " ".join(cells))

    # Compression extension: per-round payload if updates were compressed.
    print("\n=== update compression (one FedTrip client update) ===")
    strategy = build_strategy("fedtrip", model="mlp", dataset=args.dataset)
    sim = Simulation(data, strategy, config, model_name="mlp")
    before = [w.copy() for w in sim.server.weights]
    sim.run_round()
    update = [w - b for w, b in zip(sim.server.weights, before)]
    raw_bytes = flatten_arrays(update).nbytes
    print(f"{'scheme':>16} {'bytes':>10} {'ratio':>7} {'max err':>10}")
    print(f"{'float32 (raw)':>16} {raw_bytes:>10} {'1.0x':>7} {'-':>10}")
    for name, comp in [("int8 quantized", QuantizationCompressor(bits=8)),
                       ("top-10% sparse", TopKCompressor(fraction=0.1))]:
        payload, nbytes = comp.encode(update)
        back = comp.decode(payload, update)
        err = max(float(np.abs(b - u).max()) for b, u in zip(back, update))
        print(f"{name:>16} {int(nbytes):>10} {raw_bytes / nbytes:>6.1f}x {err:>10.2e}")
    sim.close()


if __name__ == "__main__":
    main()
