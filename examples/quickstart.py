#!/usr/bin/env python
"""Quickstart: train FedTrip on a non-IID federated dataset in ~30 seconds.

Declares the whole run as one :class:`repro.api.ExperimentSpec` — a
synthetic MNIST-like dataset partitioned across 10 clients with a
Dirichlet(0.5) label skew (the paper's default heterogeneity), the paper's
CNN, and FedTrip for 20 communication rounds — then trains it through
``run_experiment`` with two callbacks: a custom progress printer and early
stopping at 85% test accuracy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Callback, EarlyStopping, ExperimentSpec, run_experiment
from repro.models import build_model, profile_model


class PrintProgress(Callback):
    """Print one table row per evaluated round."""

    def on_round_end(self, engine, record) -> None:
        if record.test_accuracy is not None:
            print(f"{record.round_idx:>5}  {record.test_accuracy:>10.2f}  "
                  f"{record.mean_train_loss:>10.4f}")


def main() -> None:
    # 1. One declarative spec: data, partition, model, method, round loop.
    spec = ExperimentSpec(
        dataset="mini_mnist", model="cnn", method="fedtrip",
        partition="dirichlet", alpha=0.5,
        n_clients=10, clients_per_round=4,
        rounds=20, batch_size=50, local_epochs=1, lr=0.02, seed=0,
    )

    data = spec.build_data()
    print(f"dataset={data.spec.name}  clients={data.n_clients}  "
          f"samples/client={len(data.client_shards[0])}")
    counts = data.label_counts()
    print("classes held per client:", (counts > 0).sum(axis=1).tolist())

    profile = profile_model(
        build_model(spec.model, data.spec.input_shape, data.spec.num_classes)
    )
    print(f"\nmodel={profile.name}  params={profile.num_params:,}  "
          f"comm={profile.comm_mb:.3f} MB/direction")

    # 2. Train through the engine; callbacks observe the round loop.  The
    #    dataset built above for the stats printout is passed through so it
    #    is not generated twice.
    print(f"\n{'round':>5}  {'accuracy %':>10}  {'train loss':>10}")
    hist = run_experiment(
        spec, callbacks=[PrintProgress(), EarlyStopping(target_accuracy=85.0)],
        data=data,
    )

    # 3. Report.
    if hist.stop_reason:
        print(f"\nearly stop: {hist.stop_reason}")
    print(f"\nbest accuracy        : {hist.best_accuracy():.2f}%")
    print(f"rounds to 70% acc    : {hist.rounds_to_accuracy(70.0)}")
    print(f"total training GFLOPs: {hist.total_gflops():.3f}")
    print(f"total communication  : {hist.total_comm_mb():.2f} MB")


if __name__ == "__main__":
    main()
