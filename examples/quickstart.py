#!/usr/bin/env python
"""Quickstart: train FedTrip on a non-IID federated dataset in ~30 seconds.

Builds a synthetic MNIST-like dataset partitioned across 10 clients with a
Dirichlet(0.5) label skew (the paper's default heterogeneity), trains the
paper's CNN with FedTrip for 20 communication rounds, and prints the
accuracy curve plus the resource totals FedTrip is designed to minimise.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FLConfig, Simulation, build_federated_data, build_strategy


def main() -> None:
    # 1. Federated data: 10 clients, Dirichlet(0.5) label skew.
    data = build_federated_data(
        "mini_mnist", n_clients=10, partition="dirichlet", alpha=0.5, seed=0
    )
    print(f"dataset={data.spec.name}  clients={data.n_clients}  "
          f"samples/client={len(data.client_shards[0])}")
    counts = data.label_counts()
    print("classes held per client:", (counts > 0).sum(axis=1).tolist())

    # 2. The paper's configuration: 4-of-10 clients per round, SGDm(0.9).
    config = FLConfig(
        rounds=20, n_clients=10, clients_per_round=4,
        batch_size=50, local_epochs=1, lr=0.02, seed=0,
    )

    # 3. FedTrip with the paper's CNN hyperparameter mu=0.4.
    strategy = build_strategy("fedtrip", model="cnn", dataset="mini_mnist")
    sim = Simulation(data, strategy, config, model_name="cnn")

    # 4. Train and report.
    print(f"\nmodel={sim.profile.name}  params={sim.profile.num_params:,}  "
          f"comm={sim.profile.comm_mb:.3f} MB/direction")
    print(f"\n{'round':>5}  {'accuracy %':>10}  {'train loss':>10}")
    for _ in range(config.rounds):
        rec = sim.run_round()
        if rec.test_accuracy is not None:
            print(f"{rec.round_idx:>5}  {rec.test_accuracy:>10.2f}  "
                  f"{rec.mean_train_loss:>10.4f}")

    hist = sim.history
    print(f"\nbest accuracy        : {hist.best_accuracy():.2f}%")
    print(f"rounds to 70% acc    : {hist.rounds_to_accuracy(70.0)}")
    print(f"total training GFLOPs: {hist.total_gflops():.3f}")
    print(f"total communication  : {hist.total_comm_mb():.2f} MB")
    sim.close()


if __name__ == "__main__":
    main()
