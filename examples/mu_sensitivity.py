#!/usr/bin/env python
"""Sweep FedTrip's regularization strength mu (the paper's Fig. 7).

For each mu in a grid spanning the paper's [0.1, 2.5] range, trains FedTrip
and reports the final/best accuracy and the rounds needed to reach a target
accuracy.  The paper's finding to look for: accuracy peaks at moderate mu
(~0.4), convergence keeps accelerating a bit past that, and large mu trades
accuracy away — so resource-constrained deployments pick a larger mu,
accuracy-critical ones a smaller mu.

Run:  python examples/mu_sensitivity.py [--rounds N]
"""

from __future__ import annotations

import argparse

from repro import FLConfig, FedTrip, Simulation, build_federated_data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--dataset", default="mini_mnist")
    parser.add_argument("--target", type=float, default=75.0)
    parser.add_argument("--mus", type=float, nargs="+",
                        default=[0.1, 0.2, 0.4, 0.8, 1.5, 2.5])
    args = parser.parse_args()

    data = build_federated_data(
        args.dataset, n_clients=10, partition="dirichlet", alpha=0.5, seed=0
    )
    config = FLConfig(
        rounds=args.rounds, n_clients=10, clients_per_round=4,
        batch_size=50, lr=0.05, seed=0,
    )

    print(f"{'mu':>6} {'best acc %':>11} {'final acc %':>12} "
          f"{'rounds to ' + str(args.target) + '%':>15}")
    for mu in args.mus:
        sim = Simulation(data, FedTrip(mu=mu), config, model_name="mlp")
        hist = sim.run()
        final = hist.final_accuracy_stats(last_k=5)["mean"]
        r = hist.rounds_to_accuracy(args.target)
        print(f"{mu:>6.2f} {hist.best_accuracy():>11.2f} {final:>12.2f} "
              f"{str(r) if r is not None else '>' + str(args.rounds):>15}")
        sim.close()


if __name__ == "__main__":
    main()
