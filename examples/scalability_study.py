#!/usr/bin/env python
"""Low-participation scalability: 4-of-10 vs 4-of-50 clients (Table VI).

In the 4-of-50 regime a client participates on average once every 12.5
rounds, so FedTrip's staleness-scaled xi grows large and the historical
push matters more.  This example also prints the Theorem 1 quantity
E[xi] = p ln p / (p - 1) for both regimes.

Run:  python examples/scalability_study.py [--rounds N]
"""

from __future__ import annotations

import argparse

from repro import FLConfig, Simulation, build_federated_data, build_strategy
from repro.analysis import expected_xi


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--dataset", default="mini_mnist")
    parser.add_argument("--target", type=float, default=70.0)
    args = parser.parse_args()

    regimes = [("4-of-10", 10, 200), ("4-of-50", 50, 80)]
    methods = ("fedtrip", "fedavg", "fedprox", "moon")

    for label, n_clients, per_client in regimes:
        p = 4 / n_clients
        print(f"\n=== {label}: participation p={p:.2f}, "
              f"E[xi]={expected_xi(p):.3f} (Theorem 1 coefficient) ===")
        data = build_federated_data(
            args.dataset, n_clients=n_clients, partition="dirichlet",
            alpha=0.5, seed=0, samples_per_client=per_client,
        )
        config = FLConfig(
            rounds=args.rounds, n_clients=n_clients, clients_per_round=4,
            batch_size=40, lr=0.05, seed=0,
        )
        print(f"{'method':>9} {'best acc %':>11} {'rounds to ' + str(args.target) + '%':>15}")
        for method in methods:
            strategy = build_strategy(method, model="mlp", dataset=args.dataset)
            sim = Simulation(data, strategy, config, model_name="mlp")
            hist = sim.run()
            r = hist.rounds_to_accuracy(args.target)
            print(f"{method:>9} {hist.best_accuracy():>11.2f} "
                  f"{str(r) if r is not None else '>' + str(args.rounds):>15}")
            sim.close()


if __name__ == "__main__":
    main()
