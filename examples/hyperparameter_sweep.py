#!/usr/bin/env python
"""Declarative hyperparameter sweep with disk caching.

Sweeps FedTrip's mu against heterogeneity level with the
`repro.experiments` grid runner.  Completed cells are cached under
``runs/sweep-demo/`` — re-run the script and only missing cells train.

Run:  python examples/hyperparameter_sweep.py [--rounds N]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentCell, SweepRunner, SweepSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--store", default="runs/sweep-demo")
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    base = ExperimentCell(
        dataset="mini_mnist", model="mlp", method="fedtrip",
        partition="dirichlet", rounds=args.rounds, lr=0.05,
        n_clients=10, clients_per_round=4,
    )
    spec = SweepSpec(base, axes={
        "mu": [0.1, 0.4, 1.0],
        "alpha": [0.1, 0.5],
    })
    runner = SweepRunner(store_dir=None if args.no_cache else args.store)
    print(f"sweep: {len(spec)} cells "
          f"({'no cache' if args.no_cache else 'cached in ' + args.store})")

    rows = runner.summarize(spec, metric="best_accuracy")
    print(f"\n{'mu':>6} {'alpha':>6} {'best acc %':>11}")
    for row in sorted(rows, key=lambda r: (r["alpha"], r["mu"])):
        print(f"{row['mu']:>6} {row['alpha']:>6} {row['best_accuracy']:>11.2f}")

    # Same sweep, different metric, zero re-training thanks to the cache.
    rows = runner.summarize(spec, metric="rounds_to_accuracy", target=80.0)
    print(f"\n{'mu':>6} {'alpha':>6} {'rounds to 80%':>14}")
    for row in sorted(rows, key=lambda r: (r["alpha"], r["mu"])):
        r = row["rounds_to_accuracy"]
        print(f"{row['mu']:>6} {row['alpha']:>6} "
              f"{str(r) if r is not None else '>' + str(args.rounds):>14}")


if __name__ == "__main__":
    main()
