"""repro — a full reproduction of *FedTrip: A Resource-Efficient Federated
Learning Method with Triplet Regularization* (Li et al., IPDPS 2023).

Quickstart — declare the run as one :class:`~repro.api.spec.ExperimentSpec`
and train it through the callback-driven engine::

    from repro import ExperimentSpec, EarlyStopping, run_experiment

    spec = ExperimentSpec(dataset="mini_mnist", model="cnn", method="fedtrip",
                          partition="dirichlet", alpha=0.5,
                          n_clients=10, clients_per_round=4,
                          rounds=30, lr=0.02, seed=0,
                          overrides={"mu": 0.4})
    history = run_experiment(spec, callbacks=[EarlyStopping(target_accuracy=85.0)])
    print(history.best_accuracy(), history.rounds_to_accuracy(80.0),
          history.stop_reason)

The same spec drives the CLI (``python -m repro train ...``), the sweep grid
(:mod:`repro.experiments`) and the benchmark harness; the imperative
``Simulation`` API remains as a compatibility shim over the engine (see
:mod:`repro.api`).

Subpackages
-----------
``repro.nn``          NumPy layer library (the PyTorch substitute)
``repro.models``      MLP / CNN / AlexNet-lite + cost profiling
``repro.optim``       SGD / SGDm / Adam + LR schedules
``repro.data``        synthetic datasets, loaders, non-IID partitioners
``repro.fl``          server / clients / round loop / metrics
``repro.api``         ExperimentSpec + callback-driven Engine front door
``repro.algorithms``  FedTrip + 9 baselines behind one Strategy API
``repro.costs``       Table VIII / Table V resource accounting
``repro.analysis``    Theorem 1 calculator, toy trajectories, t-SNE
"""

from repro.data import build_federated_data, FederatedData, get_spec
from repro.fl import FLConfig, Simulation, History, UniformSampler
from repro.api import (
    ExperimentSpec,
    Engine,
    run_experiment,
    Callback,
    EarlyStopping,
    ProgressLogger,
    Checkpointer,
)
from repro.algorithms import (
    build_strategy,
    available_strategies,
    FedTrip,
    FedAvg,
    FedProx,
    MOON,
    FedDyn,
    SlowMo,
    SCAFFOLD,
    FedDANE,
    MimeLite,
    FedGKD,
)
from repro.models import build_model, profile_model

__version__ = "1.0.0"

__all__ = [
    "build_federated_data",
    "FederatedData",
    "get_spec",
    "FLConfig",
    "Simulation",
    "History",
    "UniformSampler",
    "ExperimentSpec",
    "Engine",
    "run_experiment",
    "Callback",
    "EarlyStopping",
    "ProgressLogger",
    "Checkpointer",
    "build_strategy",
    "available_strategies",
    "FedTrip",
    "FedAvg",
    "FedProx",
    "MOON",
    "FedDyn",
    "SlowMo",
    "SCAFFOLD",
    "FedDANE",
    "MimeLite",
    "FedGKD",
    "build_model",
    "profile_model",
    "__version__",
]
