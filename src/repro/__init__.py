"""repro — a full reproduction of *FedTrip: A Resource-Efficient Federated
Learning Method with Triplet Regularization* (Li et al., IPDPS 2023).

Quickstart::

    from repro import build_federated_data, build_strategy, FLConfig, Simulation

    data = build_federated_data("mini_mnist", n_clients=10,
                                partition="dirichlet", alpha=0.5, seed=0)
    config = FLConfig(rounds=30, n_clients=10, clients_per_round=4)
    sim = Simulation(data, build_strategy("fedtrip", mu=0.4), config,
                     model_name="cnn")
    history = sim.run()
    print(history.best_accuracy(), history.rounds_to_accuracy(80.0))

Subpackages
-----------
``repro.nn``          NumPy layer library (the PyTorch substitute)
``repro.models``      MLP / CNN / AlexNet-lite + cost profiling
``repro.optim``       SGD / SGDm / Adam + LR schedules
``repro.data``        synthetic datasets, loaders, non-IID partitioners
``repro.fl``          server / clients / round loop / metrics
``repro.algorithms``  FedTrip + 9 baselines behind one Strategy API
``repro.costs``       Table VIII / Table V resource accounting
``repro.analysis``    Theorem 1 calculator, toy trajectories, t-SNE
"""

from repro.data import build_federated_data, FederatedData, get_spec
from repro.fl import FLConfig, Simulation, History, UniformSampler
from repro.algorithms import (
    build_strategy,
    available_strategies,
    FedTrip,
    FedAvg,
    FedProx,
    MOON,
    FedDyn,
    SlowMo,
    SCAFFOLD,
    FedDANE,
    MimeLite,
    FedGKD,
)
from repro.models import build_model, profile_model

__version__ = "1.0.0"

__all__ = [
    "build_federated_data",
    "FederatedData",
    "get_spec",
    "FLConfig",
    "Simulation",
    "History",
    "UniformSampler",
    "build_strategy",
    "available_strategies",
    "FedTrip",
    "FedAvg",
    "FedProx",
    "MOON",
    "FedDyn",
    "SlowMo",
    "SCAFFOLD",
    "FedDANE",
    "MimeLite",
    "FedGKD",
    "build_model",
    "profile_model",
    "__version__",
]
