"""Exact t-SNE (van der Maaten & Hinton, 2008) in vectorized NumPy.

Used to regenerate the paper's Fig. 2: t-SNE of test-set feature
representations from the global vs local models.  Exact O(n^2) affinities
are fine at figure scale (a few hundred points); everything is matrix
algebra, no Python-level pairwise loops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.pca import pca

__all__ = ["tsne"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    """||x_i - x_j||^2 via the (a-b)^2 = a^2 + b^2 - 2ab expansion."""
    sq = np.sum(x * x, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_betas(d2: np.ndarray, perplexity: float, tol: float = 1e-5, iters: int = 50):
    """Per-point precision beta_i such that the conditional distribution's
    perplexity matches the target.  Vectorized bisection over all points."""
    n = d2.shape[0]
    target = np.log(perplexity)
    beta = np.ones(n)
    beta_min = np.full(n, -np.inf)
    beta_max = np.full(n, np.inf)
    mask = ~np.eye(n, dtype=bool)
    p = np.zeros((n, n))
    for _ in range(iters):
        logits = -d2 * beta[:, None]
        logits[~mask] = -np.inf
        logits -= logits.max(axis=1, keepdims=True)
        ex = np.exp(logits)
        ex[~mask] = 0.0
        sum_ex = ex.sum(axis=1, keepdims=True)
        p = ex / np.maximum(sum_ex, 1e-12)
        # Shannon entropy of each conditional distribution (log masked so
        # zero-probability entries contribute exactly 0, without warnings).
        h = -np.sum(p * np.log(np.where(p > 0, p, 1.0)), axis=1)
        diff = h - target
        done = np.abs(diff) < tol
        if done.all():
            break
        too_flat = diff > 0  # entropy too high -> increase beta
        beta_min = np.where(too_flat & ~done, beta, beta_min)
        beta_max = np.where(~too_flat & ~done, beta, beta_max)
        grow = np.isinf(beta_max)
        shrink = np.isinf(beta_min)
        new_beta = np.where(
            too_flat,
            np.where(grow, beta * 2.0, (beta + beta_max) / 2.0),
            np.where(shrink, beta / 2.0, (beta + beta_min) / 2.0),
        )
        beta = np.where(done, beta, new_beta)
    return p


def tsne(
    x: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    iterations: int = 300,
    learning_rate: float = 100.0,
    early_exaggeration: float = 4.0,
    exaggeration_iters: int = 50,
    seed: int = 0,
    init: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Embed rows of ``x`` into ``n_components`` dimensions.

    PCA initialization (the modern default) plus momentum gradient descent
    with early exaggeration.  Returns an ``(n, n_components)`` embedding.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    # High-dimensional affinities.
    d2 = _pairwise_sq_dists(x)
    p_cond = _binary_search_betas(d2, perplexity)
    p = (p_cond + p_cond.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    if init is not None:
        y = np.array(init, dtype=np.float64, copy=True)
        if y.shape != (n, n_components):
            raise ValueError("init has wrong shape")
    else:
        y, _ = pca(x, n_components)
        y = y / max(np.std(y[:, 0]), 1e-12) * 1e-2
    rng = np.random.default_rng(seed)
    y += 1e-4 * rng.standard_normal(y.shape)

    velocity = np.zeros_like(y)
    gains = np.ones_like(y)
    for it in range(iterations):
        p_eff = p * early_exaggeration if it < exaggeration_iters else p
        dy2 = _pairwise_sq_dists(y)
        num = 1.0 / (1.0 + dy2)
        np.fill_diagonal(num, 0.0)
        q = num / max(num.sum(), 1e-12)
        q = np.maximum(q, 1e-12)
        # Gradient: 4 sum_j (p_ij - q_ij) (y_i - y_j) / (1 + ||y_i-y_j||^2)
        w = (p_eff - q) * num
        grad = 4.0 * ((np.diag(w.sum(axis=1)) - w) @ y)
        momentum = 0.5 if it < 100 else 0.8
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y -= y.mean(axis=0)
    return y
