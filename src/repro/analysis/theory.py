"""Closed-form quantities from the convergence analysis (Sec. IV-C, Thm. 1).

Theorem 1 shows the expected per-round decrease

``E[f(w_{t+1})] <= f(w_t) - rho ||grad f(w_t)||^2 - Q_t``

with the same ``rho`` as FedProx, plus an extra positive ``Q_t`` contributed
by the historical-model term — so FedTrip converges at least as fast, and
strictly faster whenever ``Q_t > 0``.  The main coefficient of ``Q_t`` is
``E[xi] = p ln p / (p - 1)`` where ``p`` is the client participation rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from typing import Dict

__all__ = [
    "expected_xi",
    "rho",
    "rho_positive",
    "suggested_mu",
    "ConvergenceComparison",
    "compare_fedprox_fedtrip",
    "staleness_distribution",
    "measure_inexactness",
]


def expected_xi(p: float) -> float:
    """``E[xi] = p ln p / (p - 1)`` — the Q_t coefficient in Theorem 1.

    Monotonically increasing on (0, 1]; the p -> 1 limit is 1 (every client
    participates every round, staleness contribution saturates) and the
    p -> 0 limit is 0 (a nearly-never-selected client contributes no usable
    historical signal), matching the paper's "a low p demonstrates a slow
    convergence rate".
    """
    if not 0 < p <= 1:
        raise ValueError("participation rate must be in (0, 1]")
    if p == 1.0:
        return 1.0
    return p * math.log(p) / (p - 1.0)


def rho(mu: float, L: float, B: float, gamma: float = 0.0) -> float:
    """Theorem 1's decrease coefficient.

    ``rho = (1 - gamma B)/mu - L(1+gamma)B/mu^2 - L(1+gamma)^2 B^2/(2 mu^2)``
    (with ``gamma = 0`` this reduces to ``1/mu - LB/mu^2 - LB^2/(2 mu^2)``,
    identical to FedProx's coefficient — the paper's equal-rho claim.)
    """
    if mu <= 0 or L <= 0 or B <= 0:
        raise ValueError("mu, L, B must be positive")
    if not 0 <= gamma < 1:
        raise ValueError("gamma must be in [0, 1)")
    return (
        (1.0 - gamma * B) / mu
        - L * (1.0 + gamma) * B / mu**2
        - L * (1.0 + gamma) ** 2 * B**2 / (2.0 * mu**2)
    )


def rho_positive(mu: float, L: float, B: float, gamma: float = 0.0) -> bool:
    """Whether the hyperparameters satisfy the descent condition rho > 0."""
    return rho(mu, L, B, gamma) > 0


def suggested_mu(L: float, B: float) -> float:
    """FedProx's example choice ``mu = 6 L B^2`` (used in Appendix B)."""
    if L <= 0 or B <= 0:
        raise ValueError("L and B must be positive")
    return 6.0 * L * B * B


def staleness_distribution(p: float, max_rounds: int = 200) -> Dict[int, float]:
    """P(staleness = s) for a uniformly sampled client: geometric(p).

    Staleness s >= 1 is the gap between consecutive participations, i.e. the
    value FedTrip assigns to xi.  Truncated at ``max_rounds``.
    """
    if not 0 < p <= 1:
        raise ValueError("participation rate must be in (0, 1]")
    out: Dict[int, float] = {}
    for s in range(1, max_rounds + 1):
        out[s] = p * (1 - p) ** (s - 1)
    return out


@dataclass(frozen=True)
class ConvergenceComparison:
    """Side-by-side Theorem 1 quantities for FedProx vs FedTrip."""

    mu: float
    L: float
    B: float
    gamma: float
    participation_rate: float
    rho_fedprox: float
    rho_fedtrip: float
    qt_coefficient: float  # E[xi]

    @property
    def fedtrip_strictly_faster(self) -> bool:
        """Same rho, positive extra decrease Q_t => strictly faster bound."""
        return self.rho_fedtrip > 0 and self.qt_coefficient > 0

    def summary(self) -> Dict[str, float]:
        return {
            "rho_fedprox": self.rho_fedprox,
            "rho_fedtrip": self.rho_fedtrip,
            "qt_coefficient": self.qt_coefficient,
            "fedtrip_strictly_faster": float(self.fedtrip_strictly_faster),
        }


def compare_fedprox_fedtrip(
    mu: float, L: float, B: float, participation_rate: float, gamma: float = 0.0
) -> ConvergenceComparison:
    """Evaluate Theorem 1: identical rho, FedTrip gains the Q_t term."""
    r = rho(mu, L, B, gamma)
    return ConvergenceComparison(
        mu=mu,
        L=L,
        B=B,
        gamma=gamma,
        participation_rate=participation_rate,
        rho_fedprox=r,
        rho_fedtrip=r,
        qt_coefficient=expected_xi(participation_rate),
    )


def measure_inexactness(
    model,
    dataset,
    global_weights,
    local_weights,
    mu: float,
    xi: float = 0.0,
    historical_weights=None,
    batch_size: int = 256,
) -> float:
    """Empirical gamma of Definition 1 (gamma-inexact local optimization).

    Definition 1 calls a local solution ``w_k`` gamma-inexact when

    ``||grad h(w_k; w_g)|| <= gamma ||grad F_k(w_g)||``

    with ``grad h = grad F_k(w_k) + mu((w_k - w_g) - xi(w_k - w_hist))``.
    Theorem 1's rate depends on gamma; this function measures it for a real
    client after local training, connecting the implementation back to the
    theory (a dedicated test checks that more local epochs shrink gamma on
    a convex-ish task).

    Parameters take weight *trees*; the model instance is used as scratch
    for gradient evaluation and is restored afterwards.
    """
    from repro.fl.evaluation import full_batch_gradient  # local import: no cycle

    saved = model.get_weights()
    try:
        # grad F_k at the local solution.
        model.set_weights(local_weights)
        grad_local = full_batch_gradient(model, dataset, batch_size)
        # grad F_k at the global model (the denominator).
        model.set_weights(global_weights)
        grad_at_global = full_batch_gradient(model, dataset, batch_size)
    finally:
        model.set_weights(saved)

    grad_h_sq = 0.0
    for i, g in enumerate(grad_local):
        term = g + mu * (
            (local_weights[i] - global_weights[i])
            - xi * (local_weights[i] - (historical_weights[i] if historical_weights is not None else local_weights[i]))
        )
        term = np.asarray(term, dtype=np.float64)
        grad_h_sq += float((term * term).sum())
    denom_sq = 0.0
    for g in grad_at_global:
        g64 = np.asarray(g, dtype=np.float64)
        denom_sq += float((g64 * g64).sum())
    return math.sqrt(grad_h_sq) / max(math.sqrt(denom_sq), 1e-12)
