"""Client-drift diagnostics: the quantitative counterpart of Fig. 1.

The paper's Fig. 1 illustrates update inconsistency under non-IID data.
These metrics measure it on real runs:

* :func:`update_divergence` — mean pairwise L2 distance between client
  updates in one round (how far clients disagree);
* :func:`update_cosine_consistency` — mean pairwise cosine similarity of
  client update directions (1 = perfectly consistent, the IID ideal);
* :func:`drift_from_global` — per-client displacement norm from the global
  model;
* :class:`DriftTracker` — a small observer that accumulates these per
  round from the client updates the simulation produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.fl.types import ClientUpdate
from repro.utils.vectorize import flatten_arrays

__all__ = [
    "update_divergence",
    "update_cosine_consistency",
    "drift_from_global",
    "DriftTracker",
]


def _update_vectors(
    updates: Sequence[ClientUpdate], global_weights: Sequence[np.ndarray]
) -> np.ndarray:
    """Stack each client's flat displacement ``w_k - w_glob``: (K, |w|)."""
    if not updates:
        raise ValueError("no updates")
    g = flatten_arrays(global_weights)
    return np.stack([flatten_arrays(u.weights) - g for u in updates])


def update_divergence(
    updates: Sequence[ClientUpdate], global_weights: Sequence[np.ndarray]
) -> float:
    """Mean pairwise L2 distance between client updates."""
    vecs = _update_vectors(updates, global_weights)
    k = vecs.shape[0]
    if k < 2:
        return 0.0
    sq = np.sum(vecs * vecs, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (vecs @ vecs.T)
    d = np.sqrt(np.maximum(d2, 0.0))
    return float(d[np.triu_indices(k, 1)].mean())


def update_cosine_consistency(
    updates: Sequence[ClientUpdate], global_weights: Sequence[np.ndarray]
) -> float:
    """Mean pairwise cosine similarity of client update directions."""
    vecs = _update_vectors(updates, global_weights)
    k = vecs.shape[0]
    if k < 2:
        return 1.0
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    unit = vecs / np.maximum(norms, 1e-12)
    sims = unit @ unit.T
    return float(sims[np.triu_indices(k, 1)].mean())


def drift_from_global(
    updates: Sequence[ClientUpdate], global_weights: Sequence[np.ndarray]
) -> Dict[int, float]:
    """Per-client L2 displacement from the global model."""
    vecs = _update_vectors(updates, global_weights)
    return {
        u.client_id: float(np.linalg.norm(v)) for u, v in zip(updates, vecs)
    }


@dataclass
class DriftTracker:
    """Accumulates per-round drift metrics.

    Usage with a :class:`~repro.fl.simulation.Simulation`::

        tracker = DriftTracker()
        tracker.attach(sim)      # registers as an update observer
        sim.run()
        print(tracker.summary())
    """

    divergence: List[float] = field(default_factory=list)
    consistency: List[float] = field(default_factory=list)
    mean_drift: List[float] = field(default_factory=list)

    def attach(self, simulation) -> "DriftTracker":
        """Register on a simulation's per-round update-observer hook."""
        simulation.update_observers.append(self.observe)
        return self

    def observe(
        self, updates: Sequence[ClientUpdate], global_weights: Sequence[np.ndarray]
    ) -> None:
        self.divergence.append(update_divergence(updates, global_weights))
        self.consistency.append(update_cosine_consistency(updates, global_weights))
        drifts = drift_from_global(updates, global_weights)
        self.mean_drift.append(float(np.mean(list(drifts.values()))))

    def summary(self) -> Dict[str, float]:
        if not self.divergence:
            raise ValueError("no rounds observed")
        return {
            "mean_divergence": float(np.mean(self.divergence)),
            "mean_consistency": float(np.mean(self.consistency)),
            "mean_drift": float(np.mean(self.mean_drift)),
            "rounds": len(self.divergence),
        }
