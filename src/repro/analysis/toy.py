"""Quadratic two-client toy model behind the paper's Figs. 1 and 3.

Each client k has a quadratic objective
``F_k(w) = 0.5 (w - w*_k)^T A_k (w - w*_k)`` in 2-D, so the global optimum
of the average objective is available in closed form and local-update
trajectories can be plotted exactly.  Fig. 1 contrasts IID (local optima
coincide) with non-IID (local optima far apart); Fig. 3 contrasts FedProx's
proximal pull with FedTrip's pull-push geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["QuadraticClient", "ToyFLProblem", "simulate_toy"]


@dataclass
class QuadraticClient:
    """One client's quadratic objective."""

    optimum: np.ndarray                 # w*_k, shape (d,)
    curvature: np.ndarray               # A_k, SPD (d, d)

    def __post_init__(self) -> None:
        self.optimum = np.asarray(self.optimum, dtype=np.float64)
        self.curvature = np.asarray(self.curvature, dtype=np.float64)
        d = self.optimum.shape[0]
        if self.curvature.shape != (d, d):
            raise ValueError("curvature must be (d, d)")
        if not np.allclose(self.curvature, self.curvature.T):
            raise ValueError("curvature must be symmetric")
        eigvals = np.linalg.eigvalsh(self.curvature)
        if eigvals.min() <= 0:
            raise ValueError("curvature must be positive definite")

    def grad(self, w: np.ndarray) -> np.ndarray:
        return self.curvature @ (w - self.optimum)

    def loss(self, w: np.ndarray) -> float:
        d = w - self.optimum
        return 0.5 * float(d @ self.curvature @ d)


@dataclass
class ToyFLProblem:
    """A set of quadratic clients with a closed-form global optimum."""

    clients: Sequence[QuadraticClient]

    def global_optimum(self) -> np.ndarray:
        """argmin of the mean objective: solve (sum A_k) w = sum A_k w*_k."""
        a_sum = sum(c.curvature for c in self.clients)
        b_sum = sum(c.curvature @ c.optimum for c in self.clients)
        return np.linalg.solve(a_sum, b_sum)

    def global_loss(self, w: np.ndarray) -> float:
        return float(np.mean([c.loss(w) for c in self.clients]))

    @staticmethod
    def two_client(separation: float = 2.0, anisotropy: float = 3.0) -> "ToyFLProblem":
        """The Fig. 1/3 configuration: two clients with optima pulled apart.

        ``separation=0`` is the IID case (identical local optima);
        larger values increase heterogeneity.
        """
        base = np.array([1.0, 0.5])
        delta = separation * np.array([1.0, -0.6]) / 2.0
        a1 = np.array([[anisotropy, 0.4], [0.4, 1.0]])
        a2 = np.array([[1.0, -0.3], [-0.3, anisotropy]])
        return ToyFLProblem(
            [QuadraticClient(base + delta, a1), QuadraticClient(base - delta, a2)]
        )


def simulate_toy(
    problem: ToyFLProblem,
    method: str = "fedavg",
    rounds: int = 10,
    local_steps: int = 3,
    lr: float = 0.1,
    mu: float = 0.5,
    xi: float = 1.0,
    w0: Optional[np.ndarray] = None,
) -> Dict[str, object]:
    """Deterministic trajectory simulation for fedavg / fedprox / fedtrip.

    Every client participates every round (full participation keeps the toy
    interpretable).  Returns the global trajectory, per-client local-step
    trajectories per round, and distance-to-optimum series.
    """
    method = method.lower()
    if method not in ("fedavg", "fedprox", "fedtrip"):
        raise ValueError("toy simulation supports fedavg / fedprox / fedtrip")
    if rounds <= 0 or local_steps <= 0 or lr <= 0:
        raise ValueError("rounds, local_steps, lr must be positive")
    d = problem.clients[0].optimum.shape[0]
    w_glob = np.zeros(d) if w0 is None else np.asarray(w0, dtype=np.float64).copy()
    w_star = problem.global_optimum()
    historical: List[Optional[np.ndarray]] = [None] * len(problem.clients)

    global_traj = [w_glob.copy()]
    local_trajs: List[List[List[np.ndarray]]] = []   # [round][client][step]
    dist = [float(np.linalg.norm(w_glob - w_star))]

    for _ in range(rounds):
        round_locals: List[List[np.ndarray]] = []
        finals = []
        for k, client in enumerate(problem.clients):
            w = w_glob.copy()
            steps = [w.copy()]
            for _ in range(local_steps):
                g = client.grad(w)
                if method == "fedprox":
                    g = g + mu * (w - w_glob)
                elif method == "fedtrip":
                    g = g + mu * (w - w_glob)
                    if historical[k] is not None:
                        g = g + mu * xi * (historical[k] - w)
                w = w - lr * g
                steps.append(w.copy())
            round_locals.append(steps)
            finals.append(w)
            if method == "fedtrip":
                historical[k] = w.copy()
        w_glob = np.mean(finals, axis=0)
        global_traj.append(w_glob.copy())
        local_trajs.append(round_locals)
        dist.append(float(np.linalg.norm(w_glob - w_star)))

    return {
        "method": method,
        "global_trajectory": np.array(global_traj),
        "local_trajectories": local_trajs,
        "global_optimum": w_star,
        "client_optima": [c.optimum.copy() for c in problem.clients],
        "distance_to_optimum": np.array(dist),
        "final_loss": problem.global_loss(w_glob),
    }
