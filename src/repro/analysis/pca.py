"""Principal component analysis via thin SVD (used for t-SNE init & figures)."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import linalg

__all__ = ["pca"]


def pca(x: np.ndarray, n_components: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Project rows of ``x`` onto the top principal components.

    Returns ``(projected, explained_variance_ratio)``.  Uses SciPy's thin
    SVD (``full_matrices=False``) per the HPC guide — the full SVD of an
    (n, d) feature matrix would be needlessly cubic.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("x must be 2-D")
    n, d = x.shape
    k = min(n_components, n, d)
    centered = x - x.mean(axis=0)
    u, s, _vt = linalg.svd(centered, full_matrices=False)
    var = s**2
    ratio = var[:k] / max(var.sum(), 1e-12)
    return u[:, :k] * s[:k], ratio
