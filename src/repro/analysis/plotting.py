"""Terminal plotting: render the paper's figures as unicode text.

This environment has no matplotlib, so each figure-regenerating bench and
example renders with these primitives instead:

* :func:`line_plot` — multi-series curves (Fig. 5 accuracy-vs-round);
* :func:`box_plot` — quartile boxes (Fig. 6 final-accuracy distribution);
* :func:`heatmap` — client-by-class count matrices (Fig. 4);
* :func:`scatter` — 2-D embeddings (Fig. 2 t-SNE panels).

All functions return a string (no printing side effects), are pure NumPy,
and degrade gracefully for small canvases.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["line_plot", "box_plot", "heatmap", "scatter"]

_SERIES_MARKS = "*o+x#@%&"
_SHADES = " .:-=+*#%@"


def _canvas(height: int, width: int) -> np.ndarray:
    return np.full((height, width), " ", dtype="<U1")


def _render(canvas: np.ndarray) -> str:
    return "\n".join("".join(row) for row in canvas)


def line_plot(
    series: Dict[str, Sequence[float]],
    width: int = 70,
    height: int = 18,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot several named series against their index (e.g. round number).

    NaN values are skipped.  Each series gets a distinct mark; a legend
    line maps marks to names.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    all_vals = np.concatenate(
        [np.asarray(v, dtype=float)[~np.isnan(np.asarray(v, dtype=float))]
         for v in series.values() if len(v)]
    )
    if all_vals.size == 0:
        raise ValueError("series contain no finite values")
    lo, hi = float(all_vals.min()), float(all_vals.max())
    span = max(hi - lo, 1e-9)
    max_len = max(len(v) for v in series.values())
    canvas = _canvas(height, width)
    for si, (name, vals) in enumerate(series.items()):
        mark = _SERIES_MARKS[si % len(_SERIES_MARKS)]
        v = np.asarray(vals, dtype=float)
        for i, val in enumerate(v):
            if np.isnan(val):
                continue
            x = int(round(i / max(max_len - 1, 1) * (width - 1)))
            y = height - 1 - int(round((val - lo) / span * (height - 1)))
            canvas[y, x] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:>8.2f} ┐{y_label}")
    body = _render(canvas).split("\n")
    lines.extend("         │" + row for row in body)
    lines.append(f"{lo:>8.2f} ┴" + "─" * width)
    legend = "  ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def box_plot(
    stats: Dict[str, Dict[str, float]],
    width: int = 60,
    title: str = "",
) -> str:
    """Render min/q1/median/q3/max boxes, one row per named entry.

    ``stats`` values are dicts with keys ``min, q1, median, q3, max`` (the
    output of :meth:`History.final_accuracy_stats`).
    """
    if not stats:
        raise ValueError("no boxes to plot")
    needed = {"min", "q1", "median", "q3", "max"}
    for k, s in stats.items():
        if not needed <= set(s):
            raise ValueError(f"entry {k!r} missing quartile keys")
    lo = min(s["min"] for s in stats.values())
    hi = max(s["max"] for s in stats.values())
    span = max(hi - lo, 1e-9)

    def col(v: float) -> int:
        return int(round((v - lo) / span * (width - 1)))

    name_w = max(len(k) for k in stats)
    lines = [title] if title else []
    for name, s in stats.items():
        row = [" "] * width
        for x in range(col(s["min"]), col(s["q1"])):
            row[x] = "-"
        for x in range(col(s["q1"]), col(s["q3"]) + 1):
            row[x] = "="
        for x in range(col(s["q3"]) + 1, col(s["max"]) + 1):
            row[x] = "-"
        row[col(s["median"])] = "|"
        lines.append(f"{name:>{name_w}} [{''.join(row)}] "
                     f"med={s['median']:.1f}")
    lines.append(f"{'':>{name_w}}  {lo:<.1f}{'':^{max(width - 12, 1)}}{hi:>.1f}")
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Shade a matrix with density characters (Fig. 4's count matrix)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError("heatmap needs a 2-D matrix")
    lo, hi = float(m.min()), float(m.max())
    span = max(hi - lo, 1e-9)
    idx = ((m - lo) / span * (len(_SHADES) - 1)).round().astype(int)
    rows = ["".join(_SHADES[v] * 2 for v in row) for row in idx]
    name_w = max((len(str(r)) for r in (row_labels or [""])), default=0)
    lines = [title] if title else []
    if col_labels is not None:
        header = " " * (name_w + 1) + "".join(f"{str(c)[:2]:<2}" for c in col_labels)
        lines.append(header)
    for i, row in enumerate(rows):
        label = str(row_labels[i]) if row_labels is not None else ""
        lines.append(f"{label:>{name_w}} {row}")
    lines.append(f"scale: '{_SHADES[0]}'={lo:.0f} .. '{_SHADES[-1]}'={hi:.0f}")
    return "\n".join(lines)


def scatter(
    points: np.ndarray,
    labels: Optional[np.ndarray] = None,
    width: int = 60,
    height: int = 24,
    title: str = "",
) -> str:
    """Scatter 2-D points; class labels (0-9+) choose the glyph."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    if labels is not None and len(labels) != len(pts):
        raise ValueError("labels length mismatch")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.maximum(hi - lo, 1e-9)
    canvas = _canvas(height, width)
    for i, (x, y) in enumerate(pts):
        cx = int(round((x - lo[0]) / span[0] * (width - 1)))
        cy = height - 1 - int(round((y - lo[1]) / span[1] * (height - 1)))
        glyph = "•" if labels is None else str(int(labels[i]) % 36)[-1]
        canvas[cy, cx] = glyph
    lines = [title] if title else []
    lines.extend("│" + "".join(row) for row in canvas)
    lines.append("└" + "─" * width)
    return "\n".join(lines)
