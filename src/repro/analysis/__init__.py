"""Analysis utilities: theory calculator, toy trajectories, t-SNE, PCA."""

from repro.analysis.theory import (
    expected_xi,
    rho,
    rho_positive,
    suggested_mu,
    staleness_distribution,
    ConvergenceComparison,
    compare_fedprox_fedtrip,
    measure_inexactness,
)
from repro.analysis.toy import QuadraticClient, ToyFLProblem, simulate_toy
from repro.analysis.pca import pca
from repro.analysis.tsne import tsne
from repro.analysis.plotting import line_plot, box_plot, heatmap, scatter
from repro.analysis.drift import (
    update_divergence,
    update_cosine_consistency,
    drift_from_global,
    DriftTracker,
)

__all__ = [
    "expected_xi",
    "rho",
    "rho_positive",
    "suggested_mu",
    "staleness_distribution",
    "ConvergenceComparison",
    "compare_fedprox_fedtrip",
    "measure_inexactness",
    "QuadraticClient",
    "ToyFLProblem",
    "simulate_toy",
    "pca",
    "tsne",
    "update_divergence",
    "update_cosine_consistency",
    "drift_from_global",
    "DriftTracker",
    "line_plot",
    "box_plot",
    "heatmap",
    "scatter",
]
