"""The unified experiment front door.

One declarative :class:`ExperimentSpec` describes a training run end to end
(dataset, partition, model, method, round loop, client sampling, execution
backend); :func:`run_experiment` materializes it through the callback-driven
:class:`Engine`.  Every runner in the repository — the CLI, the sweep grid in
:mod:`repro.experiments`, and ``benchmarks/harness.py`` — is a thin adapter
over this module, so a new scenario (a sampler, a compression scheme, an
availability model) only has to be wired in once.

Quickstart::

    from repro.api import ExperimentSpec, EarlyStopping, run_experiment

    spec = ExperimentSpec(dataset="mini_mnist", model="cnn", method="fedtrip",
                          partition="dirichlet", alpha=0.5,
                          rounds=30, clients_per_round=4, lr=0.02, seed=0)
    history = run_experiment(spec, callbacks=[EarlyStopping(target_accuracy=90.0)])
    print(history.best_accuracy(), history.stop_reason)
"""

from repro.api.spec import ExperimentSpec
from repro.api.registry import (
    available_executors,
    available_modes,
    available_samplers,
    build_executor,
    build_mode,
    build_sampler,
    register_executor,
    register_mode,
    register_sampler,
)
from repro.api.callbacks import (
    Callback,
    Checkpointer,
    DriftTracker,
    EarlyStopping,
    ProgressLogger,
)
from repro.api.engine import Engine, run_experiment
from repro.fl.robust import (
    available_adversaries,
    available_aggregators,
    build_adversary,
    build_aggregator,
    register_adversary,
    register_aggregator,
)

__all__ = [
    "ExperimentSpec",
    "Engine",
    "run_experiment",
    "Callback",
    "EarlyStopping",
    "ProgressLogger",
    "Checkpointer",
    "DriftTracker",
    "available_samplers",
    "build_sampler",
    "register_sampler",
    "available_executors",
    "build_executor",
    "register_executor",
    "available_modes",
    "build_mode",
    "register_mode",
    "available_aggregators",
    "build_aggregator",
    "register_aggregator",
    "available_adversaries",
    "build_adversary",
    "register_adversary",
]
