"""The Engine's callback protocol and the built-in callbacks.

A :class:`Callback` observes the round loop at six points::

    on_round_start(engine, round_idx, selected)     after client sampling
    on_client_update(engine, round_idx, update)     per returned ClientUpdate
    on_aggregate(engine, round_idx, updates, global_weights)
                                                    before aggregation; the
                                                    weights are the pre-
                                                    aggregation global model
    on_evaluate(engine, round_idx, accuracy, loss)  on evaluated rounds only
    on_round_end(engine, record)                    after the RoundRecord is
                                                    appended to the history
    on_fit_end(engine, history)                     once, when run() returns

Callbacks are observers: they must not mutate weights, RNG state or client
state (the engine's determinism guarantees rely on it).  The one sanctioned
side effect is :meth:`~repro.api.engine.Engine.request_stop`, which ends
training after the current round completes.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.drift import DriftTracker as _DriftMetrics
from repro.fl.history import History
from repro.fl.types import ClientUpdate, RoundRecord
from repro.io.persistence import save_checkpoint, save_engine_snapshot
from repro.obs import MetricsRegistry
from repro.utils.logging import get_logger

__all__ = [
    "Callback",
    "EarlyStopping",
    "ProgressLogger",
    "Checkpointer",
    "DriftTracker",
]

_log = get_logger("api.callbacks")


class Callback:
    """No-op base class; subclasses override the hooks they care about."""

    def on_round_start(self, engine, round_idx: int, selected: Sequence[int]) -> None:
        pass

    def on_client_update(self, engine, round_idx: int, update: ClientUpdate) -> None:
        pass

    def on_aggregate(
        self,
        engine,
        round_idx: int,
        updates: Sequence[ClientUpdate],
        global_weights: Sequence[np.ndarray],
    ) -> None:
        """Fires just before aggregation; ``global_weights`` is the
        pre-aggregation global model.

        The arrays are *live views* into the server's flat parameter
        buffer, updated in place when aggregation lands: consume them
        during the hook (as the built-ins do) or copy explicitly —
        a retained reference will read as the post-aggregation model.
        """

    def on_evaluate(
        self, engine, round_idx: int, accuracy: Optional[float], loss: Optional[float]
    ) -> None:
        pass

    def on_round_end(self, engine, record: RoundRecord) -> None:
        pass

    def on_fit_end(self, engine, history: History) -> None:
        pass


class EarlyStopping(Callback):
    """Stop training at a target accuracy and/or when progress stalls.

    Parameters
    ----------
    target_accuracy:
        Stop as soon as an evaluated test accuracy reaches this value
        (percent).  This is how ``FLConfig.target_accuracy`` takes effect.
    patience:
        Stop after this many consecutive evaluations without the best
        accuracy improving by more than ``min_delta``.
    min_delta:
        Improvement threshold for the patience counter, in accuracy points.
    """

    def __init__(
        self,
        target_accuracy: Optional[float] = None,
        patience: Optional[int] = None,
        min_delta: float = 0.0,
    ) -> None:
        if target_accuracy is None and patience is None:
            raise ValueError("EarlyStopping needs target_accuracy and/or patience")
        if patience is not None and patience <= 0:
            raise ValueError("patience must be positive")
        self.target_accuracy = target_accuracy
        self.patience = patience
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self._stale = 0

    def on_evaluate(
        self, engine, round_idx: int, accuracy: Optional[float], loss: Optional[float]
    ) -> None:
        if accuracy is None:
            return
        if self.target_accuracy is not None and accuracy >= self.target_accuracy:
            engine.request_stop(
                f"target_accuracy {self.target_accuracy:g}% reached "
                f"({accuracy:.2f}% at round {round_idx})"
            )
            return
        if self.patience is None:
            return
        if self.best is None or accuracy > self.best + self.min_delta:
            self.best = accuracy
            self._stale = 0
        else:
            self._stale += 1
            if self._stale >= self.patience:
                engine.request_stop(
                    f"no improvement over {self.best:.2f}% in "
                    f"{self.patience} evaluations (round {round_idx})"
                )


class ProgressLogger(Callback):
    """Log accuracy/loss on evaluated rounds (the old ``progress=True``).

    Round/evaluation counting rides on the :mod:`repro.obs` metrics
    registry rather than ad-hoc attributes: with observability on, the
    logger reads the engine recorder's shared registry (``end_round``
    updates it before this hook fires); otherwise it mirrors the two
    counters it needs into a private registry.  The log format is
    unchanged either way.
    """

    def __init__(self) -> None:
        self._private: Optional[MetricsRegistry] = None
        self._last: Optional[MetricsRegistry] = None

    def _registry(self, engine) -> MetricsRegistry:
        metrics = getattr(engine.obs, "metrics", None) if engine is not None else None
        if metrics is not None:
            self._last = metrics
            return metrics
        if self._private is None:
            self._private = MetricsRegistry()
        self._last = self._private
        return self._private

    def _count(self, registry: MetricsRegistry, name: str) -> float:
        counter = registry.get(name)
        return counter.value if counter is not None else 0.0

    @property
    def rounds_seen(self) -> int:
        """Rounds observed so far, per the registry's fl_rounds_total."""
        return int(self._count(self._last, "fl_rounds_total")) if self._last else 0

    @property
    def evaluations_seen(self) -> int:
        """Evaluated rounds observed, per fl_evaluations_total."""
        return int(self._count(self._last, "fl_evaluations_total")) if self._last else 0

    def on_round_end(self, engine, record: RoundRecord) -> None:
        registry = self._registry(engine)
        if registry is self._private:
            # No engine recorder: mirror the counters the properties read.
            registry.counter("fl_rounds_total", "rounds completed").inc()
            if record.test_accuracy is not None:
                registry.counter(
                    "fl_evaluations_total", "rounds with a global evaluation"
                ).inc()
        if record.test_accuracy is None:
            return
        _log.info(
            "[%s] round %d acc=%.2f%% loss=%.4f",
            engine.strategy.name,
            record.round_idx,
            record.test_accuracy,
            record.test_loss,
        )

    def on_fit_end(self, engine, history: History) -> None:
        if history.stop_reason:
            _log.info("[%s] stopped early: %s", engine.strategy.name, history.stop_reason)


class Checkpointer(Callback):
    """Save the global model via :func:`repro.io.persistence.save_checkpoint`.

    Writes ``round_<idx>.npz`` every ``every`` rounds (None = only at the
    end) and ``final.npz`` when training finishes.  Per-round metadata
    records that round's index and evaluated accuracy; ``final.npz``
    records the number of completed rounds.

    With ``engine_state=True`` it additionally writes ``latest.ckpt`` —
    the engine's full crash-safe snapshot (``Engine.snapshot()``) — on
    every qualifying round end.  The write is atomic, so a run killed
    mid-save still leaves the previous complete snapshot in place;
    ``run_experiment(spec, resume_from="<dir>/latest.ckpt")`` continues
    byte-identically from the last completed round.
    """

    #: filename of the rolling engine snapshot written by ``engine_state``
    SNAPSHOT_NAME = "latest.ckpt"

    def __init__(
        self,
        directory: str,
        every: Optional[int] = None,
        engine_state: bool = False,
    ) -> None:
        if every is not None and every <= 0:
            raise ValueError("every must be positive")
        self.directory = directory
        self.every = every
        self.engine_state = engine_state
        self.saved: list = []

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.directory, self.SNAPSHOT_NAME)

    def _save_engine_state(self, engine) -> None:
        save_engine_snapshot(self.snapshot_path, engine.snapshot())

    def _save(self, engine, name: str, round_idx: int,
              record: Optional[RoundRecord]) -> None:
        meta: Dict = {"round": round_idx}
        if record is not None and record.test_accuracy is not None:
            meta["test_accuracy"] = record.test_accuracy
        path = save_checkpoint(
            engine.global_model(), os.path.join(self.directory, name), meta
        )
        self.saved.append(path)

    def on_round_end(self, engine, record: RoundRecord) -> None:
        if self.every is not None and (record.round_idx + 1) % self.every == 0:
            self._save(engine, f"round_{record.round_idx}", record.round_idx, record)
            if self.engine_state:
                self._save_engine_state(engine)

    def on_fit_end(self, engine, history: History) -> None:
        record = history.records[-1] if history.records else None
        self._save(engine, "final", len(history), record)
        if self.engine_state:
            self._save_engine_state(engine)


class DriftTracker(Callback):
    """Per-round client-drift diagnostics (wraps :mod:`repro.analysis.drift`).

    Exposes the same ``divergence`` / ``consistency`` / ``mean_drift``
    series and ``summary()`` as the analysis-layer tracker, fed from the
    engine's aggregate phase instead of the legacy observer list.
    """

    def __init__(self) -> None:
        self._metrics = _DriftMetrics()

    def on_aggregate(
        self,
        engine,
        round_idx: int,
        updates: Sequence[ClientUpdate],
        global_weights: Sequence[np.ndarray],
    ) -> None:
        self._metrics.observe(updates, global_weights)

    @property
    def divergence(self):
        return self._metrics.divergence

    @property
    def consistency(self):
        return self._metrics.consistency

    @property
    def mean_drift(self):
        return self._metrics.mean_drift

    def summary(self) -> Dict[str, float]:
        return self._metrics.summary()
