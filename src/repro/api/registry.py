"""Client-sampler registry: name -> factory.

The samplers in :mod:`repro.fl.sampling` and :mod:`repro.fl.availability`
have heterogeneous constructors (a weighted sampler wants a weight vector, a
diurnal sampler wants a phase count).  The registry normalizes them behind
one factory signature so a sampler can be chosen declaratively — from an
:class:`~repro.api.spec.ExperimentSpec` field or a ``--sampler`` CLI flag —
instead of being hardwired to :class:`~repro.fl.sampling.UniformSampler`:

    sampler = build_sampler("dropout", n_clients=10, clients_per_round=4,
                            seed=0, dropout=0.2)

Third-party policies plug in with :func:`register_sampler`; the only contract
is ``select(round_idx) -> List[int]`` plus ``n_clients`` /
``clients_per_round`` / ``participation_rate`` attributes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.fl.availability import DiurnalSampler, DropoutSampler
from repro.fl.sampling import FixedSampler, UniformSampler, WeightedSampler

__all__ = ["available_samplers", "build_sampler", "register_sampler"]

#: factory(n_clients, clients_per_round, seed, **kwargs) -> sampler
SamplerFactory = Callable[..., Any]

_SAMPLERS: Dict[str, SamplerFactory] = {}


def register_sampler(name: str, factory: SamplerFactory) -> None:
    """Register (or replace) a sampler factory under ``name``."""
    _SAMPLERS[name.lower()] = factory


def available_samplers() -> List[str]:
    return sorted(_SAMPLERS)


def build_sampler(
    name: str, *, n_clients: int, clients_per_round: int, seed: int = 0, **kwargs
):
    """Instantiate the sampler registered under ``name``.

    ``kwargs`` are policy-specific (``dropout=``, ``phases=``, ``weights=``,
    ...) and forwarded to the factory; an unknown name or a kwarg the policy
    does not accept raises ``ValueError``.
    """
    try:
        factory = _SAMPLERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; available: {available_samplers()}"
        ) from None
    try:
        return factory(
            n_clients=n_clients, clients_per_round=clients_per_round, seed=seed, **kwargs
        )
    except TypeError as exc:
        raise ValueError(f"bad arguments for sampler {name!r}: {exc}") from None


# ---------------------------------------------------------------------------
# Built-in policies.
# ---------------------------------------------------------------------------

def _uniform(n_clients: int, clients_per_round: int, seed: int) -> UniformSampler:
    return UniformSampler(n_clients, clients_per_round, seed=seed)


def _weighted(n_clients: int, clients_per_round: int, seed: int, weights) -> WeightedSampler:
    if len(weights) != n_clients:
        raise ValueError(
            f"weighted sampler needs {n_clients} weights, got {len(weights)}"
        )
    return WeightedSampler(weights, clients_per_round, seed=seed)


def _fixed(n_clients: int, clients_per_round: int, seed: int, schedule) -> FixedSampler:
    return FixedSampler(schedule, n_clients=n_clients)


def _dropout(
    n_clients: int, clients_per_round: int, seed: int, dropout: float = 0.1
) -> DropoutSampler:
    return DropoutSampler(n_clients, clients_per_round, dropout=dropout, seed=seed)


def _diurnal(
    n_clients: int, clients_per_round: int, seed: int, phases: int = 2, window: int = 5
) -> DiurnalSampler:
    return DiurnalSampler(
        n_clients, clients_per_round, phases=phases, window=window, seed=seed
    )


register_sampler("uniform", _uniform)
register_sampler("weighted", _weighted)
register_sampler("fixed", _fixed)
register_sampler("dropout", _dropout)
register_sampler("diurnal", _diurnal)
