"""Declarative registries: client samplers, execution backends, server modes.

Both registries exist for the same reason: heterogeneous constructors hidden
behind one factory signature, so a policy can be chosen from an
:class:`~repro.api.spec.ExperimentSpec` field or a CLI flag instead of being
hardwired.

**Samplers** (:mod:`repro.fl.sampling` / :mod:`repro.fl.availability`) —
a weighted sampler wants a weight vector, a diurnal sampler wants a phase
count::

    sampler = build_sampler("dropout", n_clients=10, clients_per_round=4,
                            seed=0, dropout=0.2)

Third-party policies plug in with :func:`register_sampler`; the only contract
is ``select(round_idx) -> List[int]`` plus ``n_clients`` /
``clients_per_round`` / ``participation_rate`` attributes.

**Executors** (:mod:`repro.fl.executor` / :mod:`repro.fl.process_executor`) —
resolved from the spec's ``executor`` field or the ``--executor`` CLI flag::

    executor = build_executor("process", engine=engine, n_workers=4)

An executor factory receives the live :class:`~repro.api.engine.Engine`
(factories read ``engine.make_worker``, ``engine.runtime``, and for the
process backend the picklable ``engine.process_worker_spec()``) plus the
requested worker count, and returns an object with the executor contract:
``run(tasks) -> results``, ``broadcast(weights)``, ``borrow_worker()``,
``n_workers``, ``close()``.  ``"auto"`` keeps the historical behaviour:
serial at ``n_workers<=1``, threaded above.

**Modes** (:mod:`repro.api.engine` / :mod:`repro.fl.asyncfl`) — resolved
from the spec's ``mode`` field or the ``--mode`` CLI flag::

    engine = build_mode("semisync", spec=spec, data=data, callbacks=[])

A mode factory receives the full :class:`~repro.api.spec.ExperimentSpec`,
the prebuilt dataset and the callback list, and returns a ready-to-run
engine.  Built-ins: ``"sync"`` (the barrier loop), ``"semisync"``
(deadline/buffer rounds) and ``"async"`` (staleness-decayed mixing), the
latter two on the virtual-clock event scheduler; the engine classes are
imported lazily so the registry stays import-cycle-free.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.fl.availability import DiurnalSampler, DropoutSampler
from repro.fl.executor import SerialExecutor, ThreadedExecutor
from repro.fl.process_executor import ProcessExecutor
from repro.fl.sampling import FixedSampler, UniformSampler, WeightedSampler

__all__ = [
    "available_samplers",
    "build_sampler",
    "register_sampler",
    "available_executors",
    "build_executor",
    "register_executor",
    "available_modes",
    "build_mode",
    "register_mode",
]

#: factory(n_clients, clients_per_round, seed, **kwargs) -> sampler
SamplerFactory = Callable[..., Any]

_SAMPLERS: Dict[str, SamplerFactory] = {}


def register_sampler(name: str, factory: SamplerFactory) -> None:
    """Register (or replace) a sampler factory under ``name``."""
    _SAMPLERS[name.lower()] = factory


def available_samplers() -> List[str]:
    return sorted(_SAMPLERS)


def build_sampler(
    name: str, *, n_clients: int, clients_per_round: int, seed: int = 0, **kwargs
):
    """Instantiate the sampler registered under ``name``.

    ``kwargs`` are policy-specific (``dropout=``, ``phases=``, ``weights=``,
    ...) and forwarded to the factory; an unknown name or a kwarg the policy
    does not accept raises ``ValueError``.
    """
    try:
        factory = _SAMPLERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; available: {available_samplers()}"
        ) from None
    try:
        return factory(
            n_clients=n_clients, clients_per_round=clients_per_round, seed=seed, **kwargs
        )
    except TypeError as exc:
        raise ValueError(f"bad arguments for sampler {name!r}: {exc}") from None


# ---------------------------------------------------------------------------
# Built-in policies.
# ---------------------------------------------------------------------------

def _uniform(n_clients: int, clients_per_round: int, seed: int) -> UniformSampler:
    return UniformSampler(n_clients, clients_per_round, seed=seed)


def _weighted(n_clients: int, clients_per_round: int, seed: int, weights) -> WeightedSampler:
    if len(weights) != n_clients:
        raise ValueError(
            f"weighted sampler needs {n_clients} weights, got {len(weights)}"
        )
    return WeightedSampler(weights, clients_per_round, seed=seed)


def _fixed(n_clients: int, clients_per_round: int, seed: int, schedule) -> FixedSampler:
    return FixedSampler(schedule, n_clients=n_clients)


def _dropout(
    n_clients: int, clients_per_round: int, seed: int, dropout: float = 0.1
) -> DropoutSampler:
    return DropoutSampler(n_clients, clients_per_round, dropout=dropout, seed=seed)


def _diurnal(
    n_clients: int, clients_per_round: int, seed: int, phases: int = 2, window: int = 5
) -> DiurnalSampler:
    return DiurnalSampler(
        n_clients, clients_per_round, phases=phases, window=window, seed=seed
    )


register_sampler("uniform", _uniform)
register_sampler("weighted", _weighted)
register_sampler("fixed", _fixed)
register_sampler("dropout", _dropout)
register_sampler("diurnal", _diurnal)


# ---------------------------------------------------------------------------
# Execution-backend registry.
# ---------------------------------------------------------------------------

#: factory(engine, n_workers) -> executor
ExecutorFactory = Callable[..., Any]

_EXECUTORS: Dict[str, ExecutorFactory] = {}


def register_executor(name: str, factory: ExecutorFactory) -> None:
    """Register (or replace) an execution backend factory under ``name``."""
    _EXECUTORS[name.lower()] = factory


def available_executors() -> List[str]:
    return sorted(_EXECUTORS)


def build_executor(name: str, *, engine, n_workers: int = 1):
    """Instantiate the execution backend registered under ``name``.

    ``engine`` is the :class:`~repro.api.engine.Engine` under construction;
    factories pull worker recipes and the task runtime off it.  An unknown
    name raises ``ValueError`` listing the alternatives.
    """
    try:
        factory = _EXECUTORS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from None
    return factory(engine, n_workers)


def _reject_preamble(engine, backend: str) -> None:
    if engine.strategy.needs_preamble:
        raise ValueError(
            f"{engine.strategy.name} uses a preamble phase, which needs the "
            f"serial backend's resident worker; run with executor='serial' "
            f"(got {backend!r})"
        )


def _serial_executor(engine, n_workers: int) -> SerialExecutor:
    return SerialExecutor(engine.make_worker, runtime=engine.runtime)


def _threaded_executor(engine, n_workers: int) -> ThreadedExecutor:
    _reject_preamble(engine, "threaded")
    return ThreadedExecutor(
        engine.make_worker, runtime=engine.runtime, n_workers=max(1, n_workers)
    )


def _process_executor(engine, n_workers: int) -> ProcessExecutor:
    _reject_preamble(engine, "process")
    return ProcessExecutor(
        engine.process_worker_spec(),
        initial_weights=engine.server.plane,
        n_workers=max(1, n_workers),
    )


def _network_executor(engine, n_workers: int):
    # Lazy import: the socket stack only loads when a run asks for it.
    from repro.fl.net.coordinator import NetworkExecutor

    _reject_preamble(engine, "network")
    opts = dict(getattr(engine, "net_options", None) or {})
    fleet = opts.pop("net_workers", None)
    return NetworkExecutor(
        engine, max(1, fleet if fleet is not None else n_workers), **opts
    )


def _auto_executor(engine, n_workers: int):
    """Historical default: serial on one worker, threads above."""
    if n_workers <= 1:
        return _serial_executor(engine, n_workers)
    return _threaded_executor(engine, n_workers)


register_executor("auto", _auto_executor)
register_executor("serial", _serial_executor)
register_executor("threaded", _threaded_executor)
register_executor("process", _process_executor)
register_executor("network", _network_executor)


# ---------------------------------------------------------------------------
# Server-mode registry.
# ---------------------------------------------------------------------------

#: factory(spec, data, callbacks) -> engine
ModeFactory = Callable[..., Any]

_MODES: Dict[str, ModeFactory] = {}


def register_mode(name: str, factory: ModeFactory) -> None:
    """Register (or replace) a server-mode factory under ``name``."""
    _MODES[name.lower()] = factory


def available_modes() -> List[str]:
    return sorted(_MODES)


def build_mode(name: str, *, spec, data, callbacks=()):
    """Instantiate the engine for the mode registered under ``name``.

    ``spec`` is the full :class:`~repro.api.spec.ExperimentSpec`; ``data``
    the prebuilt federated dataset matching it.  An unknown name raises
    ``ValueError`` listing the alternatives.
    """
    try:
        factory = _MODES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown mode {name!r}; available: {available_modes()}"
        ) from None
    return factory(spec, data, callbacks)


def _sync_mode(spec, data, callbacks):
    from repro.api.engine import Engine

    return Engine(
        data,
        spec.build_strategy(),
        spec.build_config(),
        model_name=spec.model,
        sampler=spec.build_sampler(),
        n_workers=spec.n_workers,
        executor=spec.executor,
        system_model=spec.build_system_model(),
        callbacks=callbacks,
        aggregator=spec.build_aggregator(),
        adversary=spec.build_adversary(),
        population=spec.build_population(),
        agg_block_size=spec.agg_block_size,
        state_mmap_mb=spec.state_mmap_mb,
        recorder=spec.build_recorder(),
        fault_injector=spec.build_fault_injector(),
        task_retries=spec.task_retries,
        task_timeout_s=spec.task_timeout_s,
        quorum_fraction=spec.quorum_fraction,
        retry_backoff_base_s=spec.retry_backoff_base_s,
        net_options=spec.build_net_options(),
    )


def _event_driven_mode(spec, data, callbacks, mode: str):
    from repro.fl.asyncfl.engine import AsyncFLEngine
    from repro.fl.asyncfl.timing import ClientTimingModel

    # The event scheduler needs per-client durations; without an explicit
    # device profile, price everything on the homogeneous wifi preset.
    system = spec.build_system_model(default="wifi")
    return AsyncFLEngine(
        data,
        spec.build_strategy(),
        spec.build_config(),
        timing=ClientTimingModel(system),
        mode=mode,
        buffer_size=spec.buffer_size,
        deadline_s=spec.deadline_s,
        async_alpha=spec.async_alpha,
        async_poly=spec.async_poly,
        model_name=spec.model,
        sampler=spec.build_sampler(),
        n_workers=spec.n_workers,
        executor=spec.executor,
        callbacks=callbacks,
        aggregator=spec.build_aggregator(),
        adversary=spec.build_adversary(),
        agg_block_size=spec.agg_block_size,
        recorder=spec.build_recorder(),
        fault_injector=spec.build_fault_injector(),
        task_retries=spec.task_retries,
        task_timeout_s=spec.task_timeout_s,
        quorum_fraction=spec.quorum_fraction,
        retry_backoff_base_s=spec.retry_backoff_base_s,
    )


def _semisync_mode(spec, data, callbacks):
    return _event_driven_mode(spec, data, callbacks, "semisync")


def _async_mode(spec, data, callbacks):
    return _event_driven_mode(spec, data, callbacks, "async")


register_mode("sync", _sync_mode)
register_mode("semisync", _semisync_mode)
register_mode("async", _async_mode)
