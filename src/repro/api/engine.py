"""The callback-driven FL round engine (Algorithm 1's outer structure).

Each round runs seven named phases::

    sample -> broadcast -> preamble -> local_train -> aggregate -> evaluate -> record

1. **sample** — the sampler picks K clients (line 2);
2. **broadcast** — the server snapshots the payload shipped with the global
   model (e.g. SCAFFOLD's control variate);
3. **preamble** — FedDANE/MimeLite collect full-batch gradients at the global
   model and the server combines them;
4. **local_train** — every selected client trains locally from the global
   weights (lines 3-10), through a pluggable serial/threaded executor;
5. **aggregate** — the server aggregates (line 12) and the strategy
   post-processes;
6. **evaluate** — the global model is scored on the held-out test set (every
   ``eval_every`` rounds and on the last round);
7. **record** — a :class:`~repro.fl.types.RoundRecord` is appended to the
   history, including cumulative computation (FLOPs) and communication
   (bytes) — the quantities Tables IV and V report.

:class:`~repro.api.callbacks.Callback` hooks observe the loop between
phases; see that module for the lifecycle.  ``FLConfig.target_accuracy``
is honoured by auto-attaching an
:class:`~repro.api.callbacks.EarlyStopping` callback.

The legacy :class:`repro.fl.simulation.Simulation` class is a compatibility
shim over this engine; :func:`run_experiment` is the declarative front door.
"""

from __future__ import annotations

import copy
import math
import time
from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.data.federated import FederatedData
from repro.fl.client import Client
from repro.fl.evaluation import evaluate_model, full_batch_gradient
from repro.fl.executor import (
    ClientTaskSpec,
    TaskResult,
    TaskRuntime,
    WorkerContext,
    build_round_context,
    make_optimizer,
)
from repro.fl.faults import TaskFailure
from repro.fl.history import History
from repro.fl.params import default_pool, reset_default_pool
from repro.fl.population import ClientDirectory, FlatStateArena, PopulationSampler
from repro.fl.process_executor import ProcessWorkerSpec
from repro.fl.sampling import UniformSampler
from repro.fl.server import Server
from repro.fl.types import ClientUpdate, FLConfig, RoundRecord
from repro.models import build_model, profile_model
from repro.models.fedmodel import FedModel
from repro.obs import NULL_RECORDER, payload_nbytes
from repro.nn.losses import CrossEntropyLoss
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

from repro.api.callbacks import Callback, EarlyStopping, ProgressLogger
from repro.api.registry import build_executor, build_mode

__all__ = ["Engine", "run_experiment", "make_optimizer"]

_log = get_logger("api.engine")

#: default base of the retry backoff curve: the first retry waits this
#: many *simulated* seconds, doubling per attempt (attempt n is preceded
#: by base * 2**(n-1)).  Promoted from constant to the validated
#: ``ExperimentSpec.retry_backoff_base_s`` knob; this default reproduces
#: the historical constant byte-for-byte.  The same base seeds the network
#: workers' reconnect backoff so retry pricing and redial pacing share one
#: curve.
RETRY_BACKOFF_BASE_S = 1.0

#: engine snapshot format written by :meth:`Engine.snapshot`.
SNAPSHOT_FORMAT = 1


class Engine:
    """Wire a dataset, a model architecture and a strategy into a round loop.

    Parameters
    ----------
    data:
        Partitioned federated dataset.
    strategy:
        Algorithm instance (see :mod:`repro.algorithms`).
    config:
        Round/optimizer configuration.
    model_name:
        Registry key ("mlp" / "cnn" / "alexnet"); ignored if ``model_fn``.
    model_fn:
        Custom factory ``() -> FedModel``, overriding the registry.
    sampler:
        Client-selection policy; defaults to the paper's uniform K-of-N.
    n_workers:
        Worker count handed to the execution backend.
    executor:
        Registry name of the execution backend ("serial" / "threaded" /
        "process"; see :mod:`repro.api.registry`).  The default "auto"
        keeps the historical behaviour: serial at ``n_workers<=1``,
        threaded above.  Pooled backends reject strategies with a preamble
        phase, and the process backend additionally requires a
        registry-built model (no custom ``model_fn`` closure).
    client_latency_s:
        Optional per-client wall-clock latency (seconds) charged inside
        every client task, emulating device/network time so scheduling
        benchmarks can measure how well a backend overlaps clients.  Zero
        (the default) disables it; it never affects the trained numbers.
    system_model:
        Optional :class:`~repro.fl.systems.SystemModel` pricing each
        synchronous round at the slowest selected client's
        compute + transfer time; when attached, every
        :class:`~repro.fl.types.RoundRecord` carries the cumulative
        simulated clock in ``virtual_time_s`` (the
        ``ExperimentSpec.device_profile`` field builds one from the
        wifi/4g/iot presets).  Purely observational — trained numbers are
        unaffected.  The event-driven modes
        (:class:`~repro.fl.asyncfl.engine.AsyncFLEngine`) price per-client
        durations from the same presets instead.
    callbacks:
        :class:`~repro.api.callbacks.Callback` instances observing the loop.
        If ``config.target_accuracy`` is set and no
        :class:`~repro.api.callbacks.EarlyStopping` is supplied, one is
        attached automatically so the loop actually stops at the target.
    aggregator:
        Optional :class:`~repro.fl.robust.aggregators.RobustAggregator`
        replacing the strategy's weighted-mean ``aggregate`` hook (built
        from ``ExperimentSpec.aggregator`` via the aggregator registry).
        ``None`` keeps the legacy strategy path byte-identical.
    adversary:
        Optional :class:`~repro.fl.robust.adversaries.Adversary`: poisons
        roster clients' datasets at construction and corrupts their uploads
        inside the executor path (built from ``ExperimentSpec.adversary``).
    population:
        Optional :class:`~repro.fl.population.Population`: replaces the
        eager client list with a lazy :class:`ClientDirectory` over a
        virtual id space (id -> data shard ``id % n_shards``), and the
        default sampler with the O(K) :class:`PopulationSampler`.  Memory
        and startup cost become O(touched clients) instead of
        O(population).  Does not compose with adversaries or per-client
        system models (both enumerate the fleet per id).
    agg_block_size:
        Optional streaming aggregation block size: the server stages at
        most this many client rows at a time while folding the weighted
        mean (peak O(block x P) instead of O(K x P)), byte-identical to
        dense aggregation for every block size.  Rejected at construction
        when combined with a robust rule that needs the full stacked
        matrix (``requires_full_matrix``).
    state_mmap_mb:
        Heap budget (MiB) for lazily-created per-client flat strategy
        state before the directory's arena spills new state to mmap'd
        temp files; ``None`` keeps everything on the heap.  Requires
        ``population``.
    recorder:
        Optional :class:`~repro.obs.Recorder` capturing phase/task spans
        and run metrics (built from ``ExperimentSpec.trace`` /
        ``metrics_out``).  ``None`` (the default) installs the shared
        no-op null recorder: hot-path instrumentation reduces to one
        attribute check and zero allocations.  Purely observational —
        recording never touches RNG state or reduction order, so
        histories are byte-identical with and without it.
    fault_injector:
        Optional :class:`~repro.fl.faults.FaultInjector` failing client
        tasks inside the shared executor path (built from
        ``ExperimentSpec.fault``).  ``None`` leaves every legacy code path
        byte-identical.
    task_retries:
        Retry budget per client task per round: a retryable failure is
        re-dispatched up to this many times, each retry re-drawing its
        fault coin (keyed by attempt) and charging exponential backoff
        (``RETRY_BACKOFF_BASE_S * 2**(attempt-1)`` simulated seconds) to
        the virtual clock.  0 (default) fails tasks on first strike.
    task_timeout_s:
        Per-task report deadline in *simulated* seconds: a straggler
        fault's injected delay beyond this turns the task into a
        ``"timeout"`` failure — its update is discarded (subject to
        retry), though the client's trained state is still adopted (the
        work happened on the device; only the report was late).  ``None``
        disables the deadline.
    quorum_fraction:
        Synchronous graceful degradation: aggregate only when at least
        ``ceil(quorum_fraction * K)`` of the K selected clients delivered
        a usable update; below quorum the round is skipped (global model
        kept, ``skip_reason="quorum"`` — or ``"no_updates"`` when nobody
        reported).  0.0 (default) aggregates whatever arrived, but an
        all-fail round still skips rather than aggregating nothing.
    """

    def __init__(
        self,
        data: FederatedData,
        strategy: Strategy,
        config: FLConfig,
        model_name: str = "cnn",
        model_fn: Optional[Callable[[], FedModel]] = None,
        sampler=None,
        n_workers: int = 1,
        executor: str = "auto",
        client_latency_s: float = 0.0,
        system_model=None,
        callbacks: Iterable[Callback] = (),
        aggregator=None,
        adversary=None,
        population=None,
        agg_block_size: Optional[int] = None,
        state_mmap_mb: Optional[int] = None,
        recorder=None,
        fault_injector=None,
        task_retries: int = 0,
        task_timeout_s: Optional[float] = None,
        quorum_fraction: float = 0.0,
        retry_backoff_base_s: float = RETRY_BACKOFF_BASE_S,
        net_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive when set")
        if not 0.0 <= quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in [0, 1]")
        if retry_backoff_base_s <= 0:
            raise ValueError("retry_backoff_base_s must be positive")
        if config.n_clients != data.n_clients:
            raise ValueError(
                f"config.n_clients={config.n_clients} but data has {data.n_clients} shards"
            )
        # Validate before any executor is built: a late raise would leak a
        # spawned worker pool (close() is unreachable from __init__).
        if system_model is not None and len(system_model.profiles) != config.n_clients:
            raise ValueError(
                f"system model covers {len(system_model.profiles)} clients, "
                f"config has {config.n_clients}"
            )
        if population is not None:
            # The virtual roster is keyed by population ids; subsystems that
            # enumerate the fleet per-id (adversary rosters, per-client
            # device profiles) would force it eager, defeating the point.
            if adversary is not None:
                raise ValueError(
                    "population mode does not compose with adversaries: the "
                    "roster would have to be drawn over the whole population"
                )
            if system_model is not None:
                raise ValueError(
                    "population mode does not compose with per-client system "
                    "models (profiles are enumerated per client id)"
                )
            if population.n_shards != data.n_clients:
                raise ValueError(
                    f"population maps onto {population.n_shards} shards but "
                    f"data has {data.n_clients}"
                )
        if state_mmap_mb is not None and population is None:
            raise ValueError("state_mmap_mb only applies with a population")
        self.data = data
        self.strategy = strategy
        self.config = config
        self.client_latency_s = float(client_latency_s)
        root = RngStream(config.seed)
        self._custom_model_fn = model_fn is not None
        self._model_name = model_name
        if model_fn is None:
            spec = data.spec

            def model_fn() -> FedModel:
                # A fresh child generator per call -> every replica gets the
                # same deterministic initial weights.
                return build_model(
                    model_name,
                    spec.input_shape,
                    spec.num_classes,
                    rng=root.child("model-init").generator,
                )

        self._model_fn = model_fn
        canonical = model_fn()
        self.profile = profile_model(canonical)
        self.server = Server(canonical.get_weights(), strategy, config,
                             aggregator=aggregator, agg_block_size=agg_block_size)
        self.adversary = adversary
        if adversary is not None and adversary.n_clients != config.n_clients:
            raise ValueError(
                f"adversary roster was drawn over {adversary.n_clients} clients, "
                f"config has {config.n_clients}"
            )
        self.population = population
        self._state_mmap_mb = state_mmap_mb
        if population is not None:
            # Lazy roster: clients (and their strategy state) materialize on
            # first touch; nothing here is O(population).  Flat state interns
            # into a heap-then-mmap arena sized by state_mmap_mb.
            self.clients = ClientDirectory(
                population, data, seed=config.seed,
                state_factory=strategy.init_client_state,
                arena=FlatStateArena(
                    threshold_bytes=None if state_mmap_mb is None
                    else int(state_mmap_mb) << 20),
            )
        else:
            self.clients: List[Client] = [
                Client(k, data.client_dataset(k), seed=config.seed)
                for k in range(data.n_clients)
            ]
            if adversary is not None:
                adversary.poison_clients(self.clients, data.spec.num_classes)
            for c in self.clients:
                c.state = strategy.init_client_state(c.id)
        if sampler is not None:
            self.sampler = sampler
        elif population is not None:
            self.sampler = PopulationSampler(
                population, config.clients_per_round, seed=config.seed
            )
        else:
            self.sampler = UniformSampler(
                config.n_clients, config.clients_per_round, seed=config.seed
            )
        opt_name = strategy.local_optimizer or config.optimizer
        self._opt_name = opt_name

        def make_worker() -> WorkerContext:
            model = model_fn()
            frozen = model_fn()
            frozen.eval()
            # Handing the model (not its parameter list) re-homes it onto
            # weight/grad planes and gives the optimizer the fused flat
            # update path; see repro.fl.params.materialize_parameters.
            optimizer = make_optimizer(opt_name, model, config)
            return WorkerContext(model, frozen, optimizer, CrossEntropyLoss())

        self.make_worker = make_worker
        #: the run's observability sink (shared null recorder when off).
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.fault_injector = fault_injector
        self.task_retries = int(task_retries)
        self.task_timeout_s = task_timeout_s
        self.quorum_fraction = float(quorum_fraction)
        self.retry_backoff_base_s = float(retry_backoff_base_s)
        #: network-executor options (bind, fleet, injector, codec, cell_key);
        #: stored before build_executor so the factory can read them.
        self.net_options = net_options
        #: True when any failure-policy knob is on.  The screens and the
        #: quorum gate only engage then, so legacy runs (no policy) keep
        #: their exact historical behaviour — including aggregator-side
        #: handling of non-finite losses.
        self._policy_active = (
            fault_injector is not None
            or self.task_retries > 0
            or task_timeout_s is not None
            or self.quorum_fraction > 0.0
        )
        # Per-round fault bookkeeping, reset by _reset_fault_round().
        self._round_failed: List[int] = []
        self._round_retried: List[int] = []
        self._round_fault_extra_s = 0.0
        self.runtime = TaskRuntime(
            clients=self.clients,
            strategy=strategy,
            config=config,
            fp_flops=float(self.profile.forward_flops),
            global_weights=self.server.weights,
            adversary=adversary,
            fault_injector=fault_injector,
            recorder=self.obs,
        )
        self.executor = build_executor(executor, engine=self, n_workers=n_workers)
        if getattr(self.executor, "inherently_unreliable", False):
            # A real wire can lose tasks even with no injector configured;
            # keep the failure screens and the quorum gate armed so a lost
            # connection degrades into a policy decision, not a crash on an
            # empty aggregate.
            self._policy_active = True
        self.history = History()
        self.callbacks: List[Callback] = list(callbacks)
        if config.target_accuracy is not None and not any(
            isinstance(cb, EarlyStopping) for cb in self.callbacks
        ):
            self.callbacks.append(EarlyStopping(target_accuracy=config.target_accuracy))
        # Legacy observers called with (updates, global_weights_before_
        # aggregation) every round; superseded by Callback.on_aggregate but
        # kept so existing attach()-style diagnostics keep working.  Same
        # contract as that hook: the weight arrays are live views into the
        # server's flat buffer — consume or copy, don't retain.
        self.update_observers: List = []
        self._stop_reason: Optional[str] = None
        self.system_model = system_model
        #: cumulative simulated clock stamped onto round records; None until
        #: a device/network model observes a round (event-driven subclasses
        #: set it from their virtual clock instead).
        self._virtual_time_s: Optional[float] = None

    # ------------------------------------------------------------------
    # callback / stop plumbing
    # ------------------------------------------------------------------
    def add_callback(self, callback: Callback) -> "Engine":
        self.callbacks.append(callback)
        return self

    def request_stop(self, reason: str) -> None:
        """Ask the loop to stop once the current round completes.

        The first reason wins; it is recorded on ``history.stop_reason``.
        """
        if self._stop_reason is None:
            self._stop_reason = reason

    @property
    def stop_requested(self) -> bool:
        return self._stop_reason is not None

    def _fire(self, hook: str, *args) -> None:
        for cb in self.callbacks:
            getattr(cb, hook)(self, *args)

    # ------------------------------------------------------------------
    # executor plumbing
    # ------------------------------------------------------------------
    def process_worker_spec(self) -> ProcessWorkerSpec:
        """The picklable recipe a :class:`ProcessExecutor` pool worker uses
        to rebuild model, optimizer and clients in its own process."""
        if self._custom_model_fn:
            raise ValueError(
                "the process executor rebuilds models from the registry and "
                "cannot ship a custom model_fn closure across processes; use "
                "a registered model name or executor='serial'/'threaded'"
            )
        return ProcessWorkerSpec(
            data=self.data,
            strategy=self.strategy,
            config=self.config,
            model_name=self._model_name,
            opt_name=self._opt_name,
            fp_flops=float(self.profile.forward_flops),
            adversary=self.adversary,
            population=self.population,
            obs_enabled=self.obs.enabled,
            obs_spans=getattr(self.obs, "exporter", None) is not None,
            fault_injector=self.fault_injector,
        )

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _build_ctx(self, worker: WorkerContext, client: Client, round_idx: int,
                   broadcast: Dict) -> ClientRoundContext:
        self.runtime.global_weights = self.server.weights
        self.runtime.global_flat = self.server.plane.flat
        return build_round_context(
            worker, self.runtime, client.id, round_idx, broadcast, client.state
        )

    def _phase_sample(self, round_idx: int) -> List[int]:
        """Phase 1: pick this round's K participants."""
        return self.sampler.select(round_idx)

    def _phase_broadcast(self) -> Dict:
        """Phase 2: the server-side payload shipped with the global model."""
        return self.server.broadcast_payload()

    def _phase_preamble(
        self, selected: List[int], round_idx: int, broadcast: Dict
    ) -> Tuple[Dict, Dict[int, float]]:
        """Phase 3: full-batch gradients at the global model (FedDANE/MimeLite).

        Returns the (possibly refreshed) broadcast payload and the FLOPs
        each preamble client spent.
        """
        if not self.strategy.needs_preamble:
            return broadcast, {}
        worker = self.executor.borrow_worker()
        if worker is None:  # pragma: no cover - constructor already rejects this
            raise RuntimeError("preamble phase requires serial execution")
        payloads: Dict[int, Dict] = {}
        preamble_flops: Dict[int, float] = {}
        for k in selected:
            client = self.clients[k]
            ctx = self._build_ctx(worker, client, round_idx, broadcast)
            grad = full_batch_gradient(worker.model, client.dataset, self.config.eval_batch_size)
            payloads[k] = self.strategy.client_preamble(ctx, grad)
            # full-batch grad = one fwd+bwd pass over the shard (3x forward).
            preamble_flops[k] = 3.0 * client.num_samples * self.profile.forward_flops
        self.server.run_preamble(payloads)
        return self.server.broadcast_payload(), preamble_flops

    def _phase_local_train(
        self,
        selected: List[int],
        round_idx: int,
        broadcast: Dict,
        preamble_flops: Dict[int, float],
    ) -> List[ClientUpdate]:
        """Phase 4: broadcast the global weights + server payload to the
        backend once, then train the selected clients as picklable task
        payloads.  The server's flat plane is handed over as-is: in-process
        backends alias it (zero copies) and the process backend moves it
        into shared memory with a single flat ``np.copyto``."""
        self.executor.broadcast(self.server.plane, broadcast)
        if self.obs.enabled:
            self.obs.broadcast_bytes(
                self.server.plane.layout.total_bytes,
                payload_nbytes(broadcast),
                len(selected),
            )
        tasks = [
            ClientTaskSpec(
                client_id=k,
                round_idx=round_idx,
                state=self.clients[k].state,
                preamble_flops=preamble_flops.get(k, 0.0),
                emulate_seconds=self.client_latency_s,
            )
            for k in selected
        ]
        updates_by_client: Dict[int, ClientUpdate] = {}
        pending = tasks
        wave = 0
        while pending:
            if wave > 0:
                # Retry wave n is preceded by exponential backoff, priced
                # on the virtual clock (no wall sleep).
                self._round_fault_extra_s += self.retry_backoff_base_s * (2.0 ** (wave - 1))
            next_pending: List[ClientTaskSpec] = []
            wave_delay = 0.0
            for task, result in zip(pending, self.executor.run(pending)):
                if result.obs is not None:
                    # Process-pool worker shard: merge in task order so the
                    # combined metrics are deterministic.
                    self.obs.absorb(result.obs)
                wave_delay = max(wave_delay, result.fault_delay_s)
                failure = self._screen_result(task, result)
                if failure is None:
                    # Pooled backends trained on a copy of the client state;
                    # adopt the returned dict so strategy state survives the
                    # round trip.
                    self._adopt_state(result.update.client_id, result.state)
                    updates_by_client[task.client_id] = result.update
                    self._fire("on_client_update", round_idx, result.update)
                    continue
                if result.state is not None:
                    # Timeout: the device trained (state advanced on-device)
                    # but the report missed the deadline — adopt the state,
                    # discard the update.
                    self._adopt_state(task.client_id, result.state)
                if failure.retryable and task.attempt < self.task_retries:
                    self._round_retried.append(task.client_id)
                    next_pending.append(replace(
                        task,
                        state=self.clients[task.client_id].state,
                        attempt=task.attempt + 1,
                    ))
                else:
                    self._round_failed.append(task.client_id)
            # The slowest injected straggler delay of this wave stretches
            # the round on the virtual clock (waves are sequential).
            self._round_fault_extra_s += wave_delay
            pending = next_pending
            wave += 1
        # Selected order == task order, so a policy-free run (nothing can
        # fail) assembles the exact list the pre-fault engine built.
        return [updates_by_client[k] for k in selected if k in updates_by_client]

    def _adopt_state(self, client_id: int, state: Dict) -> None:
        """Land a post-round client state dict.  The lazy directory routes
        it through its arena (stable per-key slots); the eager list simply
        rebinds — both end with byte-equal state values."""
        adopt = getattr(self.clients, "adopt_state", None)
        if adopt is not None:
            adopt(client_id, state)
        else:
            self.clients[client_id].state = state

    # ------------------------------------------------------------------
    # failure policy
    # ------------------------------------------------------------------
    def _reset_fault_round(self) -> None:
        """Clear the per-round fault bookkeeping (called at round start)."""
        self._round_failed = []
        self._round_retried = []
        self._round_fault_extra_s = 0.0

    def _screen_result(self, task: ClientTaskSpec,
                       result: TaskResult) -> Optional[TaskFailure]:
        """The engine side of the failure policy: decide whether one task
        result is usable.

        Injector-made failures arrive ready on ``result.failure``; with the
        policy active this additionally turns an over-deadline straggler
        delay into a ``"timeout"`` failure and a non-finite training loss
        into a non-retryable ``"nonfinite"`` one (training is
        deterministic — retraining reproduces the divergence, so the retry
        budget is not spent on it).  With no policy configured nothing is
        screened and the aggregator's finite-check keeps its historical
        role.
        """
        failure = result.failure
        if failure is None and self._policy_active and result.update is not None:
            if (
                self.task_timeout_s is not None
                and result.fault_delay_s > self.task_timeout_s
            ):
                failure = TaskFailure(
                    kind="timeout",
                    client_id=task.client_id,
                    round_idx=task.round_idx,
                    attempt=task.attempt,
                    detail=(
                        f"report took {result.fault_delay_s:.3f}s simulated, "
                        f"deadline {self.task_timeout_s:.3f}s"
                    ),
                )
            elif not math.isfinite(result.update.train_loss):
                failure = TaskFailure(
                    kind="nonfinite",
                    client_id=task.client_id,
                    round_idx=task.round_idx,
                    attempt=task.attempt,
                    retryable=False,
                    detail="non-finite training loss",
                )
            if failure is not None:
                result.failure = failure
        if failure is not None and self.obs.enabled:
            self.obs.metrics.counter(
                "fl_task_failures_total", "client task attempts that failed",
                labels={"kind": failure.kind},
            ).inc()
            if result.flops_wasted:
                self.obs.metrics.counter(
                    "fl_flops_wasted_total",
                    "client FLOPs burned by failed attempts (mid-train crashes)",
                ).inc(result.flops_wasted)
        return failure

    def _quorum_skip_reason(self, selected: List[int],
                            updates: List[ClientUpdate]) -> Optional[str]:
        """Why aggregation must be skipped this round, or None to proceed.

        Only consulted with the failure policy active (otherwise every
        selected client reported, as ever).  An all-fail round always
        skips — there is nothing to aggregate; below-quorum participation
        skips with ``"quorum"``.
        """
        if not self._policy_active:
            return None
        if not updates:
            return "no_updates"
        needed = math.ceil(self.quorum_fraction * len(selected))
        if len(updates) < needed:
            return "quorum"
        return None

    def _phase_aggregate(self, round_idx: int, updates: List[ClientUpdate]) -> None:
        """Phase 5: observers see (updates, pre-aggregation weights), then
        the server aggregates and the strategy post-processes."""
        self._fire("on_aggregate", round_idx, updates, self.server.weights)
        for observer in self.update_observers:
            observer(updates, self.server.weights)
        self.server.apply_updates(updates)

    def _phase_evaluate(self, round_idx: int) -> Tuple[Optional[float], Optional[float]]:
        """Phase 6: score the new global model on the held-out test split."""
        evaluate = (
            round_idx % self.config.eval_every == 0 or round_idx == self.config.rounds - 1
        )
        if not evaluate:
            return None, None
        acc, loss = self.evaluate_global()
        self._fire("on_evaluate", round_idx, acc, loss)
        return acc, loss

    def _observe_virtual_time(self, updates: List[ClientUpdate]) -> None:
        """Advance the simulated clock by this synchronous round's duration
        (slowest selected client, plus any injected straggler delays and
        retry backoff) when a system model is attached."""
        if self.system_model is None:
            return
        self.system_model.observe(
            updates, self.server.weights, extra_s=self._round_fault_extra_s
        )
        self._virtual_time_s = self.system_model.total_seconds()

    def _phase_record(
        self,
        round_idx: int,
        selected: List[int],
        updates: List[ClientUpdate],
        acc: Optional[float],
        loss: Optional[float],
        t0: float,
        update_staleness: Optional[List[int]] = None,
        phase_seconds: Optional[Dict[str, float]] = None,
    ) -> RoundRecord:
        """Phase 7: cost bookkeeping + append the round record.

        The aggregation-health fields come straight off the server's
        per-round report (dropped/screened/skipped); the adversary labels
        intersect this round's participants with the static roster.
        """
        self._observe_virtual_time(updates)
        round_flops = sum(u.flops for u in updates)
        round_comm = sum(u.comm_bytes for u in updates)
        prev = self.history.records[-1] if self.history.records else None
        record = RoundRecord(
            round_idx=round_idx,
            selected=selected,
            test_accuracy=acc,
            test_loss=loss,
            mean_train_loss=(
                float(np.mean([u.train_loss for u in updates]))
                if updates else float("nan")
            ),
            cumulative_flops=(prev.cumulative_flops if prev else 0.0) + round_flops,
            cumulative_comm_bytes=(prev.cumulative_comm_bytes if prev else 0.0) + round_comm,
            wall_seconds=time.perf_counter() - t0,
            virtual_time_s=self._virtual_time_s,
            update_staleness=(
                update_staleness
                if update_staleness is not None
                else ([0] * len(updates) if self._virtual_time_s is not None else None)
            ),
            dropped_clients=list(self.server.last_dropped),
            screened_clients=list(self.server.last_screened),
            adversary_clients=(
                sorted(
                    u.client_id for u in updates
                    if self.adversary.is_adversary(u.client_id)
                )
                if self.adversary is not None else None
            ),
            round_skipped=self.server.last_skipped,
            phase_seconds=phase_seconds,
            failed_clients=sorted(self._round_failed),
            retried_clients=list(self._round_retried),
            skip_reason=self.server.last_skip_reason,
        )
        self.history.append(record)
        if self.obs.enabled:
            self._observe_gauges()
            # Round metrics land before on_round_end so callbacks reading
            # the registry (ProgressLogger) see this round included.
            self.obs.end_round(record)
        self._fire("on_round_end", record)
        return record

    def _observe_gauges(self) -> None:
        """Refresh end-of-round gauges: the population directory's state
        arena (heap vs mmap residency) and the aggregation scratch pool's
        peak shape.  Only called with a live recorder."""
        m = self.obs.metrics
        arena = getattr(self.clients, "arena", None)
        if arena is not None:
            stats = arena.stats()
            m.gauge("fl_arena_heap_bytes",
                    "flat client state resident on the heap").set(stats["heap_bytes"])
            m.gauge("fl_arena_mapped_bytes",
                    "flat client state spilled to mmap'd files").set(stats["mapped_bytes"])
            m.gauge("fl_arena_slots", "interned flat state slots").set(stats["n_slots"])
        rows, cols = default_pool().peak_shape
        if rows:
            m.gauge("fl_matrix_pool_peak_rows",
                    "peak K of pooled (K, P) aggregation scratch").set(rows)
            m.gauge("fl_matrix_pool_peak_cols",
                    "peak P of pooled (K, P) aggregation scratch").set(cols)

    # ------------------------------------------------------------------
    # round loop
    # ------------------------------------------------------------------
    def _end_phase(self, name: str, timings: Dict[str, float], t_start: float,
                   **attrs) -> float:
        """Close the phase opened by ``obs.begin_phase``: stamp its wall
        time into ``timings`` (always — RoundRecord.phase_seconds is not
        opt-in) and emit the span when a recorder is live.  Returns now, so
        callers chain phases without re-reading the clock."""
        now = time.perf_counter()
        timings[name] = now - t_start
        self.obs.end_phase(now - t_start, **attrs)
        return now

    def run_round(self) -> RoundRecord:
        t0 = time.perf_counter()
        obs = self.obs
        round_idx = self.server.round_idx
        obs.begin_round(round_idx)
        self._reset_fault_round()
        timings: Dict[str, float] = {}

        obs.begin_phase("sample")
        selected = self._phase_sample(round_idx)
        self._end_phase("sample", timings, t0, cohort=len(selected))
        self._fire("on_round_start", round_idx, selected)

        t = time.perf_counter()  # callbacks don't bill to any phase
        obs.begin_phase("broadcast")
        broadcast = self._phase_broadcast()
        t = self._end_phase("broadcast", timings, t)

        obs.begin_phase("preamble")
        broadcast, preamble_flops = self._phase_preamble(selected, round_idx, broadcast)
        t = self._end_phase("preamble", timings, t, n_clients=len(preamble_flops))

        obs.begin_phase("local_train")
        updates = self._phase_local_train(selected, round_idx, broadcast, preamble_flops)
        t = self._end_phase("local_train", timings, t, n_updates=len(updates))

        obs.begin_phase("aggregate")
        skip_reason = self._quorum_skip_reason(selected, updates)
        if skip_reason is None:
            self._phase_aggregate(round_idx, updates)
        else:
            # Graceful degradation: keep the global model, record why, and
            # advance the round (apply_updates rejects empty sets, so the
            # aggregate phase is bypassed entirely).
            self.server.reset_report()
            self.server.skip_round(reason=skip_reason)
        t = self._end_phase(
            "aggregate", timings, t,
            dropped=len(self.server.last_dropped),
            screened=len(self.server.last_screened),
        )

        obs.begin_phase("evaluate")
        acc, loss = self._phase_evaluate(round_idx)
        self._end_phase("evaluate", timings, t)

        return self._phase_record(
            round_idx, selected, updates, acc, loss, t0, phase_seconds=timings
        )

    def run(self, progress: bool = False) -> History:
        """Run the remaining rounds (honouring early stop) and return the
        history; fires ``on_fit_end`` exactly once per call."""
        if progress:
            logger = ProgressLogger()
            self.callbacks.append(logger)
        try:
            while len(self.history) < self.config.rounds and not self.stop_requested:
                self.run_round()
        finally:
            if progress:
                self.callbacks.remove(logger)
        if self._stop_reason is not None:
            self.history.stop_reason = self._stop_reason
            _log.info("[%s] early stop: %s", self.strategy.name, self._stop_reason)
        self._fire("on_fit_end", self.history)
        return self.history

    # ------------------------------------------------------------------
    # crash-safe snapshot / resume
    # ------------------------------------------------------------------
    def _client_state_snapshot(self) -> Dict[int, Dict[str, Any]]:
        snapshot = getattr(self.clients, "state_snapshot", None)
        if snapshot is not None:
            # Lazy directory: only touched clients carry state; untouched
            # ones re-materialize deterministically from their factory.
            return snapshot()
        return {c.id: copy.deepcopy(c.state) for c in self.clients}

    def snapshot(self) -> Dict[str, Any]:
        """Everything needed to resume this run byte-identically.

        Covers the mutable run state: global weights, strategy server
        state, per-client strategy state, History, the round counters and
        the virtual clock.  Nothing RNG-shaped is saved *by design* —
        every random draw in the system (sampling, client batching, fault
        coins, adversaries) derives statelessly from ``(seed, purpose,
        round, ...)`` through the RngStream tree, so round N+1's draws are
        identical whether rounds 0..N ran in this process or a dead one.
        Callback-internal state (e.g. ``EarlyStopping`` patience counters)
        is *not* captured — a resumed run re-accumulates it from the
        resume point.
        """
        return {
            "format": SNAPSHOT_FORMAT,
            "cell_key": getattr(self, "_cell_key", None),
            "round_idx": self.server.round_idx,
            "skipped_rounds": self.server.skipped_rounds,
            "global_flat": np.array(self.server.flat_weights, copy=True),
            "server_state": copy.deepcopy(self.server.state),
            "client_states": self._client_state_snapshot(),
            "history_records": copy.deepcopy(self.history.records),
            "stop_reason": self._stop_reason,
            "system_round_times": (
                list(self.system_model.round_times)
                if self.system_model is not None else None
            ),
            "virtual_time_s": self._virtual_time_s,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Load a :meth:`snapshot` back into a freshly built engine.

        The engine must have been constructed from the same experiment
        (same spec/seed/data) — :func:`run_experiment` enforces that via
        the snapshot's ``cell_key``.  After restoring, :meth:`run`
        continues from the next round exactly as an uninterrupted run
        would have.
        """
        fmt = snapshot.get("format")
        if fmt != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported engine snapshot format {fmt!r} "
                f"(this build reads format {SNAPSHOT_FORMAT})"
            )
        if len(self.history):
            raise ValueError("restore() requires a freshly built engine")
        np.copyto(self.server.flat_weights, snapshot["global_flat"])
        self.server.state = copy.deepcopy(snapshot["server_state"])
        self.server.round_idx = int(snapshot["round_idx"])
        self.server.skipped_rounds = int(snapshot["skipped_rounds"])
        for client_id, state in snapshot["client_states"].items():
            self._adopt_state(int(client_id), copy.deepcopy(state))
        for record in snapshot["history_records"]:
            self.history.append(record)
        self._stop_reason = snapshot["stop_reason"]
        if self.system_model is not None and snapshot["system_round_times"] is not None:
            self.system_model.round_times = list(snapshot["system_round_times"])
        self._virtual_time_s = snapshot["virtual_time_s"]

    # ------------------------------------------------------------------
    # inspection / lifecycle
    # ------------------------------------------------------------------
    def _load_global(self, model: FedModel) -> FedModel:
        """Copy the server's weights into ``model`` (flat when possible)."""
        flat = self.server.plane.flat
        if flat is not None:
            model.set_weights_flat(flat)
        else:  # pragma: no cover - models in this codebase are uniform f32
            model.set_weights(self.server.weights)
        return model

    def evaluate_global(self) -> Tuple[float, float]:
        """Accuracy/loss of the current global weights on the test split."""
        worker = self.executor.borrow_worker()
        model = worker.model if worker is not None else self._model_fn()
        self._load_global(model)
        return evaluate_model(model, self.data.test, self.config.eval_batch_size)

    def global_model(self) -> FedModel:
        """A fresh model instance loaded with the current global weights."""
        return self._load_global(self._model_fn())

    def close(self) -> None:
        """Release the executor, observability sinks and scratch memory.

        Idempotent: callbacks and ``with`` blocks may both reach it."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        # Finalize observability first: derived gauges (rounds/sec) and the
        # metrics exposition file want the run complete but the scratch
        # pool's peak still intact.
        self.obs.close()
        self.executor.close()
        # Release per-experiment scratch: pooled (K, P) matrices would
        # otherwise outlive the experiment on this thread (the shape-keyed
        # pool never shrinks on its own), and a lazy roster's state arena
        # holds mmap chunks open.
        reset_default_pool()
        directory_close = getattr(self.clients, "close", None)
        if directory_close is not None:
            directory_close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_experiment(
    spec,
    callbacks: Iterable[Callback] = (),
    progress: bool = False,
    data: Optional[FederatedData] = None,
    resume_from: Optional[str] = None,
) -> History:
    """Train one :class:`~repro.api.spec.ExperimentSpec` and return its history.

    The declarative front door: builds the data, strategy, config and
    sampler from the spec, resolves ``spec.mode`` through the mode registry
    (``"sync"`` — this module's barrier engine; ``"semisync"``/``"async"``
    — the event-driven :class:`~repro.fl.asyncfl.engine.AsyncFLEngine`),
    runs the engine to completion (early stop included) and releases the
    executor.  ``data`` optionally supplies a prebuilt dataset equal to
    ``spec.build_data()`` — a cache hook for callers training many methods
    on one partition; the caller is responsible for it actually matching
    the spec's data fields.

    ``resume_from`` names an engine snapshot written by
    :class:`~repro.api.callbacks.Checkpointer` (``engine_state=True``):
    the snapshot is restored into the freshly built engine and training
    continues from the next round, producing a History byte-identical to
    the uninterrupted run.  The snapshot's recorded ``cell_key`` must
    match this spec's — resuming under different experiment parameters is
    an error, not a silent divergence.  Sync mode only (the event-driven
    engines carry in-flight queue state that a crash loses).
    """
    engine = build_mode(
        spec.mode,
        spec=spec,
        data=data if data is not None else spec.build_data(),
        callbacks=callbacks,
    )
    # Stamped onto snapshots so a resume can prove it targets the same
    # experiment cell (the key hashes every behaviour-bearing spec field).
    engine._cell_key = spec.cell_key()
    with engine:
        if resume_from is not None:
            from repro.io.persistence import load_engine_snapshot

            snapshot = load_engine_snapshot(resume_from)
            stored = snapshot.get("cell_key")
            if stored is not None and stored != engine._cell_key:
                raise ValueError(
                    f"snapshot {resume_from!r} was written by experiment cell "
                    f"{stored}, but this spec is cell {engine._cell_key}; "
                    "resume requires the identical experiment"
                )
            engine.restore(snapshot)
        return engine.run(progress=progress)
