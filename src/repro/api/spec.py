"""One declarative, hashable description of a training run.

:class:`ExperimentSpec` is the single source of truth the CLI, the sweep
grid and the benchmark harness all construct and hand to
:func:`~repro.api.engine.run_experiment`.  It is frozen (usable as a dict
key, safe to share across threads), serializable (``to_dict`` /
``from_dict`` round-trip through JSON), and content-addressed
(:meth:`cell_key` is a stable hash suitable for run caches and experiment
stores).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.algorithms import build_strategy
from repro.data import build_federated_data
from repro.fl.systems import SystemModel
from repro.fl.types import FLConfig
from repro.io.persistence import ExperimentStore

from repro.api.registry import build_sampler

__all__ = ["ExperimentSpec"]

Pairs = Union[Tuple[Tuple[str, Any], ...], Mapping[str, Any]]


def _canon_value(value: Any) -> Any:
    """Lists/tuples become (nested) tuples so the spec stays hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_canon_value(v) for v in value)
    return value


def _as_pairs(value: Pairs, name: str) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a mapping or pair-tuple to a sorted, hashable pair-tuple."""
    items = dict(value)
    for key in items:
        if not isinstance(key, str):
            raise TypeError(f"{name} keys must be strings, got {key!r}")
    return tuple(sorted((k, _canon_value(v)) for k, v in items.items()))


@dataclass(frozen=True)
class ExperimentSpec:
    """A fully specified (dataset, partition, model, method, loop) cell.

    ``overrides`` and ``sampler_kwargs`` accept either a dict or a tuple of
    pairs; they are canonicalized to sorted tuples so equal specs always
    hash and serialize identically.
    """

    # -- workload -----------------------------------------------------------
    dataset: str = "mini_mnist"
    model: str = "mlp"
    method: str = "fedtrip"
    # -- data partition -----------------------------------------------------
    partition: str = "dirichlet"
    alpha: Optional[float] = 0.5
    n_clusters: int = 5
    samples_per_client: Optional[int] = None
    feature_skew: bool = False
    # -- round loop / local optimizer --------------------------------------
    n_clients: int = 10
    clients_per_round: int = 4
    rounds: int = 20
    batch_size: int = 50
    local_epochs: int = 1
    lr: float = 0.05
    momentum: float = 0.9
    optimizer: str = "sgdm"
    eval_every: int = 1
    eval_batch_size: int = 256
    seed: int = 0
    target_accuracy: Optional[float] = None
    max_grad_norm: Optional[float] = None
    # -- strategy hyperparameter overrides (e.g. {"mu": 0.8}) ---------------
    overrides: Pairs = ()
    # -- client sampling & execution backend --------------------------------
    sampler: str = "uniform"
    sampler_kwargs: Pairs = ()
    n_workers: int = 1
    #: execution backend registry name ("auto" | "serial" | "threaded" |
    #: "process" | "network"); "auto" = serial at n_workers<=1, threaded
    #: above.
    executor: str = "auto"
    # -- network executor (repro.fl.net) -------------------------------------
    #: coordinator listen address for executor="network"; port 0 picks an
    #: ephemeral port.  A loopback host means the executor spawns its own
    #: worker subprocesses; any other host waits for externally started
    #: ``python -m repro.fl.net.worker`` processes to register.
    net_bind: str = "127.0.0.1:0"
    #: worker connections the network round waits for; None = n_workers.
    net_workers: Optional[int] = None
    #: registration patience, per-task wall-clock ceiling, and empty-fleet
    #: grace period (seconds) for the network executor.
    net_connect_timeout_s: float = 20.0
    #: worker liveness beacon cadence (seconds); a connection silent for
    #: max(5 * heartbeat, 3.0) seconds while holding a task is declared dead.
    net_heartbeat_s: float = 0.5
    #: network fault injector registry name ("drop_frame" |
    #: "duplicate_frame" | "delay_frame" | "truncate_frame" | "partition");
    #: None = a clean wire.  Coins are seeded per frame like repro.fl.faults.
    net_fault: Optional[str] = None
    #: per-frame firing probability; must be positive iff net_fault is set.
    net_fault_rate: float = 0.0
    #: fault-specific arguments, e.g. {"max_delay_s": 0.5}.
    net_fault_kwargs: Pairs = ()
    #: upload wire codec ("topk" | "quantization"); workers then ship their
    #: update as a compressed delta against the round broadcast.  Lossy —
    #: trades the byte-identity contract for bytes on the wire.
    net_codec: Optional[str] = None
    #: codec-specific arguments, e.g. {"fraction": 0.05} or {"bits": 8}.
    net_codec_kwargs: Pairs = ()
    #: base of the exponential retry backoff curve (simulated seconds per
    #: retry wave; also seeds the network workers' reconnect backoff).  The
    #: default 1.0 reproduces the historical constant byte-for-byte.
    retry_backoff_base_s: float = 1.0
    # -- server mode & simulated systems model ------------------------------
    #: server-mode registry name: "sync" (barrier rounds), "semisync"
    #: (deadline/buffer rounds) or "async" (staleness-decayed mixing), the
    #: latter two on the virtual-clock event scheduler (repro.fl.asyncfl).
    mode: str = "sync"
    #: semisync: aggregate whatever arrived this many simulated seconds
    #: after dispatch (None = wait for the full buffer).
    deadline_s: Optional[float] = None
    #: aggregation buffer size K (FedBuff); None = 1 in async mode,
    #: clients_per_round in semisync.  Over-selection = configuring
    #: clients_per_round > buffer_size.
    buffer_size: Optional[int] = None
    #: device/network preset ("wifi" | "4g" | "iot", see
    #: repro.fl.systems.NETWORK_PRESETS); attaches a SystemModel so sync
    #: rounds are priced in simulated seconds, and drives the event
    #: scheduler's per-client durations in async/semisync modes (which
    #: default to "wifi" when unset).
    device_profile: Optional[str] = None
    #: multiplicative compute-speed spread (>= 1): client k's speed is
    #: scaled by a seeded factor in [1/h, 1] — the straggler knob.
    heterogeneity: float = 1.0
    #: async mixing weight: alpha * (1 + staleness)^(-poly).
    async_alpha: float = 0.6
    async_poly: float = 0.5
    # -- Byzantine robustness (repro.fl.robust) ------------------------------
    #: robust-aggregation registry name ("mean" | "coordinate_median" |
    #: "trimmed_mean" | "norm_clip" | "norm_screen" | "krum" |
    #: "multi_krum"); "mean" keeps the legacy strategy.aggregate path
    #: byte-identical.
    aggregator: str = "mean"
    #: rule-specific arguments, e.g. {"beta": 0.25} or {"f": 2, "m": 4}.
    aggregator_kwargs: Pairs = ()
    #: adversary registry name ("sign_flip" | "scale" | "gauss_noise" |
    #: "label_flip" | "collude"); None = no attack.
    adversary: Optional[str] = None
    #: fraction of the n_clients roster acting maliciously (the f/K knob);
    #: must be positive iff an adversary is set.
    adversary_fraction: float = 0.0
    #: attack-specific arguments, e.g. {"gamma": 5.0} or {"sigma": 0.5}.
    adversary_kwargs: Pairs = ()
    # -- fault tolerance (repro.fl.faults) -----------------------------------
    #: fault-injector registry name ("crash" | "crash_mid_train" |
    #: "corrupt" | "straggler" | "worker_death"); None = no injected
    #: faults.  Faults are per-(client, round, attempt) coin flips, so
    #: they compose with population mode (no fleet enumeration).
    fault: Optional[str] = None
    #: per-task firing probability of the fault; must be positive iff a
    #: fault is set.
    fault_rate: float = 0.0
    #: fault-specific arguments, e.g. {"mode": "truncate"} or
    #: {"max_delay_s": 30.0}.
    fault_kwargs: Pairs = ()
    #: retry budget per client task per round: retryable failures are
    #: re-dispatched up to this many times, re-drawing the fault coin per
    #: attempt and pricing exponential backoff on the virtual clock.
    task_retries: int = 0
    #: per-task report deadline in simulated seconds: an injected
    #: straggler delay beyond this becomes a "timeout" failure.  Requires
    #: a fault (only injected delays can exceed it).
    task_timeout_s: Optional[float] = None
    #: synchronous quorum: aggregate only when >= ceil(fraction * K) of
    #: the K-cohort delivered usable updates, else skip the round (global
    #: model kept, skip_reason recorded).  In async mode the fraction
    #: applies to the aggregation buffer size instead.
    quorum_fraction: float = 0.0
    # -- population scale (repro.fl.population) ------------------------------
    #: virtual fleet size; None = the eager roster (one Client per data
    #: shard).  When set, client ids live in [0, population_size) and map
    #: onto the n_clients data shards (id % n_clients); clients materialize
    #: lazily on first sampling, the default sampler becomes the O(K)
    #: PopulationSampler, and memory is O(touched clients).  Sync mode only;
    #: does not compose with adversaries or device profiles (both enumerate
    #: the fleet per client id).
    population_size: Optional[int] = None
    #: streaming aggregation block size: the server stages at most this many
    #: client rows while folding the weighted mean (peak O(block x P)
    #: instead of O(K x P)); byte-identical to dense aggregation for every
    #: value.  None = dense.  Robust rules that need the full stacked matrix
    #: (requires_full_matrix) reject this knob at build time.
    agg_block_size: Optional[int] = None
    #: heap budget (MiB) for lazily-created per-client flat strategy state
    #: before the population directory spills new state to mmap'd temp
    #: files; requires population_size.  None = heap only.
    state_mmap_mb: Optional[int] = None
    # -- observability (repro.obs) -------------------------------------------
    #: JSONL span-trace output path: nested round -> phase -> client-task
    #: spans with wall/virtual timings and payload byte counts.  None
    #: disables tracing — the engine then carries the shared no-op
    #: recorder, zero allocations on the hot path.
    trace: Optional[str] = None
    #: end-of-run metrics exposition path (Prometheus text format plus a
    #: commented summary table).  Either observability flag alone turns
    #: the metrics registry on.
    metrics_out: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", _as_pairs(self.overrides, "overrides"))
        object.__setattr__(
            self, "sampler_kwargs", _as_pairs(self.sampler_kwargs, "sampler_kwargs")
        )
        object.__setattr__(
            self, "aggregator_kwargs",
            _as_pairs(self.aggregator_kwargs, "aggregator_kwargs"),
        )
        object.__setattr__(
            self, "adversary_kwargs",
            _as_pairs(self.adversary_kwargs, "adversary_kwargs"),
        )
        object.__setattr__(
            self, "fault_kwargs", _as_pairs(self.fault_kwargs, "fault_kwargs")
        )
        object.__setattr__(
            self, "net_fault_kwargs",
            _as_pairs(self.net_fault_kwargs, "net_fault_kwargs"),
        )
        object.__setattr__(
            self, "net_codec_kwargs",
            _as_pairs(self.net_codec_kwargs, "net_codec_kwargs"),
        )
        # A knob that silently does nothing would change the experiment the
        # user believes they ran (same philosophy as from_dict's unknown-key
        # rejection), so mode-inapplicable fields are errors, not no-ops.
        if self.mode == "sync":
            if self.deadline_s is not None or self.buffer_size is not None:
                raise ValueError(
                    "deadline_s/buffer_size apply to the event-driven modes; "
                    "set mode='semisync' or 'async'"
                )
            if self.device_profile is None and self.heterogeneity != 1.0:
                raise ValueError(
                    "heterogeneity scales a device profile's compute speeds; "
                    "sync mode without device_profile has no profile to spread"
                )
        if self.aggregator == "mean" and self.aggregator_kwargs:
            raise ValueError(
                "aggregator_kwargs apply to a robust aggregation rule; the "
                "default 'mean' takes none — pick an aggregator"
            )
        if not 0.0 <= self.adversary_fraction <= 1.0:
            raise ValueError(
                f"adversary_fraction must be in [0, 1], got {self.adversary_fraction}"
            )
        if self.adversary is not None and self.adversary_fraction == 0.0:
            raise ValueError(
                f"adversary={self.adversary!r} with adversary_fraction=0 "
                "attacks nobody; set a positive fraction"
            )
        if self.adversary is None and self.adversary_fraction != 0.0:
            raise ValueError(
                "adversary_fraction without an adversary does nothing; "
                "set adversary= to an attack model"
            )
        if self.adversary is None and self.adversary_kwargs:
            raise ValueError(
                "adversary_kwargs without an adversary do nothing; "
                "set adversary= to an attack model"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )
        if self.fault is not None and self.fault_rate == 0.0:
            raise ValueError(
                f"fault={self.fault!r} with fault_rate=0 never fires; "
                "set a positive rate"
            )
        if self.fault is None and self.fault_rate != 0.0:
            raise ValueError(
                "fault_rate without a fault does nothing; set fault= to an "
                "injector name"
            )
        if self.fault is None and self.fault_kwargs:
            raise ValueError(
                "fault_kwargs without a fault do nothing; set fault= to an "
                "injector name"
            )
        if self.retry_backoff_base_s <= 0:
            raise ValueError(
                f"retry_backoff_base_s must be positive, got "
                f"{self.retry_backoff_base_s}"
            )
        if self.executor == "network":
            if self.mode != "sync":
                raise ValueError(
                    "the network executor runs synchronous rounds only; the "
                    "event-driven modes schedule on a virtual clock with no "
                    "socket backend"
                )
            if self.net_workers is not None and self.net_workers < 1:
                raise ValueError(
                    f"net_workers must be >= 1, got {self.net_workers}"
                )
            if self.net_connect_timeout_s <= 0:
                raise ValueError(
                    f"net_connect_timeout_s must be positive, got "
                    f"{self.net_connect_timeout_s}"
                )
            if self.net_heartbeat_s <= 0:
                raise ValueError(
                    f"net_heartbeat_s must be positive, got {self.net_heartbeat_s}"
                )
            if not 0.0 <= self.net_fault_rate <= 1.0:
                raise ValueError(
                    f"net_fault_rate must be in [0, 1], got {self.net_fault_rate}"
                )
            if self.net_fault is not None and self.net_fault_rate == 0.0:
                raise ValueError(
                    f"net_fault={self.net_fault!r} with net_fault_rate=0 never "
                    "fires; set a positive rate"
                )
            if self.net_fault is None and self.net_fault_rate != 0.0:
                raise ValueError(
                    "net_fault_rate without a net_fault does nothing; set "
                    "net_fault= to an injector name"
                )
            if self.net_fault is None and self.net_fault_kwargs:
                raise ValueError(
                    "net_fault_kwargs without a net_fault do nothing; set "
                    "net_fault= to an injector name"
                )
            # Mirrors repro.fl.net.coordinator.WIRE_CODECS without importing
            # the socket stack into every spec construction.
            if self.net_codec is not None and self.net_codec not in (
                "topk", "quantization"
            ):
                raise ValueError(
                    f"unknown net_codec {self.net_codec!r}; available: "
                    "['topk', 'quantization']"
                )
            if self.net_codec is None and self.net_codec_kwargs:
                raise ValueError(
                    "net_codec_kwargs without a net_codec do nothing; set "
                    "net_codec= to 'topk' or 'quantization'"
                )
        else:
            # Same philosophy as the mode checks above: a net_* knob on a
            # non-network executor would silently describe a run that never
            # happens.
            defaults = {
                "net_bind": "127.0.0.1:0", "net_workers": None,
                "net_connect_timeout_s": 20.0, "net_heartbeat_s": 0.5,
                "net_fault": None, "net_fault_rate": 0.0,
                "net_fault_kwargs": (), "net_codec": None,
                "net_codec_kwargs": (),
            }
            for name, default in defaults.items():
                if getattr(self, name) != default:
                    raise ValueError(
                        f"{name} applies to the network executor; set "
                        "executor='network'"
                    )
        if self.task_retries < 0:
            raise ValueError(
                f"task_retries must be >= 0, got {self.task_retries}"
            )
        if self.task_timeout_s is not None:
            if self.task_timeout_s <= 0:
                raise ValueError(
                    f"task_timeout_s must be positive, got {self.task_timeout_s}"
                )
            if self.fault is None:
                raise ValueError(
                    "task_timeout_s measures injected report delays; without "
                    "a fault no task can ever exceed it — set fault= (e.g. "
                    "'straggler')"
                )
        if not 0.0 <= self.quorum_fraction <= 1.0:
            raise ValueError(
                f"quorum_fraction must be in [0, 1], got {self.quorum_fraction}"
            )
        if self.agg_block_size is not None and self.agg_block_size < 1:
            raise ValueError(
                f"agg_block_size must be >= 1, got {self.agg_block_size}"
            )
        if self.state_mmap_mb is not None:
            if self.state_mmap_mb < 0:
                raise ValueError(
                    f"state_mmap_mb must be >= 0, got {self.state_mmap_mb}"
                )
            if self.population_size is None:
                raise ValueError(
                    "state_mmap_mb budgets the population directory's state "
                    "arena; set population_size"
                )
        if self.population_size is not None:
            if self.population_size < self.n_clients:
                raise ValueError(
                    f"population_size={self.population_size} smaller than the "
                    f"{self.n_clients} data shards it maps onto"
                )
            if self.mode != "sync":
                raise ValueError(
                    "population mode runs synchronous rounds only; the "
                    "event-driven modes enumerate per-client timings"
                )
            if self.adversary is not None:
                raise ValueError(
                    "population mode does not compose with adversaries: the "
                    "roster would be drawn over the whole population"
                )
            if self.device_profile is not None:
                raise ValueError(
                    "population mode does not compose with device profiles "
                    "(per-client system models enumerate the fleet)"
                )

    # ------------------------------------------------------------------
    # axes / serialization
    # ------------------------------------------------------------------
    def with_axis(self, name: str, value: Any) -> "ExperimentSpec":
        """Return a copy with one axis changed; unknown names go to the
        strategy overrides."""
        if name in self.__dataclass_fields__ and name not in ("overrides", "sampler_kwargs"):
            return replace(self, **{name: value})
        pairs = dict(self.overrides)
        pairs[name] = value
        return replace(self, overrides=tuple(sorted(pairs.items())))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; ``from_dict`` inverts it exactly."""
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["overrides"] = dict(self.overrides)
        d["sampler_kwargs"] = dict(self.sampler_kwargs)
        d["aggregator_kwargs"] = dict(self.aggregator_kwargs)
        d["adversary_kwargs"] = dict(self.adversary_kwargs)
        d["fault_kwargs"] = dict(self.fault_kwargs)
        d["net_fault_kwargs"] = dict(self.net_fault_kwargs)
        d["net_codec_kwargs"] = dict(self.net_codec_kwargs)
        return d

    # Legacy ``ExperimentCell`` spelling, kept for the sweep store.
    config_dict = to_dict

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys raise — a typo'd field silently ignored would change
        the experiment being run.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        return cls(**dict(payload))

    def cell_key(self) -> str:
        """Stable 16-hex-digit content hash of this spec.

        Shared with :meth:`repro.io.persistence.ExperimentStore.key` so a
        sweep store written by one runner is readable by any other.

        The observability outputs (``trace`` / ``metrics_out``) do not
        participate: where a run writes its spans does not change the
        experiment being run, and existing store keys stay stable.  The
        network *topology* knobs (bind address, fleet size, timeouts,
        heartbeat cadence) are excluded for the same reason — the
        determinism contract says they cannot change the History.  The
        behavior-bearing network knobs (``net_fault*``, ``net_codec*``,
        ``retry_backoff_base_s``) stay in: an injected partition or a lossy
        codec is a different experiment.
        """
        d = self.to_dict()
        d.pop("trace")
        d.pop("metrics_out")
        d.pop("net_bind")
        d.pop("net_workers")
        d.pop("net_connect_timeout_s")
        d.pop("net_heartbeat_s")
        return ExperimentStore.key(d)

    # ------------------------------------------------------------------
    # builders — the one place run construction logic lives
    # ------------------------------------------------------------------
    def partition_kwargs(self) -> Dict[str, Any]:
        kwargs: Dict[str, Any] = {}
        if self.partition == "dirichlet" and self.alpha is not None:
            kwargs["alpha"] = self.alpha
        elif self.partition == "orthogonal":
            kwargs["n_clusters"] = self.n_clusters
        return kwargs

    def build_data(self):
        """Materialize the partitioned federated dataset."""
        return build_federated_data(
            self.dataset,
            n_clients=self.n_clients,
            partition=self.partition,
            seed=self.seed,
            samples_per_client=self.samples_per_client,
            feature_skew=self.feature_skew,
            **self.partition_kwargs(),
        )

    def build_config(self) -> FLConfig:
        return FLConfig(
            rounds=self.rounds,
            n_clients=self.n_clients,
            clients_per_round=self.clients_per_round,
            batch_size=self.batch_size,
            local_epochs=self.local_epochs,
            lr=self.lr,
            momentum=self.momentum,
            optimizer=self.optimizer,
            eval_every=self.eval_every,
            eval_batch_size=self.eval_batch_size,
            seed=self.seed,
            target_accuracy=self.target_accuracy,
            max_grad_norm=self.max_grad_norm,
        )

    def build_strategy(self):
        return build_strategy(
            self.method, model=self.model, dataset=self.dataset, **dict(self.overrides)
        )

    def build_sampler(self):
        """The client-selection policy, or ``None`` to let the engine pick
        its default (uniform K-of-N; the O(K) population sampler when a
        population is set — a ``UniformSampler`` over 10⁶ ids would pay an
        O(N) permutation per round)."""
        if self.population_size is not None:
            if self.sampler == "uniform":
                return None
            return build_sampler(
                self.sampler,
                n_clients=self.population_size,
                clients_per_round=self.clients_per_round,
                seed=self.seed,
                **dict(self.sampler_kwargs),
            )
        return build_sampler(
            self.sampler,
            n_clients=self.n_clients,
            clients_per_round=self.clients_per_round,
            seed=self.seed,
            **dict(self.sampler_kwargs),
        )

    def build_population(self):
        """The virtual :class:`~repro.fl.population.Population`, or ``None``
        for the eager roster."""
        if self.population_size is None:
            return None
        from repro.fl.population import Population

        return Population(self.population_size, n_shards=self.n_clients)

    def build_aggregator(self):
        """The robust aggregation rule, or ``None`` for the default mean.

        Returning ``None`` (rather than a ``MeanAggregator``) keeps the
        legacy ``strategy.aggregate`` path — and its byte-identical
        histories — completely untouched when no robust rule is requested.
        """
        if self.aggregator == "mean":
            return None
        from repro.fl.robust import build_aggregator

        return build_aggregator(self.aggregator, **dict(self.aggregator_kwargs))

    def build_adversary(self):
        """The seeded adversary model, or ``None`` when no attack is set."""
        if self.adversary is None:
            return None
        from repro.fl.robust import build_adversary

        return build_adversary(
            self.adversary,
            n_clients=self.n_clients,
            fraction=self.adversary_fraction,
            seed=self.seed,
            **dict(self.adversary_kwargs),
        )

    def build_fault_injector(self):
        """The seeded fault injector, or ``None`` when no fault is set."""
        if self.fault is None:
            return None
        from repro.fl.faults import build_fault

        return build_fault(
            self.fault,
            rate=self.fault_rate,
            seed=self.seed,
            **dict(self.fault_kwargs),
        )

    def build_net_options(self) -> Optional[Dict[str, Any]]:
        """Everything the ``network`` executor factory needs, or ``None``
        for every other backend.

        Includes :meth:`cell_key` because the engine does not otherwise
        know its spec at executor-build time — the coordinator uses it to
        refuse worker processes aimed at a different experiment.
        """
        if self.executor != "network":
            return None
        injector = None
        if self.net_fault is not None:
            from repro.fl.net.netfaults import build_netfault

            injector = build_netfault(
                self.net_fault,
                rate=self.net_fault_rate,
                seed=self.seed,
                **dict(self.net_fault_kwargs),
            )
        return {
            "bind": self.net_bind,
            "net_workers": self.net_workers,
            "connect_timeout_s": self.net_connect_timeout_s,
            "heartbeat_s": self.net_heartbeat_s,
            "injector": injector,
            "codec": self.net_codec,
            "codec_kwargs": dict(self.net_codec_kwargs),
            "cell_key": self.cell_key(),
        }

    def build_recorder(self):
        """The live :class:`repro.obs.Recorder`, or ``None`` when both
        observability outputs are unset (the engine then keeps the shared
        no-op recorder and the hot path allocates nothing)."""
        if self.trace is None and self.metrics_out is None:
            return None
        from repro.obs import Recorder

        return Recorder.create(trace_path=self.trace, metrics_path=self.metrics_out)

    def build_system_model(self, default: Optional[str] = None) -> Optional[SystemModel]:
        """The device/network model implied by ``device_profile``.

        ``default`` supplies a preset when the spec leaves the profile
        unset (the event-driven modes need one); returns ``None`` when
        both are unset — sync runs then skip virtual-time accounting.
        """
        profile = self.device_profile if self.device_profile is not None else default
        if profile is None:
            return None
        return SystemModel(
            profile,
            n_clients=self.n_clients,
            heterogeneity=self.heterogeneity,
            seed=self.seed,
        )
