"""Experiment persistence: histories, checkpoints, experiment manifests."""

from repro.io.persistence import (
    save_history,
    load_history,
    save_checkpoint,
    load_checkpoint,
    ExperimentStore,
)

__all__ = [
    "save_history",
    "load_history",
    "save_checkpoint",
    "load_checkpoint",
    "ExperimentStore",
]
