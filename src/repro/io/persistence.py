"""Saving and loading experiment artifacts.

* Histories serialize to JSON (human-diffable, cite-able from docs).
* Model checkpoints serialize to ``.npz`` via the state dict (exact
  float32 round-trip).
* :class:`ExperimentStore` organizes a directory of runs keyed by a
  config-derived name, so sweeps can resume / skip completed cells.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

import numpy as np

from repro.fl.history import History
from repro.fl.types import RoundRecord

__all__ = [
    "save_history",
    "load_history",
    "save_checkpoint",
    "load_checkpoint",
    "ExperimentStore",
]


def save_history(history: History, path: str) -> str:
    """Write a history to JSON; returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(history.to_dict(), fh, indent=2)
    return path


def load_history(path: str) -> History:
    """Read a history written by :func:`save_history`."""
    with open(path) as fh:
        payload = json.load(fh)
    hist = History(stop_reason=payload.get("stop_reason"))
    for rec in payload["records"]:
        hist.append(
            RoundRecord(
                round_idx=int(rec["round"]),
                selected=list(rec["selected"]),
                test_accuracy=rec["test_accuracy"],
                test_loss=rec["test_loss"],
                mean_train_loss=float(rec["mean_train_loss"]),
                cumulative_flops=float(rec["cumulative_flops"]),
                cumulative_comm_bytes=float(rec["cumulative_comm_bytes"]),
                wall_seconds=float(rec["wall_seconds"]),
                # Virtual-clock fields postdate the format; old files omit them.
                virtual_time_s=rec.get("virtual_time_s"),
                update_staleness=rec.get("update_staleness"),
                # Aggregation-health fields postdate the format too.
                dropped_clients=list(rec.get("dropped_clients", [])),
                screened_clients=list(rec.get("screened_clients", [])),
                adversary_clients=rec.get("adversary_clients"),
                round_skipped=bool(rec.get("round_skipped", False)),
                # Per-phase wall breakdown postdates the format as well.
                phase_seconds=rec.get("phase_seconds"),
            )
        )
    return hist


def save_checkpoint(model, path: str, metadata: Optional[Dict] = None) -> str:
    """Write a model's state dict (plus optional JSON metadata) to .npz."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    state = model.state_dict()
    arrays = {f"param/{k}": v for k, v in state.items()}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    return path if path.endswith(".npz") else path + ".npz"


def load_checkpoint(model, path: str) -> Dict:
    """Load weights saved by :func:`save_checkpoint`; returns the metadata."""
    with np.load(path) as data:
        state = {
            k[len("param/"):]: data[k] for k in data.files if k.startswith("param/")
        }
        meta_bytes = bytes(data["__meta__"].tobytes()) if "__meta__" in data.files else b"{}"
    model.load_state_dict(state)
    return json.loads(meta_bytes.decode("utf-8"))


class ExperimentStore:
    """A directory of named runs with config-hash deduplication.

    >>> store = ExperimentStore("runs/")
    >>> key = store.key({"method": "fedtrip", "mu": 0.4, "seed": 0})
    >>> if not store.has(key):
    ...     hist = run_experiment(...)
    ...     store.put(key, hist, config)
    >>> hist = store.get(key)
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    @staticmethod
    def key(config: Dict) -> str:
        """Stable short hash of a JSON-serializable config dict."""
        blob = json.dumps(config, sort_keys=True, default=str).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=8).hexdigest()

    def _paths(self, key: str):
        return (
            os.path.join(self.root, f"{key}.history.json"),
            os.path.join(self.root, f"{key}.config.json"),
        )

    def has(self, key: str) -> bool:
        return os.path.exists(self._paths(key)[0])

    def put(self, key: str, history: History, config: Optional[Dict] = None) -> None:
        hist_path, cfg_path = self._paths(key)
        save_history(history, hist_path)
        with open(cfg_path, "w") as fh:
            json.dump(config or {}, fh, indent=2, default=str)

    def get(self, key: str) -> History:
        if not self.has(key):
            raise KeyError(f"no run stored under {key!r}")
        return load_history(self._paths(key)[0])

    def config(self, key: str) -> Dict:
        _, cfg_path = self._paths(key)
        with open(cfg_path) as fh:
            return json.load(fh)

    def keys(self):
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".history.json"):
                yield name[: -len(".history.json")]
