"""Saving and loading experiment artifacts.

* Histories serialize to JSON (human-diffable, cite-able from docs).
* Model checkpoints serialize to ``.npz`` via the state dict (exact
  float32 round-trip).
* Engine snapshots (:func:`save_engine_snapshot`) pickle the full
  crash-safe resume state produced by ``Engine.snapshot()``.
* :class:`ExperimentStore` organizes a directory of runs keyed by a
  config-derived name, so sweeps can resume / skip completed cells.

Every writer here is **atomic**: payloads land in a ``*.tmp`` sibling
first and are published with ``os.replace``, so a reader (or a resumed
run) never observes a half-written file even if the writer is killed
mid-write.  That is the property the crash-safe resume contract leans
on — ``latest.ckpt`` is either the previous complete snapshot or the
next complete snapshot, never a torn hybrid.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, Dict, Optional

import numpy as np

from repro.fl.history import History
from repro.fl.types import RoundRecord

__all__ = [
    "atomic_write_bytes",
    "save_history",
    "load_history",
    "save_checkpoint",
    "load_checkpoint",
    "save_engine_snapshot",
    "load_engine_snapshot",
    "ExperimentStore",
]


def _atomic_publish(tmp_path: str, path: str) -> None:
    """Move a fully-written temp file into place (atomic on POSIX)."""
    os.replace(tmp_path, path)


def _atomic_write_bytes(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via a ``*.tmp`` sibling + ``os.replace``."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        _atomic_publish(tmp, path)
    except BaseException:
        # Leave no droppings on the failure path (including KeyboardInterrupt
        # mid-write — the whole point of the exercise).
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


#: public spelling of the tmp+fsync+``os.replace`` writer — the one
#: crash-safe write primitive every subsystem (histories, checkpoints,
#: metrics exposition, span traces) routes through.
atomic_write_bytes = _atomic_write_bytes


def save_history(history: History, path: str) -> str:
    """Write a history to JSON (atomically); returns the path."""
    blob = json.dumps(history.to_dict(), indent=2).encode("utf-8")
    _atomic_write_bytes(path, blob)
    return path


def load_history(path: str) -> History:
    """Read a history written by :func:`save_history`."""
    with open(path) as fh:
        payload = json.load(fh)
    hist = History(stop_reason=payload.get("stop_reason"))
    for rec in payload["records"]:
        hist.append(
            RoundRecord(
                round_idx=int(rec["round"]),
                selected=list(rec["selected"]),
                test_accuracy=rec["test_accuracy"],
                test_loss=rec["test_loss"],
                mean_train_loss=float(rec["mean_train_loss"]),
                cumulative_flops=float(rec["cumulative_flops"]),
                cumulative_comm_bytes=float(rec["cumulative_comm_bytes"]),
                wall_seconds=float(rec["wall_seconds"]),
                # Virtual-clock fields postdate the format; old files omit them.
                virtual_time_s=rec.get("virtual_time_s"),
                update_staleness=rec.get("update_staleness"),
                # Aggregation-health fields postdate the format too.
                dropped_clients=list(rec.get("dropped_clients", [])),
                screened_clients=list(rec.get("screened_clients", [])),
                adversary_clients=rec.get("adversary_clients"),
                round_skipped=bool(rec.get("round_skipped", False)),
                # Per-phase wall breakdown postdates the format as well.
                phase_seconds=rec.get("phase_seconds"),
                # Fault-tolerance fields postdate the format as well.
                failed_clients=list(rec.get("failed_clients", [])),
                retried_clients=list(rec.get("retried_clients", [])),
                skip_reason=rec.get("skip_reason"),
            )
        )
    return hist


def save_checkpoint(model, path: str, metadata: Optional[Dict] = None) -> str:
    """Write a model's state dict (plus optional JSON metadata) to .npz.

    Atomic: ``np.savez`` targets a temp file which is then renamed over
    ``path``.  (``savez`` appends ``.npz`` when the target lacks the
    suffix, so the temp path carries it explicitly.)
    """
    final = path if path.endswith(".npz") else path + ".npz"
    os.makedirs(os.path.dirname(final) or ".", exist_ok=True)
    state = model.state_dict()
    arrays = {f"param/{k}": v for k, v in state.items()}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    tmp = final + ".tmp.npz"
    try:
        np.savez(tmp, **arrays)
        _atomic_publish(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def load_checkpoint(model, path: str) -> Dict:
    """Load weights saved by :func:`save_checkpoint`; returns the metadata."""
    with np.load(path) as data:
        state = {
            k[len("param/"):]: data[k] for k in data.files if k.startswith("param/")
        }
        meta_bytes = bytes(data["__meta__"].tobytes()) if "__meta__" in data.files else b"{}"
    model.load_state_dict(state)
    return json.loads(meta_bytes.decode("utf-8"))


def save_engine_snapshot(path: str, snapshot: Dict[str, Any]) -> str:
    """Persist an ``Engine.snapshot()`` dict (atomically); returns the path.

    The snapshot is an opaque pickle: it mixes numpy arrays, per-client
    strategy state trees and plain history records, and is only ever read
    back by :func:`load_engine_snapshot` on the same codebase.
    """
    blob = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    _atomic_write_bytes(path, blob)
    return path


def load_engine_snapshot(path: str) -> Dict[str, Any]:
    """Read a snapshot written by :func:`save_engine_snapshot`."""
    with open(path, "rb") as fh:
        return pickle.load(fh)


class ExperimentStore:
    """A directory of named runs with config-hash deduplication.

    >>> store = ExperimentStore("runs/")
    >>> key = store.key({"method": "fedtrip", "mu": 0.4, "seed": 0})
    >>> if not store.has(key):
    ...     hist = run_experiment(...)
    ...     store.put(key, hist, config)
    >>> hist = store.get(key)
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    @staticmethod
    def key(config: Dict) -> str:
        """Stable short hash of a JSON-serializable config dict."""
        blob = json.dumps(config, sort_keys=True, default=str).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=8).hexdigest()

    def _paths(self, key: str):
        return (
            os.path.join(self.root, f"{key}.history.json"),
            os.path.join(self.root, f"{key}.config.json"),
        )

    def has(self, key: str) -> bool:
        return os.path.exists(self._paths(key)[0])

    def put(self, key: str, history: History, config: Optional[Dict] = None) -> None:
        hist_path, cfg_path = self._paths(key)
        save_history(history, hist_path)
        blob = json.dumps(config or {}, indent=2, default=str).encode("utf-8")
        _atomic_write_bytes(cfg_path, blob)

    def get(self, key: str) -> History:
        if not self.has(key):
            raise KeyError(f"no run stored under {key!r}")
        return load_history(self._paths(key)[0])

    def config(self, key: str) -> Dict:
        _, cfg_path = self._paths(key)
        with open(cfg_path) as fh:
            return json.load(fh)

    def keys(self):
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".history.json"):
                yield name[: -len(".history.json")]
