"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``     train one (dataset, model, method) cell and print/save metrics
``compare``   train several methods on one workload and print a comparison
``partition`` show the client label distribution of a partition (Fig. 4)
``profile``   print Table II/III-style dataset & model statistics
``theory``    evaluate the Theorem 1 quantities for given hyperparameters

Every training command builds one :class:`~repro.api.spec.ExperimentSpec`
from its flags and hands it to :func:`~repro.api.engine.run_experiment` —
the CLI owns no run-construction logic of its own.  Client sampling is
pluggable via ``--sampler`` (see :mod:`repro.api.registry`), e.g.::

    python -m repro train --method fedtrip --sampler dropout \
        --sampler-arg dropout=0.2 --target-accuracy 85
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis import compare_fedprox_fedtrip, expected_xi
from repro.api import (
    ExperimentSpec,
    available_adversaries,
    available_aggregators,
    available_executors,
    available_modes,
    available_samplers,
    run_experiment,
)
from repro.fl.faults import available_faults
from repro.fl.systems import NETWORK_PRESETS
from repro.data import available_datasets, get_spec, heterogeneity_summary
from repro.io import save_history
from repro.models import available_models, build_model, profile_model

__all__ = ["main", "build_parser"]


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="mini_mnist", choices=available_datasets())
    p.add_argument("--model", default="cnn", choices=available_models())
    p.add_argument("--partition", default="dirichlet",
                   choices=["iid", "dirichlet", "orthogonal"])
    p.add_argument("--alpha", type=float, default=0.5, help="Dirichlet concentration")
    p.add_argument("--clusters", type=int, default=5, help="orthogonal cluster count")
    p.add_argument("--clients", type=int, default=10)
    p.add_argument("--clients-per-round", type=int, default=4)
    p.add_argument("--rounds", type=int, default=30)
    p.add_argument("--batch-size", type=int, default=50)
    p.add_argument("--local-epochs", type=int, default=1)
    p.add_argument("--lr", type=float, default=0.03)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sampler", default="uniform", choices=available_samplers(),
                   help="client-selection policy")
    p.add_argument("--sampler-arg", action="append", default=[], metavar="KEY=VALUE",
                   help="policy parameter, repeatable (e.g. dropout=0.2)")
    p.add_argument("--executor", default="auto", choices=available_executors(),
                   help="execution backend (auto = serial at 1 worker, "
                        "threaded above; 'process' trains clients in a "
                        "multiprocessing pool with shared-memory broadcast)")
    p.add_argument("--workers", "--n-workers", type=int, default=1, dest="workers",
                   help="worker count for the pooled backends")
    p.add_argument("--mode", default="sync", choices=available_modes(),
                   help="server mode: sync barrier rounds, semisync "
                        "deadline/buffer rounds, or async staleness-decayed "
                        "mixing (the latter two on the virtual-clock event "
                        "scheduler)")
    p.add_argument("--deadline-s", type=float, default=None, dest="deadline_s",
                   help="semisync round deadline in simulated seconds "
                        "(default: wait for the full buffer)")
    p.add_argument("--buffer-size", type=int, default=None, dest="buffer_size",
                   help="aggregation buffer size K (default: 1 in async, "
                        "clients-per-round in semisync)")
    p.add_argument("--device-profile", default=None, dest="device_profile",
                   choices=sorted(NETWORK_PRESETS),
                   help="device/network preset pricing simulated time "
                        "(records virtual_time_s; async/semisync default "
                        "to wifi when unset)")
    p.add_argument("--heterogeneity", type=float, default=1.0,
                   help="compute-speed spread h >= 1: clients run at a "
                        "seeded factor in [1/h, 1] of the profile speed "
                        "(the straggler knob)")
    p.add_argument("--aggregator", default="mean",
                   choices=available_aggregators(),
                   help="server aggregation rule: 'mean' is the default "
                        "weighted average; the others are Byzantine-robust "
                        "reductions over the stacked client matrix "
                        "(see repro.fl.robust)")
    p.add_argument("--aggregator-arg", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="aggregation-rule parameter, repeatable "
                        "(e.g. beta=0.25 for trimmed_mean, f=2 for krum)")
    p.add_argument("--adversary", default=None,
                   choices=available_adversaries(),
                   help="Byzantine attack model corrupting a seeded subset "
                        "of clients (requires --adversary-fraction > 0)")
    p.add_argument("--adversary-fraction", type=float, default=0.0,
                   dest="adversary_fraction",
                   help="fraction of clients acting maliciously (f/K)")
    p.add_argument("--adversary-arg", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="attack parameter, repeatable (e.g. gamma=5 for "
                        "sign_flip/scale, sigma=0.5 for gauss_noise)")
    p.add_argument("--fault", default=None, choices=available_faults(),
                   help="deterministic fault injector applied to client "
                        "tasks (requires --fault-rate > 0); see "
                        "repro.fl.faults")
    p.add_argument("--fault-rate", type=float, default=0.0, dest="fault_rate",
                   help="per-(client, round, attempt) probability that the "
                        "injector fires")
    p.add_argument("--fault-arg", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="fault parameter, repeatable (e.g. mode=truncate "
                        "for corrupt, max_delay_s=30 for straggler)")
    p.add_argument("--task-retries", type=int, default=0, dest="task_retries",
                   help="retry budget per client task; retries are re-drawn "
                        "fault coins and re-priced on the virtual clock "
                        "with exponential backoff")
    p.add_argument("--task-timeout-s", type=float, default=None,
                   dest="task_timeout_s",
                   help="injected report delays beyond this many simulated "
                        "seconds count as task timeouts (requires --fault)")
    p.add_argument("--quorum-fraction", type=float, default=0.0,
                   dest="quorum_fraction",
                   help="skip aggregation (recording why) when fewer than "
                        "this fraction of the cohort reports successfully")
    p.add_argument("--retry-backoff-base-s", type=float, default=1.0,
                   dest="retry_backoff_base_s",
                   help="base of the exponential retry backoff curve in "
                        "simulated seconds (also paces network-worker "
                        "reconnects); default 1.0 matches the historical "
                        "constant")
    p.add_argument("--net-bind", default="127.0.0.1:0", dest="net_bind",
                   metavar="HOST:PORT",
                   help="coordinator listen address for --executor network; "
                        "port 0 picks an ephemeral port, loopback hosts "
                        "spawn worker subprocesses automatically")
    p.add_argument("--net-workers", type=int, default=None, dest="net_workers",
                   help="worker connections the network round waits for "
                        "(default: --workers)")
    p.add_argument("--net-connect-timeout-s", type=float, default=20.0,
                   dest="net_connect_timeout_s",
                   help="network registration patience / per-task wall-clock "
                        "ceiling in seconds")
    p.add_argument("--net-heartbeat-s", type=float, default=0.5,
                   dest="net_heartbeat_s",
                   help="worker liveness beacon cadence in seconds")
    p.add_argument("--net-fault", default=None, dest="net_fault",
                   help="deterministic wire fault for --executor network "
                        "(drop_frame | duplicate_frame | delay_frame | "
                        "truncate_frame | partition); requires "
                        "--net-fault-rate > 0")
    p.add_argument("--net-fault-rate", type=float, default=0.0,
                   dest="net_fault_rate",
                   help="per-frame probability that the wire fault fires")
    p.add_argument("--net-fault-arg", action="append", default=[],
                   metavar="KEY=VALUE", dest="net_fault_arg",
                   help="wire-fault parameter, repeatable (e.g. "
                        "max_delay_s=0.5 for delay_frame)")
    p.add_argument("--net-codec", default=None, dest="net_codec",
                   help="upload wire codec for --executor network (topk | "
                        "quantization); lossy, trades byte-identity for "
                        "bytes on the wire")
    p.add_argument("--net-codec-arg", action="append", default=[],
                   metavar="KEY=VALUE", dest="net_codec_arg",
                   help="codec parameter, repeatable (e.g. fraction=0.05 "
                        "for topk, bits=8 for quantization)")
    p.add_argument("--population-size", type=int, default=None,
                   dest="population_size",
                   help="virtual fleet size: client ids in [0, N) map onto "
                        "the --clients data shards and materialize lazily "
                        "(memory stays O(cohort), not O(N))")
    p.add_argument("--agg-block-size", type=int, default=None,
                   dest="agg_block_size",
                   help="stream aggregation in blocks of this many client "
                        "rows (peak O(block x P) instead of O(K x P)); "
                        "byte-identical to dense for any value")
    p.add_argument("--state-mmap-mb", type=int, default=None,
                   dest="state_mmap_mb",
                   help="heap budget (MiB) for lazy per-client strategy "
                        "state before spilling to mmap'd temp files "
                        "(requires --population-size)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a JSONL span trace (round -> phase -> "
                        "client-task, wall + virtual timings, payload "
                        "bytes) to PATH; off by default with zero "
                        "hot-path overhead")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   metavar="PATH",
                   help="write end-of-run metrics (Prometheus text "
                        "exposition plus a commented summary table) to "
                        "PATH")


def _parse_value(text: str) -> Any:
    """KEY=VALUE values: JSON first (numbers, lists, booleans), else string."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_kv(pairs: List[str]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"expected KEY=VALUE, got {pair!r}")
        out[key] = _parse_value(value)
    return out


def _spec_from_args(args, method: Optional[str] = None,
                    mu: Optional[float] = None) -> ExperimentSpec:
    return ExperimentSpec(
        dataset=args.dataset,
        model=args.model,
        method=method if method is not None else args.method,
        partition=args.partition,
        alpha=args.alpha,
        n_clusters=args.clusters,
        n_clients=args.clients,
        clients_per_round=args.clients_per_round,
        rounds=args.rounds,
        batch_size=args.batch_size,
        local_epochs=args.local_epochs,
        lr=args.lr,
        seed=args.seed,
        target_accuracy=getattr(args, "target_accuracy", None),
        overrides={} if mu is None else {"mu": mu},
        sampler=args.sampler,
        sampler_kwargs=_parse_kv(args.sampler_arg),
        n_workers=args.workers,
        executor=args.executor,
        mode=args.mode,
        deadline_s=args.deadline_s,
        buffer_size=args.buffer_size,
        device_profile=args.device_profile,
        heterogeneity=args.heterogeneity,
        aggregator=args.aggregator,
        aggregator_kwargs=_parse_kv(args.aggregator_arg),
        adversary=args.adversary,
        adversary_fraction=args.adversary_fraction,
        adversary_kwargs=_parse_kv(args.adversary_arg),
        fault=getattr(args, "fault", None),
        fault_rate=getattr(args, "fault_rate", 0.0),
        fault_kwargs=_parse_kv(getattr(args, "fault_arg", [])),
        task_retries=getattr(args, "task_retries", 0),
        task_timeout_s=getattr(args, "task_timeout_s", None),
        quorum_fraction=getattr(args, "quorum_fraction", 0.0),
        retry_backoff_base_s=getattr(args, "retry_backoff_base_s", 1.0),
        net_bind=getattr(args, "net_bind", "127.0.0.1:0"),
        net_workers=getattr(args, "net_workers", None),
        net_connect_timeout_s=getattr(args, "net_connect_timeout_s", 20.0),
        net_heartbeat_s=getattr(args, "net_heartbeat_s", 0.5),
        net_fault=getattr(args, "net_fault", None),
        net_fault_rate=getattr(args, "net_fault_rate", 0.0),
        net_fault_kwargs=_parse_kv(getattr(args, "net_fault_arg", [])),
        net_codec=getattr(args, "net_codec", None),
        net_codec_kwargs=_parse_kv(getattr(args, "net_codec_arg", [])),
        population_size=getattr(args, "population_size", None),
        agg_block_size=getattr(args, "agg_block_size", None),
        state_mmap_mb=getattr(args, "state_mmap_mb", None),
        trace=getattr(args, "trace", None),
        metrics_out=getattr(args, "metrics_out", None),
    )


def cmd_train(args) -> int:
    spec = _spec_from_args(args, mu=args.mu)
    callbacks = []
    if args.checkpoint_dir:
        from repro.api.callbacks import Checkpointer

        callbacks.append(
            Checkpointer(
                args.checkpoint_dir,
                every=args.checkpoint_every,
                engine_state=True,
            )
        )
    hist = run_experiment(spec, callbacks=callbacks, resume_from=args.resume_from)
    print(f"method={spec.method} dataset={spec.dataset} model={spec.model} "
          f"sampler={spec.sampler}")
    if spec.aggregator != "mean" or spec.adversary is not None:
        print(f"aggregator={spec.aggregator} adversary={spec.adversary} "
              f"fraction={spec.adversary_fraction}")
    if hist.stop_reason:
        print(f"stopped early after {len(hist)} rounds: {hist.stop_reason}")
    print(f"best accuracy : {hist.best_accuracy():.2f}%")
    if args.target is not None:
        print(f"rounds to {args.target}%: {hist.rounds_to_accuracy(args.target)}")
    print(f"total GFLOPs  : {hist.total_gflops():.3f}")
    print(f"total comm MB : {hist.total_comm_mb():.2f}")
    skipped = hist.skipped_rounds()
    dropped = hist.dropped_client_ids()
    screened = hist.screened_client_ids()
    if skipped or dropped or screened:
        print(f"agg health    : {skipped} skipped round(s), "
              f"{len(dropped)} dropped, {len(screened)} screened update(s)")
    failed = hist.failed_client_ids()
    retried = hist.retried_client_ids()
    if failed or retried:
        print(f"fault policy  : {len(retried)} retry dispatch(es), "
              f"{len(failed)} terminal task failure(s)")
    simulated = [r.virtual_time_s for r in hist.records if r.virtual_time_s is not None]
    if simulated:
        print(f"simulated time: {simulated[-1] / 3600.0:.3f} h "
              f"(mode={spec.mode}, profile={spec.device_profile or 'wifi'})")
    if args.trace:
        print(f"span trace written to {args.trace}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if args.out:
        save_history(hist, args.out)
        print(f"history saved to {args.out}")
    return 0


def cmd_compare(args) -> int:
    rows = []
    for method in args.methods:
        hist = run_experiment(_spec_from_args(args, method=method))
        r = hist.rounds_to_accuracy(args.target) if args.target else None
        rows.append((method, hist.best_accuracy(),
                     hist.final_accuracy_stats(last_k=5)["mean"],
                     r, hist.total_gflops()))
        print(f"done {method}")
    print(f"\n{'method':>10} {'best %':>8} {'final5 %':>9} {'rounds':>7} {'GFLOPs':>9}")
    for method, best, final, r, gf in sorted(rows, key=lambda x: -x[2]):
        print(f"{method:>10} {best:>8.2f} {final:>9.2f} "
              f"{str(r) if r is not None else '-':>7} {gf:>9.3f}")
    return 0


def cmd_partition(args) -> int:
    data = _spec_from_args(args, method="fedavg").build_data()
    counts = data.label_counts()
    print(f"{args.partition} partition of {args.dataset} over {args.clients} clients")
    for k, row in enumerate(counts):
        print(f"  client {k:>2}: {row.tolist()}")
    print(json.dumps(heterogeneity_summary(counts), indent=2))
    return 0


def cmd_profile(args) -> int:
    from repro.models import format_layer_summary

    spec = get_spec(args.dataset)
    print("dataset:", json.dumps(spec.table2_row(), indent=2))
    model = build_model(args.model, spec.input_shape, spec.num_classes)
    print("model:", json.dumps(profile_model(model).table3_row(), indent=2))
    print()
    print(format_layer_summary(model))
    return 0


def cmd_theory(args) -> int:
    cmp = compare_fedprox_fedtrip(mu=args.mu, L=args.L, B=args.B,
                                  participation_rate=args.p)
    print(json.dumps(cmp.summary(), indent=2))
    print(f"E[xi]({args.p}) = {expected_xi(args.p):.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="train one method")
    _add_workload_args(p)
    p.add_argument("--method", default="fedtrip")
    p.add_argument("--mu", type=float, default=None)
    p.add_argument("--target", type=float, default=None,
                   help="report rounds-to-target-accuracy (no early stop)")
    p.add_argument("--target-accuracy", type=float, default=None, dest="target_accuracy",
                   help="stop training once this test accuracy %% is reached")
    p.add_argument("--out", default=None, help="save history JSON here")
    p.add_argument("--checkpoint-dir", default=None, dest="checkpoint_dir",
                   help="write model checkpoints plus a crash-safe engine "
                        "snapshot (latest.ckpt) into this directory")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   dest="checkpoint_every",
                   help="checkpoint every N rounds (default: only at the end)")
    p.add_argument("--resume-from", default=None, dest="resume_from",
                   metavar="SNAPSHOT",
                   help="resume from an engine snapshot (latest.ckpt); the "
                        "spec must describe the same experiment cell")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("compare", help="train several methods")
    _add_workload_args(p)
    p.add_argument("--methods", nargs="+",
                   default=["fedtrip", "fedavg", "fedprox", "moon"])
    p.add_argument("--target", type=float, default=None)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("partition", help="inspect a client partition")
    _add_workload_args(p)
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("profile", help="dataset/model statistics")
    p.add_argument("--dataset", default="mnist", choices=available_datasets())
    p.add_argument("--model", default="cnn", choices=available_models())
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("theory", help="Theorem 1 quantities")
    p.add_argument("--mu", type=float, default=6.0)
    p.add_argument("--L", type=float, default=1.0)
    p.add_argument("--B", type=float, default=1.0)
    p.add_argument("--p", type=float, default=0.4)
    p.set_defaults(func=cmd_theory)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
