"""Resource accounting: the cost side of "resource-efficient" FL."""

from repro.costs.accounting import (
    WorkloadShape,
    attach_overhead_flops,
    comm_overhead_units,
    round_training_flops,
    table8_row,
    TABLE8_FORMULAS,
)

__all__ = [
    "WorkloadShape",
    "attach_overhead_flops",
    "comm_overhead_units",
    "round_training_flops",
    "table8_row",
    "TABLE8_FORMULAS",
]
