"""Analytic per-method resource accounting (Appendix A, Table VIII).

Notation from the paper: ``K`` local iterations per round, ``M`` batch size,
``n`` local data samples, ``|w|`` model parameters, ``FP``/``BP`` the
forward/backward cost of a single sample, and ``p`` the number of history
models MOON carries (1 in all experiments).

Two views are provided:

* :func:`attach_overhead_flops` — the closed-form Table VIII computation
  row evaluated for a concrete model/workload;
* :func:`comm_overhead_units` — the Table VIII communication row (in units
  of ``|w|`` beyond the standard down+up model exchange);
* :func:`round_training_flops` — total per-client round cost including the
  base ``n (FP + BP)`` training work, used by Table V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.models.profile import ModelProfile

__all__ = [
    "WorkloadShape",
    "attach_overhead_flops",
    "comm_overhead_units",
    "round_training_flops",
    "table8_row",
    "TABLE8_FORMULAS",
]

#: Human-readable Table VIII formulas, exactly as printed in the paper.
TABLE8_FORMULAS: Dict[str, Dict[str, str]] = {
    "scaffold": {"computation": "2(K+1)|w| + n(FP+BP)", "communication": "2|w|"},
    "mimelite": {"computation": "n(FP+BP)", "communication": "2|w|"},
    "moon": {"computation": "K(M(1+p)FP)", "communication": "0"},
    "fedprox": {"computation": "2K|w|", "communication": "0"},
    "feddyn": {"computation": "4K|w|", "communication": "0"},
    "fedtrip": {"computation": "4K|w|", "communication": "0"},
    "fedavg": {"computation": "0", "communication": "0"},
    "slowmo": {"computation": "2|w| (server)", "communication": "0"},
    "feddane": {"computation": "4K|w| + n(FP+BP)", "communication": "2|w|"},
    "fedgkd": {"computation": "K M FP", "communication": "0"},
}


@dataclass(frozen=True)
class WorkloadShape:
    """One client's per-round workload geometry."""

    n_samples: int       # n: local data samples
    batch_size: int      # M
    local_epochs: int = 1

    @property
    def iterations(self) -> int:
        """K: local iterations per round."""
        return math.ceil(self.n_samples / self.batch_size) * self.local_epochs

    @property
    def samples_processed(self) -> int:
        return self.n_samples * self.local_epochs


def attach_overhead_flops(
    method: str, profile: ModelProfile, shape: WorkloadShape, history_depth: int = 1
) -> float:
    """Evaluate the Table VIII computation-overhead formula numerically."""
    key = method.lower()
    w = profile.num_params
    k = shape.iterations
    fp = profile.forward_flops
    bp = profile.backward_flops
    n = shape.n_samples
    m = shape.batch_size
    if key == "fedavg":
        return 0.0
    if key == "fedprox":
        return 2.0 * k * w
    if key in ("fedtrip", "feddyn"):
        return 4.0 * k * w
    if key == "moon":
        return float(k) * m * (1 + history_depth) * fp
    if key == "fedgkd":
        return float(k) * m * fp
    if key == "scaffold":
        return 2.0 * (k + 1) * w + n * (fp + bp)
    if key == "mimelite":
        return float(n) * (fp + bp) + 2.0 * k * w
    if key == "feddane":
        return 4.0 * k * w + n * (fp + bp)
    if key == "slowmo":
        return 2.0 * w  # server-side momentum per round
    raise KeyError(f"no Table VIII formula for method {method!r}")


def comm_overhead_units(method: str) -> float:
    """Extra one-way |w|-sized transfers per round (Table VIII comm row)."""
    key = method.lower()
    if key in ("scaffold", "mimelite", "feddane"):
        return 2.0
    if key in ("moon", "fedprox", "feddyn", "fedtrip", "fedavg", "slowmo", "fedgkd"):
        return 0.0
    raise KeyError(f"no Table VIII formula for method {method!r}")


def round_training_flops(
    method: str, profile: ModelProfile, shape: WorkloadShape, history_depth: int = 1
) -> float:
    """Total per-client per-round FLOPs = base n(FP+BP) + attach overhead.

    This is the quantity Table V accumulates over rounds ("total GFLOPs of
    feedforward and attaching operations").
    """
    base = shape.samples_processed * (profile.forward_flops + profile.backward_flops)
    return base + attach_overhead_flops(method, profile, shape, history_depth)


def table8_row(method: str, profile: ModelProfile, shape: WorkloadShape) -> Dict[str, object]:
    """One evaluated row of Table VIII for a concrete model/workload."""
    key = method.lower()
    return {
        "method": key,
        "computation_formula": TABLE8_FORMULAS[key]["computation"],
        "computation_flops": attach_overhead_flops(key, profile, shape),
        "communication_formula": TABLE8_FORMULAS[key]["communication"],
        "communication_extra_units": comm_overhead_units(key),
    }
