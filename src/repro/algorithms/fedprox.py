"""FedProx (Li et al., MLSys 2020).

Adds a proximal term ``(mu/2)||w - w_glob||^2`` to the local objective, i.e.
``mu (w - w_glob)`` to every local gradient.  The paper's baseline uses
``mu = 0.1``.  FedProx is the "positive-pair only" half of FedTrip: it keeps
updates consistent but, as Sec. IV argues, the proximal pull partially
cancels progress toward the local optimum and ignores historical models.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.algorithms.base import ClientRoundContext, Strategy

__all__ = ["FedProx"]


class FedProx(Strategy):
    name = "fedprox"

    def __init__(self, mu: float = 0.1) -> None:
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.mu = float(mu)

    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        if self.mu == 0.0:
            return
        if ctx.has_flat():
            grads = ctx.flat_grads
            grads += self.mu * (ctx.flat_weights - ctx.global_flat)
        else:
            for p, gw in zip(ctx.model.parameters(), ctx.global_weights):
                p.grad += self.mu * (p.data - gw)
        ctx.extra_flops += 2.0 * ctx.n_params

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        return 2.0 * n_params  # Table VIII: 2K|w|

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "model regularization",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }
