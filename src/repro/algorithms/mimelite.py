"""MimeLite (Karimireddy et al., 2020) — mimicking centralized momentum.

The server maintains a momentum buffer ``s`` updated with *full-batch*
client gradients at the global model; clients apply that fixed server
momentum during local steps instead of building their own::

    local update:  w <- w - lr ((1 - beta) g + beta s)
    server:        s <- (1 - beta) mean_k grad F_k(w_glob) + beta s

Clients therefore run plain SGD with a blended gradient.  The full-batch
gradient collection reuses the simulation's preamble phase (cost
``n(FP+BP)``, Appendix A Table VIII) and adds ``2|w|`` communication
(s down, gradient up).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.fl.params import as_flat

__all__ = ["MimeLite"]


class MimeLite(Strategy):
    name = "mimelite"
    local_optimizer = "sgd"
    needs_preamble = True

    def __init__(self, beta: float = 0.9) -> None:
        if not 0 <= beta < 1:
            raise ValueError("beta must be in [0, 1)")
        self.beta = float(beta)

    # ---------------- preamble / server ----------------
    def client_preamble(self, ctx: ClientRoundContext, full_grad: List[np.ndarray]) -> Dict[str, Any]:
        return {"full_grad": full_grad}

    def server_preamble(self, server_state, preambles, global_weights, round_idx) -> None:
        grads = [p["full_grad"] for p in preambles.values()]
        mean_grad = [np.zeros_like(w) for w in global_weights]
        for g in grads:
            for i in range(len(mean_grad)):
                mean_grad[i] += g[i] / len(grads)
        s = server_state.get("s")
        if s is None:
            server_state["s"] = mean_grad
        else:
            server_state["s"] = [
                (1 - self.beta) * mg + self.beta * sk for mg, sk in zip(mean_grad, s)
            ]

    def server_broadcast(self, server_state: Dict[str, Any], round_idx: int) -> Dict[str, Any]:
        if "s" not in server_state:
            return {}
        # Flat vector staged once per round so flat-path clients never
        # re-flatten the momentum per client.
        payload: Dict[str, Any] = {"s": server_state["s"]}
        s_flat = as_flat(server_state["s"])
        if s_flat is not None:
            payload["s_flat"] = s_flat
        return payload

    # ---------------- client ----------------
    def on_round_start(self, ctx: ClientRoundContext) -> None:
        s = ctx.server_broadcast.get("s")
        if s is not None and ctx.has_flat():
            # The server stages the flat momentum with the payload; each
            # local step's blend is then two vector ops on the grad plane.
            s_flat = ctx.server_broadcast.get("s_flat")
            ctx.scratch["s_flat"] = s_flat if s_flat is not None else as_flat(s)

    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        s = ctx.server_broadcast.get("s")
        if s is None:
            return
        b = self.beta
        s_flat = ctx.scratch.get("s_flat")
        if s_flat is not None and ctx.has_flat():
            grads = ctx.flat_grads
            grads *= 1 - b
            grads += b * s_flat
        else:
            for p, sk in zip(ctx.model.parameters(), s):
                p.grad *= 1 - b
                p.grad += b * sk
        ctx.extra_flops += 2.0 * ctx.n_params

    # ---------------- cost model ----------------
    def extra_comm_units(self) -> float:
        return 2.0  # s down + full gradient up

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        return 2.0 * n_params

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "server statistics mimicry",
            "information_utilization": "sufficient",
            "resource_cost": "high (computation + communication)",
        }
