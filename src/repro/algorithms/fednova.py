"""FedNova — normalized averaging (Wang et al., NeurIPS 2020).

Cited in the paper's related work ([22], "tackling the objective
inconsistency problem").  When clients run different numbers of local steps
(heterogeneous shard sizes or epochs), naive FedAvg implicitly weights
fast-stepping clients more.  FedNova normalizes each client's cumulative
update by its *effective* step count before averaging:

``d_k = (w_glob - w_k) / tau_k``            (normalized update direction)
``w_glob <- w_glob - tau_eff * sum_k p_k d_k``

with ``tau_eff = sum_k p_k tau_k`` (the paper's momentum-corrected tau is
used when clients run SGDm: ``tau_k' = (tau_k - m(1-m^tau_k)/(1-m))/(1-m)``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.fl.types import ClientUpdate, FLConfig

__all__ = ["FedNova"]


def _effective_tau(steps: int, momentum: float) -> float:
    """Effective step count of SGD(m): sum of the geometric step weights.

    For plain SGD this is just ``steps``; with heavy-ball momentum m each
    gradient's total influence is amplified, giving
    ``(steps - m(1-m^steps)/(1-m)) / (1-m)``.
    """
    if momentum == 0.0:
        return float(steps)
    m = momentum
    return (steps - m * (1 - m**steps) / (1 - m)) / (1 - m)


class FedNova(Strategy):
    name = "fednova"

    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return {}

    def on_round_start(self, ctx: ClientRoundContext) -> None:
        ctx.scratch["steps"] = 0

    def local_step(self, ctx: ClientRoundContext, xb, yb) -> float:
        loss = super().local_step(ctx, xb, yb)
        ctx.scratch["steps"] += 1
        return loss

    def on_round_end(self, ctx: ClientRoundContext) -> None:
        momentum = getattr(ctx.optimizer, "momentum", 0.0)
        ctx.upload_extras["tau_eff"] = _effective_tau(ctx.scratch["steps"], momentum)

    def aggregate(
        self,
        updates: Sequence[ClientUpdate],
        global_weights: List[np.ndarray],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        total = sum(u.num_samples for u in updates)
        ps = [u.num_samples / total for u in updates]
        taus = [float(u.extras["tau_eff"]) for u in updates]
        tau_eff = sum(p * t for p, t in zip(ps, taus))
        scales = np.array(
            [tau_eff * p / max(tau, 1e-12) for p, tau in zip(ps, taus)],
            dtype=np.float64,
        )
        # w <- w - sum_k scale_k (w - w_k) = (1 - sum scale) w + scales @ M:
        # the K client vectors stack into the pooled (K, P) matrix and the
        # normalized reduction is a single GEMM (mixed dtypes fall back to
        # the per-layer loop).
        from repro.fl.params import as_flat, stack_updates
        from repro.utils.vectorize import unflatten_like

        g = as_flat(global_weights)
        if g is not None:
            mat = stack_updates(
                [u.weights for u in updates], flats=[u.flat for u in updates]
            )
            flat = (1.0 - scales.sum()) * g.astype(np.float64) + scales @ mat
            dtype = np.asarray(global_weights[0]).dtype
            return unflatten_like(flat.astype(dtype), global_weights)
        out = [w.astype(np.float64, copy=True) for w in global_weights]
        for u, scale in zip(updates, scales):
            for i, (gw, lw) in enumerate(zip(global_weights, u.weights)):
                out[i] -= scale * (gw.astype(np.float64) - lw.astype(np.float64))
        return [o.astype(global_weights[i].dtype) for i, o in enumerate(out)]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "normalized averaging",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }
