"""SCAFFOLD — stochastic controlled averaging (Karimireddy et al., ICML 2020).

Control variates correct client drift: the server keeps ``c`` (mean of all
client variates), each client keeps ``c_k``; every local gradient becomes
``g - c_k + c``.  After K local steps the client refreshes its variate with
option II of the paper::

    c_k_new = c_k - c + (w_glob - w_k) / (K * lr)

and uploads ``delta_k = c_k_new - c_k`` alongside the model; the server
applies ``c += (K_selected / N) * mean(delta_k)``.  Communication is
``2|w|`` extra per round (c down, delta up) — Appendix A Table VIII's
``2(K+1)|w| + ...`` computation row and ``2|w|`` communication row.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.fl.params import as_flat
from repro.fl.types import ClientUpdate, FLConfig
from repro.utils.vectorize import unflatten_like

__all__ = ["SCAFFOLD"]


class SCAFFOLD(Strategy):
    name = "scaffold"
    local_optimizer = "sgd"

    # ---------------- server ----------------
    def server_init(self, global_weights, config: FLConfig) -> Dict[str, Any]:
        return {"c": [np.zeros_like(w) for w in global_weights]}

    def server_broadcast(self, server_state: Dict[str, Any], round_idx: int) -> Dict[str, Any]:
        # Ship the variate's flat vector alongside the tree: staged once per
        # round here, so flat-path clients never re-flatten it per client.
        payload: Dict[str, Any] = {"c": server_state["c"]}
        c_flat = as_flat(server_state["c"])
        if c_flat is not None:
            payload["c_flat"] = c_flat
        return payload

    def post_aggregate(
        self,
        new_weights: List[np.ndarray],
        old_weights: List[np.ndarray],
        updates: Sequence[ClientUpdate],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        c = server_state["c"]
        scale = len(updates) / config.n_clients
        for upd in updates:
            delta = upd.extras["c_delta"]
            if isinstance(delta, np.ndarray):
                # Flat-path clients upload one (P,) vector; apply it through
                # zero-copy per-layer views so c keeps its tree layout.
                delta = unflatten_like(delta, c)
            for i in range(len(c)):
                c[i] = c[i] + (scale / len(updates)) * delta[i]
        return new_weights

    # ---------------- client ----------------
    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return {"c_k": None}

    def on_round_start(self, ctx: ClientRoundContext) -> None:
        c_k = ctx.state["c_k"]
        if ctx.has_flat():
            if c_k is None:
                ctx.state["c_k"] = np.zeros_like(ctx.global_flat)
            elif not isinstance(c_k, np.ndarray):
                ctx.state["c_k"] = as_flat(c_k)
            # The server stages the variate's flat vector with the payload;
            # every local step's correction is then a single vector
            # expression.  (Fallback flatten only for hand-built payloads.)
            c_flat = ctx.server_broadcast.get("c_flat")
            ctx.scratch["c_flat"] = (
                c_flat if c_flat is not None else as_flat(ctx.server_broadcast["c"]))
        else:
            if c_k is None:
                ctx.state["c_k"] = [np.zeros_like(w) for w in ctx.global_weights]
            elif isinstance(c_k, np.ndarray):
                ctx.state["c_k"] = [
                    chunk.copy() for chunk in unflatten_like(c_k, ctx.global_weights)
                ]
        ctx.scratch["steps"] = 0

    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        c_k = ctx.state["c_k"]
        if ctx.has_flat():
            grads = ctx.flat_grads
            grads += ctx.scratch["c_flat"] - c_k
        else:
            c = ctx.server_broadcast["c"]
            for p, ck, cg in zip(ctx.model.parameters(), c_k, c):
                p.grad += cg - ck
        ctx.scratch["steps"] += 1
        ctx.extra_flops += 2.0 * ctx.n_params

    def on_round_end(self, ctx: ClientRoundContext) -> None:
        c_k = ctx.state["c_k"]
        steps = max(ctx.scratch["steps"], 1)
        inv = 1.0 / (steps * ctx.config.lr)
        if ctx.has_flat():
            c_k_new = c_k - ctx.scratch["c_flat"] + inv * (ctx.global_flat - ctx.flat_weights)
            ctx.state["c_k"] = c_k_new
            ctx.upload_extras["c_delta"] = c_k_new - c_k
            return
        c = ctx.server_broadcast["c"]
        c_k_new: List[np.ndarray] = []
        delta: List[np.ndarray] = []
        for p, gw, ck, cg in zip(ctx.model.parameters(), ctx.global_weights, c_k, c):
            new = ck - cg + inv * (gw - p.data)
            c_k_new.append(new)
            delta.append(new - ck)
        ctx.state["c_k"] = c_k_new
        ctx.upload_extras["c_delta"] = delta

    # ---------------- cost model ----------------
    def extra_comm_units(self) -> float:
        return 2.0  # c down + delta up

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        return 2.0 * n_params

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "control variates",
            "information_utilization": "sufficient",
            "resource_cost": "high (communication)",
        }
