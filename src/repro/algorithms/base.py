"""The Strategy API: how an FL algorithm plugs into the simulation.

One :class:`Strategy` instance serves a whole experiment.  Server-side state
lives in the dict returned by :meth:`Strategy.server_init`; per-client state
lives in dicts the simulation owns and hands back on every participation
(this is what lets FedTrip find the *historical* local model and its
last-participation round).

The default :meth:`Strategy.local_step` implements Algorithm 1's structure:

1. forward, cross-entropy loss;
2. backward to populate gradient buffers;
3. :meth:`modify_gradients` — the algorithm's "attaching operation", e.g.
   FedTrip's ``mu*((w - w_glob) + xi*(w_hist - w))`` (line 7);
4. one optimizer step ``w -= alpha * U(h)`` (line 8).

Representation-based methods (MOON, FedGKD) override ``local_step`` entirely
because they need extra forward passes through frozen reference models.

Cost accounting: every hook adds the FLOPs of its attaching operations to
``ctx.extra_flops`` (in exact multiples of ``|w|`` or of forward-pass cost),
and communication beyond the baseline down+up model exchange is declared via
:meth:`extra_comm_units`.  These feed Tables IV/V/VIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.fl.aggregation import fedavg_aggregate
from repro.fl.types import ClientUpdate, FLConfig
from repro.models.fedmodel import FedModel
from repro.nn.losses import CrossEntropyLoss
from repro.optim.base import Optimizer

__all__ = ["ClientRoundContext", "Strategy"]


@dataclass
class ClientRoundContext:
    """Everything a strategy can touch while one client trains one round."""

    client_id: int
    round_idx: int
    global_weights: List[np.ndarray]
    model: FedModel                      # trainable; starts at global weights
    frozen: FedModel                     # scratch copy for reference forwards
    optimizer: Optimizer
    criterion: CrossEntropyLoss
    config: FLConfig
    state: Dict[str, Any]                # persistent per-client strategy state
    rng: np.random.Generator
    n_samples: int                       # client's local dataset size
    fp_flops_per_sample: float           # forward cost of one sample
    server_broadcast: Dict[str, Any] = field(default_factory=dict)
    upload_extras: Dict[str, Any] = field(default_factory=dict)
    extra_flops: float = 0.0             # attach-op + extra-forward FLOPs
    scratch: Dict[str, Any] = field(default_factory=dict)  # round-local temp
    #: scheduler-measured staleness (server versions since this client's
    #: last dispatch) under the async/semi-sync modes; None in sync mode,
    #: where strategies fall back to round arithmetic.
    xi_measured: Optional[float] = None
    #: the broadcast global weights as one ``(P,)`` vector (aliasing
    #: ``global_weights``); None when the executor shipped a plain tree.
    global_flat: Optional[np.ndarray] = None

    @property
    def n_params(self) -> int:
        return self.model.num_parameters()

    @property
    def flat_weights(self) -> Optional[np.ndarray]:
        """The model's live weight plane (None unless plane-backed)."""
        return self.model.flat_weights

    @property
    def flat_grads(self) -> Optional[np.ndarray]:
        """The model's live gradient plane (None unless plane-backed)."""
        return self.model.flat_grads

    def has_flat(self) -> bool:
        """True when both the worker model and the broadcast are flat —
        the precondition for every strategy's fused attach-op path."""
        return self.model.flat_grads is not None and self.global_flat is not None


class Strategy:
    """Base class = FedAvg behaviour; subclasses override hooks."""

    #: registry name, e.g. "fedtrip"
    name: str = "base"
    #: force a specific local optimizer ("sgd"/"sgdm"/"adam"), or None to use
    #: the config's choice.  The paper runs SlowMo/FedDyn on plain SGD.
    local_optimizer: Optional[str] = None
    #: whether the simulation must run the client/server preamble phase
    #: (FedDANE, MimeLite — they need full-batch gradients at the global model)
    needs_preamble: bool = False

    # ---------------- server side ----------------
    def server_init(self, global_weights: List[np.ndarray], config: FLConfig) -> Dict[str, Any]:
        """Create server-side state (e.g. SCAFFOLD's control variate)."""
        return {}

    def server_broadcast(
        self, server_state: Dict[str, Any], round_idx: int
    ) -> Dict[str, Any]:
        """Extra payload shipped to every selected client with the model."""
        return {}

    def server_preamble(
        self,
        server_state: Dict[str, Any],
        preambles: Dict[int, Dict[str, Any]],
        global_weights: List[np.ndarray],
        round_idx: int,
    ) -> None:
        """Combine per-client preamble payloads (only if ``needs_preamble``)."""

    def aggregate(
        self,
        updates: Sequence[ClientUpdate],
        global_weights: List[np.ndarray],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        """Combine client models into the next global model (Eq. 2)."""
        return fedavg_aggregate(updates)

    def post_aggregate(
        self,
        new_weights: List[np.ndarray],
        old_weights: List[np.ndarray],
        updates: Sequence[ClientUpdate],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        """Adjust the aggregated model (SlowMo momentum, FedDyn h-shift)."""
        return new_weights

    # ---------------- client side ----------------
    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return {}

    def client_preamble(self, ctx: ClientRoundContext, full_grad: List[np.ndarray]) -> Dict[str, Any]:
        """Payload computed at the global model before training starts.

        ``full_grad`` is the client's full-batch gradient at the global
        weights (the simulation computes it once and shares it, since both
        preamble users need exactly that).
        """
        return {}

    def on_round_start(self, ctx: ClientRoundContext) -> None:
        """Load historical state, reset round-local scratch."""

    def local_step(self, ctx: ClientRoundContext, xb: np.ndarray, yb: np.ndarray) -> float:
        """One mini-batch step; returns the (base) loss value."""
        logits = ctx.model(xb)
        loss, dlogits = ctx.criterion(logits, yb)
        ctx.model.zero_grad()
        ctx.model.backward(dlogits)
        self.modify_gradients(ctx)
        self.maybe_clip(ctx)
        ctx.optimizer.step()
        return loss

    @staticmethod
    def maybe_clip(ctx: ClientRoundContext) -> None:
        """Apply the config's optional global gradient clipping — one norm
        over the grad plane on plane-backed models, per-layer otherwise."""
        if ctx.config.max_grad_norm is None:
            return
        grads = ctx.model.flat_grads
        if grads is not None:
            from repro.nn.utils import clip_grad_norm_flat

            clip_grad_norm_flat(grads, ctx.config.max_grad_norm)
        else:
            from repro.nn.utils import clip_grad_norm

            clip_grad_norm(ctx.model.parameters(), ctx.config.max_grad_norm)

    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        """Inject the algorithm's regularization into the gradient buffers."""

    def on_round_end(self, ctx: ClientRoundContext) -> None:
        """Persist client state (historical model, control variates...)."""

    # ---------------- cost model ----------------
    def extra_comm_units(self) -> float:
        """Per-round per-client communication beyond the 2|w| baseline,
        in units of |w| (Appendix A Table VIII)."""
        return 0.0

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        """Analytic attach-op FLOPs per local iteration (Table VIII row).

        Concrete strategies keep this consistent with what their hooks add to
        ``ctx.extra_flops``; a test cross-checks the two.
        """
        return 0.0

    # ---------------- metadata ----------------
    def describe(self) -> Dict[str, Any]:
        """Qualitative row for Table I."""
        return {
            "name": self.name,
            "family": "baseline",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
