"""FedAvgM — server momentum (Hsu et al., 2019; also Reddi et al. [23]).

The simplest server-side optimizer baseline: treat the average client
displacement as a pseudo-gradient and apply heavy-ball momentum at the
server::

    d_t = w_glob - mean(w_k)
    v_t = beta v_{t-1} + d_t
    w_glob <- w_glob - v_t

Differs from SlowMo only in parameterization (no 1/lr scaling, no separate
slow learning rate); with ``beta=0`` it is exactly FedAvg.  Included as the
canonical member of the "adaptive federated optimization" family the
paper's related work cites.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import Strategy
from repro.fl.types import ClientUpdate, FLConfig

__all__ = ["FedAvgM"]


class FedAvgM(Strategy):
    name = "fedavgm"

    def __init__(self, beta: float = 0.9) -> None:
        if not 0 <= beta < 1:
            raise ValueError("beta must be in [0, 1)")
        self.beta = float(beta)

    def server_init(self, global_weights, config: FLConfig) -> Dict[str, Any]:
        return {"v": [np.zeros_like(w) for w in global_weights]}

    def post_aggregate(
        self,
        new_weights: List[np.ndarray],
        old_weights: List[np.ndarray],
        updates: Sequence[ClientUpdate],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        v = server_state["v"]
        out: List[np.ndarray] = []
        for i, (new, old) in enumerate(zip(new_weights, old_weights)):
            v[i] = self.beta * v[i] + (old - new)
            out.append(old - v[i])
        return out

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "server momentum",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }
