"""FL algorithms: FedTrip (the paper's contribution) and all baselines."""

from repro.algorithms.base import Strategy, ClientRoundContext
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedprox import FedProx
from repro.algorithms.fedtrip import FedTrip
from repro.algorithms.moon import MOON
from repro.algorithms.feddyn import FedDyn
from repro.algorithms.slowmo import SlowMo
from repro.algorithms.scaffold import SCAFFOLD
from repro.algorithms.feddane import FedDANE
from repro.algorithms.mimelite import MimeLite
from repro.algorithms.fedgkd import FedGKD
from repro.algorithms.fednova import FedNova
from repro.algorithms.fedavgm import FedAvgM
from repro.algorithms.fedtrip_adaptive import AdaptiveFedTrip
from repro.algorithms.fedbn import FedBN
from repro.algorithms.registry import (
    STRATEGY_CLASSES,
    PAPER_EVALUATED,
    build_strategy,
    available_strategies,
    paper_defaults,
)

__all__ = [
    "Strategy",
    "ClientRoundContext",
    "FedAvg",
    "FedProx",
    "FedTrip",
    "MOON",
    "FedDyn",
    "SlowMo",
    "SCAFFOLD",
    "FedDANE",
    "MimeLite",
    "FedGKD",
    "FedNova",
    "FedAvgM",
    "AdaptiveFedTrip",
    "FedBN",
    "STRATEGY_CLASSES",
    "PAPER_EVALUATED",
    "build_strategy",
    "available_strategies",
    "paper_defaults",
]
