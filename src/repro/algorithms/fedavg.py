"""FedAvg (McMahan et al., AISTATS 2017) — the fundamental FL baseline.

Plain local SGD from the global model, sample-count-weighted averaging
(Eq. 2).  The base :class:`~repro.algorithms.base.Strategy` already *is*
FedAvg; this subclass just names it and documents zero attach cost.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.algorithms.base import Strategy

__all__ = ["FedAvg"]


class FedAvg(Strategy):
    name = "fedavg"

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "baseline",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }
