"""FedGKD — global knowledge distillation (Yao et al., 2021).

The related-work representation method that aligns local and global
*representations* without using historical models: each local step distils
the frozen global model's logits into the local model,

``L = CE(w; batch) + gamma * KL(softmax(glob/T) || softmax(local/T))``

One extra forward pass through the frozen global model per batch — cheaper
than MOON's two, still far above FedTrip's 4|w| parameter ops.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.nn.losses import KLDivLoss

__all__ = ["FedGKD"]


class FedGKD(Strategy):
    name = "fedgkd"

    def __init__(self, gamma: float = 0.2, temperature: float = 2.0) -> None:
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = float(gamma)
        self.kl = KLDivLoss(temperature)

    def local_step(self, ctx: ClientRoundContext, xb, yb) -> float:
        model, frozen = ctx.model, ctx.frozen
        logits = model(xb)
        loss_ce, dlogits = ctx.criterion(logits, yb)

        frozen.eval()
        frozen.set_weights(ctx.global_weights)
        teacher_logits = frozen(xb)
        loss_kd, dkd = self.kl(logits, teacher_logits)

        model.zero_grad()
        model.backward(dlogits + self.gamma * dkd)
        self.maybe_clip(ctx)
        ctx.optimizer.step()
        ctx.extra_flops += xb.shape[0] * ctx.fp_flops_per_sample
        return loss_ce + self.gamma * loss_kd

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        return batch_size * fp_flops

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "model representation",
            "information_utilization": "partial (no historical models)",
            "resource_cost": "medium",
        }
