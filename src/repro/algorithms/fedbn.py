"""FedBN — local batch normalization (Li et al., ICLR 2021; paper ref [24]).

The related-work baseline for *feature* non-IID: clients whose data differ
in feature space (different sensors/gains — see
``repro.data.transforms.client_feature_skew``) keep their BatchNorm
parameters **local** and only share the rest of the network.  Each client's
BN layers then normalize with statistics matched to its own feature
distribution.

Simulation mechanics: the server still averages every uploaded parameter
(so the global model used for server-side evaluation carries mean BN
parameters), but each participating client *restores its own* BN
gamma/beta and running statistics before training — equivalent to never
having shared them, which is FedBN's definition.  On a model without BN
layers this reduces exactly to FedAvg (pinned by a test).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.nn.regularization import _BatchNormBase

__all__ = ["FedBN"]


def _bn_modules(model) -> List[Any]:
    return [m for _, m in model.modules() if isinstance(m, _BatchNormBase)]


class FedBN(Strategy):
    name = "fedbn"

    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return {"bn": None}

    def on_round_start(self, ctx: ClientRoundContext) -> None:
        saved = ctx.state.get("bn")
        if saved is None:
            return
        for mod, blob in zip(_bn_modules(ctx.model), saved):
            mod.gamma.copy_(blob["gamma"])
            mod.beta.copy_(blob["beta"])
            mod.running_mean = blob["running_mean"].copy()
            mod.running_var = blob["running_var"].copy()

    def on_round_end(self, ctx: ClientRoundContext) -> None:
        ctx.state["bn"] = [
            {
                "gamma": mod.gamma.clone_data(),
                "beta": mod.beta.clone_data(),
                "running_mean": mod.running_mean.copy(),
                "running_var": mod.running_var.copy(),
            }
            for mod in _bn_modules(ctx.model)
        ]

    def personalize(self, model, client_state: Dict[str, Any]):
        """Load a client's local BN parameters into ``model`` (for
        personalized evaluation, FedBN's intended deployment)."""
        saved = client_state.get("bn")
        if saved is None:
            return model
        for mod, blob in zip(_bn_modules(model), saved):
            mod.gamma.copy_(blob["gamma"])
            mod.beta.copy_(blob["beta"])
            mod.running_mean = blob["running_mean"].copy()
            mod.running_var = blob["running_var"].copy()
        return model

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "personalized normalization",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }
