"""FedDANE — a federated Newton-type method (Li et al., ACSSC 2019).

DANE's gradient-corrected local objective, adapted to sampled participation:

``F_k(w) - <grad F_k(w_glob) - g_agg, w> + (mu/2)||w - w_glob||^2``

so every local gradient becomes ``g - g_k(w_glob) + g_agg + mu (w - w_glob)``
where ``g_agg`` is the average of the selected clients' full-batch gradients
at the global model — collected in an extra communication half-round before
local training (the preamble phase of the simulation).  The paper's related
work notes FedDANE "consistently underperforms FedProx" despite the stronger
theory; reproducing that behaviour is part of the baseline suite.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.fl.params import as_flat
from repro.utils.vectorize import tree_copy, unflatten_like

__all__ = ["FedDANE"]


class FedDANE(Strategy):
    name = "feddane"
    needs_preamble = True

    def __init__(self, mu: float = 0.1) -> None:
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.mu = float(mu)

    # ---------------- preamble ----------------
    def client_preamble(self, ctx: ClientRoundContext, full_grad: List[np.ndarray]) -> Dict[str, Any]:
        # Stash the local full gradient for the correction term (flat on
        # plane-backed workers) and upload it for aggregation.
        ctx.state["grad_at_global"] = (
            as_flat(full_grad) if ctx.has_flat() else tree_copy(full_grad))
        return {"full_grad": full_grad}

    def server_preamble(self, server_state, preambles, global_weights, round_idx) -> None:
        grads = [p["full_grad"] for p in preambles.values()]
        agg = [np.zeros_like(w) for w in global_weights]
        for g in grads:
            for i in range(len(agg)):
                agg[i] += g[i] / len(grads)
        server_state["g_agg"] = agg

    def server_broadcast(self, server_state: Dict[str, Any], round_idx: int) -> Dict[str, Any]:
        if "g_agg" not in server_state:
            return {}
        # Flat vector staged once per round so flat-path clients never
        # re-flatten the aggregated gradient per client.
        payload: Dict[str, Any] = {"g_agg": server_state["g_agg"]}
        agg_flat = as_flat(server_state["g_agg"])
        if agg_flat is not None:
            payload["g_agg_flat"] = agg_flat
        return payload

    # ---------------- client ----------------
    def on_round_start(self, ctx: ClientRoundContext) -> None:
        if not ctx.has_flat():
            # A flat-stored preamble gradient reaching a tree-path run is
            # converted once per round (the preamble refreshes it anyway).
            g_loc = ctx.state.get("grad_at_global")
            if isinstance(g_loc, np.ndarray):
                ctx.state["grad_at_global"] = [
                    chunk.copy() for chunk in unflatten_like(g_loc, ctx.global_weights)
                ]
            return
        # Combine the round's correction pair once; every local step's
        # gradient surgery is then a single vector expression.  The server
        # stages g_agg's flat vector with the payload; the client's own
        # preamble gradient was stored flat by client_preamble.
        g_agg = ctx.server_broadcast.get("g_agg")
        g_loc = ctx.state.get("grad_at_global")
        if g_agg is not None and g_loc is not None:
            agg_flat = ctx.server_broadcast.get("g_agg_flat")
            if agg_flat is None:
                agg_flat = as_flat(g_agg)
            loc_flat = g_loc if isinstance(g_loc, np.ndarray) else as_flat(g_loc)
            ctx.scratch["correction_flat"] = agg_flat - loc_flat

    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        g_agg = ctx.server_broadcast.get("g_agg")
        g_loc = ctx.state.get("grad_at_global")
        if ctx.has_flat():
            grads = ctx.flat_grads
            correction = ctx.scratch.get("correction_flat")
            if correction is not None:
                grads += correction + self.mu * (ctx.flat_weights - ctx.global_flat)
                ctx.extra_flops += 4.0 * ctx.n_params
            else:
                grads += self.mu * (ctx.flat_weights - ctx.global_flat)
                ctx.extra_flops += 2.0 * ctx.n_params
            return
        params = ctx.model.parameters()
        if g_agg is not None and g_loc is not None:
            for p, gw, ga, gl in zip(params, ctx.global_weights, g_agg, g_loc):
                p.grad += ga - gl + self.mu * (p.data - gw)
            ctx.extra_flops += 4.0 * ctx.n_params
        else:  # fall back to FedProx behaviour if the preamble was skipped
            for p, gw in zip(params, ctx.global_weights):
                p.grad += self.mu * (p.data - gw)
            ctx.extra_flops += 2.0 * ctx.n_params

    # ---------------- cost model ----------------
    def extra_comm_units(self) -> float:
        return 2.0  # grad up (preamble) + aggregated grad down

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        # Per-iteration attach ops only; the n(FP+BP) full-gradient preamble
        # is charged separately by the simulation (Table VIII's n(FP+BP)).
        return 4.0 * n_params

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "gradient correction",
            "information_utilization": "sufficient",
            "resource_cost": "high (computation + communication)",
        }
