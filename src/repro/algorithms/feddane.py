"""FedDANE — a federated Newton-type method (Li et al., ACSSC 2019).

DANE's gradient-corrected local objective, adapted to sampled participation:

``F_k(w) - <grad F_k(w_glob) - g_agg, w> + (mu/2)||w - w_glob||^2``

so every local gradient becomes ``g - g_k(w_glob) + g_agg + mu (w - w_glob)``
where ``g_agg`` is the average of the selected clients' full-batch gradients
at the global model — collected in an extra communication half-round before
local training (the preamble phase of the simulation).  The paper's related
work notes FedDANE "consistently underperforms FedProx" despite the stronger
theory; reproducing that behaviour is part of the baseline suite.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.utils.vectorize import tree_copy

__all__ = ["FedDANE"]


class FedDANE(Strategy):
    name = "feddane"
    needs_preamble = True

    def __init__(self, mu: float = 0.1) -> None:
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.mu = float(mu)

    # ---------------- preamble ----------------
    def client_preamble(self, ctx: ClientRoundContext, full_grad: List[np.ndarray]) -> Dict[str, Any]:
        # Stash the local full gradient for the correction term and upload it
        # for aggregation.
        ctx.state["grad_at_global"] = tree_copy(full_grad)
        return {"full_grad": full_grad}

    def server_preamble(self, server_state, preambles, global_weights, round_idx) -> None:
        grads = [p["full_grad"] for p in preambles.values()]
        agg = [np.zeros_like(w) for w in global_weights]
        for g in grads:
            for i in range(len(agg)):
                agg[i] += g[i] / len(grads)
        server_state["g_agg"] = agg

    def server_broadcast(self, server_state: Dict[str, Any], round_idx: int) -> Dict[str, Any]:
        if "g_agg" not in server_state:
            return {}
        return {"g_agg": server_state["g_agg"]}

    # ---------------- client ----------------
    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        g_agg = ctx.server_broadcast.get("g_agg")
        g_loc = ctx.state.get("grad_at_global")
        params = ctx.model.parameters()
        if g_agg is not None and g_loc is not None:
            for p, gw, ga, gl in zip(params, ctx.global_weights, g_agg, g_loc):
                p.grad += ga - gl + self.mu * (p.data - gw)
            ctx.extra_flops += 4.0 * ctx.n_params
        else:  # fall back to FedProx behaviour if the preamble was skipped
            for p, gw in zip(params, ctx.global_weights):
                p.grad += self.mu * (p.data - gw)
            ctx.extra_flops += 2.0 * ctx.n_params

    # ---------------- cost model ----------------
    def extra_comm_units(self) -> float:
        return 2.0  # grad up (preamble) + aggregated grad down

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        # Per-iteration attach ops only; the n(FP+BP) full-gradient preamble
        # is charged separately by the simulation (Table VIII's n(FP+BP)).
        return 4.0 * n_params

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "gradient correction",
            "information_utilization": "sufficient",
            "resource_cost": "high (computation + communication)",
        }
