"""MOON — model-contrastive federated learning (Li, He & Song, CVPR 2021).

The representation-based competitor the paper positions FedTrip against.
Each local step adds ``mu * l_con`` where ``l_con`` contrasts the current
model's representation ``z`` with the global model's ``z_glob`` (positive)
and the client's previous local model's ``z_prev`` (negative):

``l_con = -log exp(sim(z, z_glob)/tau) / (exp(sim(z, z_glob)/tau) +
exp(sim(z, z_prev)/tau))``

This needs (1 + p) extra *forward passes per batch* (p = number of history
models, 1 here): one through the frozen global model and one through the
frozen previous model — the "tremendous computation cost" motivating
FedTrip.  Our cost hooks charge exactly those forwards, which is how Table V
reproduces MOON's order-of-magnitude overhead.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.nn.losses import ModelContrastiveLoss
from repro.utils.vectorize import tree_copy

__all__ = ["MOON"]


class MOON(Strategy):
    name = "moon"

    def __init__(self, mu: float = 1.0, temperature: float = 0.5, history_depth: int = 1) -> None:
        if mu < 0:
            raise ValueError("mu must be non-negative")
        if history_depth != 1:
            raise NotImplementedError("this reproduction keeps one previous model, as in the paper")
        self.mu = float(mu)
        self.contrastive = ModelContrastiveLoss(temperature)
        self.history_depth = history_depth

    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return {"previous": None}

    def on_round_start(self, ctx: ClientRoundContext) -> None:
        # First participation: MOON falls back to the global model as the
        # "previous" network (standard implementation behaviour).
        prev = ctx.state.get("previous")
        ctx.scratch["prev_weights"] = prev if prev is not None else tree_copy(ctx.global_weights)

    def local_step(self, ctx: ClientRoundContext, xb, yb) -> float:
        model, frozen = ctx.model, ctx.frozen
        logits, z = model.forward_with_features(xb)
        loss_ce, dlogits = ctx.criterion(logits, yb)

        # Reference representations from the frozen global & previous models.
        frozen.eval()
        frozen.set_weights(ctx.global_weights)
        _, z_glob = frozen.forward_with_features(xb)
        frozen.set_weights(ctx.scratch["prev_weights"])
        _, z_prev = frozen.forward_with_features(xb)

        loss_con, dz = self.contrastive(z, z_glob, z_prev)
        model.zero_grad()
        model.backward(dlogits, dfeatures=self.mu * dz)
        self.maybe_clip(ctx)
        ctx.optimizer.step()
        # Cost: (1 + p) extra forward passes for the whole batch.
        ctx.extra_flops += (1 + self.history_depth) * xb.shape[0] * ctx.fp_flops_per_sample
        return loss_ce + self.mu * loss_con

    def on_round_end(self, ctx: ClientRoundContext) -> None:
        ctx.state["previous"] = tree_copy(ctx.model.weight_refs())

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        return (1 + self.history_depth) * batch_size * fp_flops  # Table VIII: K M (1+p) FP

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "model representation",
            "information_utilization": "sufficient",
            "resource_cost": "high",
        }
