"""FedTrip — the paper's contribution (Sec. IV, Algorithm 1).

The local loss is augmented with a *triplet regularization term*::

    L = F(w) + (mu/2) [ ||w - w_glob||^2 - xi ||w - w_hist||^2 ]

whose gradient-level form, applied at every local iteration (Algorithm 1
line 7), is::

    h = grad F(w) + mu ( (w - w_glob) + xi (w_hist - w) )

* the anchor/positive pair ``(w, w_glob)`` keeps local updates consistent
  (FedProx's effect);
* the anchor/negative pair ``(w, w_hist)`` pushes the current model away
  from the client's *historical* local model, recovering the exploration /
  diversity information MOON obtains from expensive representation
  contrasts — at parameter-space cost (4|w| FLOPs per iteration, Table VIII)
  and zero extra communication.

``xi`` is the client's participation staleness: the number of rounds since
it last trained (Sec. IV-B: "the value of xi is set as the interval between
the current round and the last round of participating in training").  Under
low participation rates clients are stale, xi grows, and the push from the
old model strengthens — exactly the E[xi] = p ln p / (p-1) scaling analysed
in Theorem 1.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.fl.params import as_flat
from repro.utils.vectorize import tree_copy, unflatten_like

__all__ = ["FedTrip"]


class FedTrip(Strategy):
    """Triplet parameter-space regularization with staleness-scaled push.

    Parameters
    ----------
    mu:
        Regularization strength; the paper uses 1.0 for MLP experiments and
        0.4 elsewhere (Sec. V-A).
    xi_mode:
        ``"staleness"`` (paper): xi = rounds since last participation;
        ``"constant"``: xi = ``xi_value`` (ablation);
        ``"normalized"``: staleness divided by its expectation 1/p so the
        mean push strength is participation-invariant (extension/ablation).
    xi_value:
        The constant used by ``xi_mode="constant"``.
    historical_source:
        ``"last-local"`` (paper): the negative anchor is the client's own
        trained model from its previous participation;
        ``"last-global"``: ablation that pushes away from the global model
        the client received at its previous participation instead —
        isolates how much of FedTrip's gain comes from *client-specific*
        history.
    """

    name = "fedtrip"

    def __init__(
        self,
        mu: float = 0.4,
        xi_mode: str = "staleness",
        xi_value: float = 1.0,
        participation_rate: Optional[float] = None,
        historical_source: str = "last-local",
    ) -> None:
        if mu < 0:
            raise ValueError("mu must be non-negative")
        if xi_mode not in ("staleness", "constant", "normalized"):
            raise ValueError(f"unknown xi_mode {xi_mode!r}")
        if xi_mode == "normalized" and not participation_rate:
            raise ValueError("normalized xi needs participation_rate")
        if historical_source not in ("last-local", "last-global"):
            raise ValueError(f"unknown historical_source {historical_source!r}")
        self.mu = float(mu)
        self.xi_mode = xi_mode
        self.xi_value = float(xi_value)
        self.participation_rate = participation_rate
        self.historical_source = historical_source

    # ---------------- client ----------------
    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return {"historical": None, "last_round": None}

    def _xi(self, ctx: ClientRoundContext) -> float:
        last = ctx.state.get("last_round")
        if ctx.state.get("historical") is None or last is None:
            return 0.0
        if ctx.xi_measured is not None:
            # An event-driven mode measured this client's staleness on the
            # scheduler (server versions since its last dispatch); prefer
            # the physical quantity over round arithmetic.  In the sync
            # case the two coincide (a unit test pins the equivalence).
            staleness = max(float(ctx.xi_measured), 1.0)
        else:
            staleness = float(max(ctx.round_idx - last, 1))
        if self.xi_mode == "constant":
            return self.xi_value
        if self.xi_mode == "normalized":
            return staleness * self.participation_rate
        return float(staleness)

    def on_round_start(self, ctx: ClientRoundContext) -> None:
        ctx.scratch["xi"] = self._xi(ctx)
        # The historical anchor lives in whichever representation this run's
        # workers use; states crossing between plane-backed and tree runs
        # are converted once per round here, never once per batch.
        hist = ctx.state.get("historical")
        if ctx.has_flat():
            if hist is not None and not isinstance(hist, np.ndarray):
                hist = as_flat(hist)
            ctx.scratch["hist_flat"] = hist
        elif isinstance(hist, np.ndarray):
            ctx.state["historical"] = [
                chunk.copy() for chunk in unflatten_like(hist, ctx.global_weights)
            ]

    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        """Algorithm 1 line 7: h += mu((w - w_glob) + xi(w_hist - w))."""
        mu = ctx.scratch.get("mu", self.mu)
        if mu == 0.0:
            return
        xi = ctx.scratch["xi"]
        if ctx.has_flat():
            grads, w, gw = ctx.flat_grads, ctx.flat_weights, ctx.global_flat
            hist = ctx.scratch.get("hist_flat")
            if xi > 0.0 and hist is not None:
                grads += mu * ((w - gw) + xi * (hist - w))
                ctx.extra_flops += 4.0 * ctx.n_params
            else:
                grads += mu * (w - gw)
                ctx.extra_flops += 2.0 * ctx.n_params
            return
        hist = ctx.state.get("historical")
        params = ctx.model.parameters()
        if xi > 0.0 and hist is not None:
            for p, gw, hw in zip(params, ctx.global_weights, hist):
                p.grad += mu * ((p.data - gw) + xi * (hw - p.data))
            ctx.extra_flops += 4.0 * ctx.n_params
        else:
            for p, gw in zip(params, ctx.global_weights):
                p.grad += mu * (p.data - gw)
            ctx.extra_flops += 2.0 * ctx.n_params

    def on_round_end(self, ctx: ClientRoundContext) -> None:
        # The freshly trained local model (paper) — or, under the ablation,
        # the received global model — becomes the historical anchor for this
        # client's next participation.  Plane-backed workers snapshot the
        # whole model with one flat copy.
        if ctx.has_flat():
            source = ctx.flat_weights if self.historical_source == "last-local" else ctx.global_flat
            ctx.state["historical"] = source.copy()
        elif self.historical_source == "last-local":
            ctx.state["historical"] = tree_copy(ctx.model.weight_refs())
        else:
            ctx.state["historical"] = tree_copy(ctx.global_weights)
        ctx.state["last_round"] = ctx.round_idx

    # ---------------- cost model ----------------
    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        return 4.0 * n_params  # Table VIII: 4K|w| per round with K iterations

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "model regularization + historical information",
            "information_utilization": "sufficient",
            "resource_cost": "low",
        }
