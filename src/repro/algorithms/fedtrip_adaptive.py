"""Adaptive-mu FedTrip — the paper's future-work direction, implemented.

The conclusion of the paper defers "the influence of xi" and mu tuning to
future work; Fig. 7 shows the accuracy/convergence trade-off is sensitive
to mu.  This extension applies the adaptive-penalty heuristic from the
FedProx paper (increase the penalty when the aggregate objective worsens,
relax it when training is progressing) to FedTrip's mu:

* after each round, compare the mean client training loss to the previous
  round's;
* loss went up (training destabilising) -> ``mu *= growth`` (clamped to
  ``mu_max``), strengthening the consistency pull;
* loss went down for ``patience`` consecutive rounds -> ``mu /= growth``
  (clamped to ``mu_min``), freeing clients to explore.

The adapted mu is broadcast with the round payload, so it costs nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import ClientRoundContext
from repro.algorithms.fedtrip import FedTrip
from repro.fl.types import ClientUpdate, FLConfig

__all__ = ["AdaptiveFedTrip"]


class AdaptiveFedTrip(FedTrip):
    name = "fedtrip_adaptive"

    def __init__(
        self,
        mu: float = 0.4,
        mu_min: float = 0.01,
        mu_max: float = 2.5,
        growth: float = 1.5,
        patience: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(mu=mu, **kwargs)
        if not 0 < mu_min <= mu <= mu_max:
            raise ValueError("need 0 < mu_min <= mu <= mu_max")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.mu_min = float(mu_min)
        self.mu_max = float(mu_max)
        self.growth = float(growth)
        self.patience = int(patience)

    # ---------------- server ----------------
    def server_init(self, global_weights, config: FLConfig) -> Dict[str, Any]:
        return {"mu": self.mu, "prev_loss": None, "good_streak": 0}

    def server_broadcast(self, server_state: Dict[str, Any], round_idx: int) -> Dict[str, Any]:
        return {"mu": server_state["mu"]}

    def post_aggregate(
        self,
        new_weights: List[np.ndarray],
        old_weights: List[np.ndarray],
        updates: Sequence[ClientUpdate],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        loss = float(np.mean([u.train_loss for u in updates]))
        prev = server_state["prev_loss"]
        if prev is not None:
            if loss > prev * 1.001:  # objective worsened -> tighten
                server_state["mu"] = min(server_state["mu"] * self.growth, self.mu_max)
                server_state["good_streak"] = 0
            else:
                server_state["good_streak"] += 1
                if server_state["good_streak"] >= self.patience:
                    server_state["mu"] = max(server_state["mu"] / self.growth, self.mu_min)
                    server_state["good_streak"] = 0
        server_state["prev_loss"] = loss
        return new_weights

    # ---------------- client ----------------
    def on_round_start(self, ctx: ClientRoundContext) -> None:
        super().on_round_start(ctx)
        # Use the server-adapted mu for this round (fall back to static);
        # FedTrip.modify_gradients reads it from scratch, so the adaptive
        # variant inherits both the fused flat path and the tree fallback.
        ctx.scratch["mu"] = float(ctx.server_broadcast.get("mu", self.mu))

    def describe(self) -> Dict[str, Any]:
        base = super().describe()
        base["name"] = self.name
        base["family"] = "model regularization + historical information (adaptive mu)"
        return base
