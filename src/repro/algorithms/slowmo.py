"""SlowMo — slow momentum at the server (Wang et al., 2019).

Clients run plain SGD (the paper pairs SlowMo with SGD); the server treats
the average client displacement as a pseudo-gradient and applies heavy-ball
momentum to it::

    d_t = (w_glob - mean(w_k)) / lr          # pseudo-gradient
    u_t = beta * u_{t-1} + d_t
    w_glob <- w_glob - slow_lr * lr * u_t

With ``beta=0, slow_lr=1`` this reduces exactly to FedAvg (a property the
tests pin down).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import Strategy
from repro.fl.aggregation import fedavg_aggregate
from repro.fl.types import ClientUpdate, FLConfig

__all__ = ["SlowMo"]


class SlowMo(Strategy):
    name = "slowmo"
    local_optimizer = "sgd"

    def __init__(self, beta: float = 0.5, slow_lr: float = 1.0) -> None:
        if not 0 <= beta < 1:
            raise ValueError("beta must be in [0, 1)")
        if slow_lr <= 0:
            raise ValueError("slow_lr must be positive")
        self.beta = float(beta)
        self.slow_lr = float(slow_lr)

    def server_init(self, global_weights, config: FLConfig) -> Dict[str, Any]:
        return {"u": [np.zeros_like(w) for w in global_weights]}

    def post_aggregate(
        self,
        new_weights: List[np.ndarray],
        old_weights: List[np.ndarray],
        updates: Sequence[ClientUpdate],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        u = server_state["u"]
        lr = config.lr
        out: List[np.ndarray] = []
        for i, (new, old) in enumerate(zip(new_weights, old_weights)):
            d = (old - new) / lr
            u[i] = self.beta * u[i] + d
            out.append(old - self.slow_lr * lr * u[i])
        return out

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "server momentum",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }
