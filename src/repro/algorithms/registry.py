"""Name-based strategy construction with paper-default hyperparameters."""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.algorithms.base import Strategy
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedprox import FedProx
from repro.algorithms.fedtrip import FedTrip
from repro.algorithms.moon import MOON
from repro.algorithms.feddyn import FedDyn
from repro.algorithms.slowmo import SlowMo
from repro.algorithms.scaffold import SCAFFOLD
from repro.algorithms.feddane import FedDANE
from repro.algorithms.mimelite import MimeLite
from repro.algorithms.fedgkd import FedGKD
from repro.algorithms.fednova import FedNova
from repro.algorithms.fedavgm import FedAvgM
from repro.algorithms.fedtrip_adaptive import AdaptiveFedTrip
from repro.algorithms.fedbn import FedBN

__all__ = [
    "STRATEGY_CLASSES",
    "PAPER_EVALUATED",
    "build_strategy",
    "available_strategies",
    "paper_defaults",
]

STRATEGY_CLASSES: Dict[str, Callable[..., Strategy]] = {
    "fedavg": FedAvg,
    "fedprox": FedProx,
    "fedtrip": FedTrip,
    "moon": MOON,
    "feddyn": FedDyn,
    "slowmo": SlowMo,
    "scaffold": SCAFFOLD,
    "feddane": FedDANE,
    "mimelite": MimeLite,
    "fedgkd": FedGKD,
    "fednova": FedNova,
    "fedavgm": FedAvgM,
    "fedtrip_adaptive": AdaptiveFedTrip,
    "fedbn": FedBN,
}

#: The six methods the paper's evaluation compares (Tables IV-VII, Figs. 5-7).
PAPER_EVALUATED = ("fedtrip", "fedavg", "fedprox", "slowmo", "moon", "feddyn")


def paper_defaults(name: str, model: str = "cnn", dataset: str = "mnist") -> Dict[str, Any]:
    """Hyperparameters from Sec. V-A.

    FedTrip: mu=1.0 on MLP, 0.4 otherwise.  FedProx: mu=0.1.
    MOON: mu=1, tau=0.5.  FedDyn: alpha=1 on MNIST, 0.1 otherwise.
    """
    key = name.lower()
    if key in ("fedtrip", "fedtrip_adaptive"):
        return {"mu": 1.0 if model == "mlp" else 0.4}
    if key == "fedprox":
        return {"mu": 0.1}
    if key == "moon":
        return {"mu": 1.0, "temperature": 0.5}
    if key == "feddyn":
        return {"alpha": 1.0 if "mnist" == dataset.replace("mini_", "") else 0.1}
    return {}


def build_strategy(name: str, model: str = "cnn", dataset: str = "mnist", **overrides) -> Strategy:
    """Build a strategy by name with paper-default hyperparameters.

    Keyword overrides replace defaults, e.g. ``build_strategy("fedtrip", mu=0.8)``.
    """
    key = name.lower()
    if key not in STRATEGY_CLASSES:
        raise KeyError(f"unknown strategy {name!r}; available: {available_strategies()}")
    kwargs = paper_defaults(key, model=model, dataset=dataset)
    kwargs.update(overrides)
    return STRATEGY_CLASSES[key](**kwargs)


def available_strategies() -> Tuple[str, ...]:
    return tuple(sorted(STRATEGY_CLASSES))
