"""FedDyn — federated learning with dynamic regularization (Acar et al., ICLR 2021).

Each client maintains a linear correction ``h_k`` (its accumulated gradient
residual).  The local objective is

``F_k(w) - <h_k, w> + (alpha/2)||w - w_glob||^2``

so the local gradient is ``g - h_k + alpha (w - w_glob)``.  After training,
``h_k <- h_k - alpha (w_k - w_glob)``.  The server keeps the running mean
``h`` of all clients' corrections and sets the next global model to
``mean(w_k) - h/alpha``, which makes local optima asymptotically consistent
with the global optimum.  Runs on plain SGD per the paper's setup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.fl.aggregation import fedavg_aggregate
from repro.fl.params import as_flat
from repro.fl.types import ClientUpdate, FLConfig
from repro.utils.vectorize import unflatten_like

__all__ = ["FedDyn"]


class FedDyn(Strategy):
    name = "feddyn"
    local_optimizer = "sgd"

    def __init__(self, alpha: float = 0.1) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)

    # ---------------- server ----------------
    def server_init(self, global_weights, config: FLConfig) -> Dict[str, Any]:
        return {"h": [np.zeros_like(w) for w in global_weights]}

    def aggregate(self, updates, global_weights, server_state, config) -> List[np.ndarray]:
        return fedavg_aggregate(updates)

    def post_aggregate(
        self,
        new_weights: List[np.ndarray],
        old_weights: List[np.ndarray],
        updates: Sequence[ClientUpdate],
        server_state: Dict[str, Any],
        config: FLConfig,
    ) -> List[np.ndarray]:
        h = server_state["h"]
        scale = self.alpha * len(updates) / config.n_clients
        for i, (new, old) in enumerate(zip(new_weights, old_weights)):
            h[i] = h[i] - scale * (new - old)
        return [new - hk / self.alpha for new, hk in zip(new_weights, h)]

    # ---------------- client ----------------
    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return {"h_k": None}

    def on_round_start(self, ctx: ClientRoundContext) -> None:
        # The correction lives in whichever representation this run's
        # workers use: one (P,) vector on the flat path, per-layer arrays on
        # the fallback.  States crossing between the two (e.g. resumed from
        # a differently-configured run) are converted once per round here.
        h_k = ctx.state["h_k"]
        if ctx.has_flat():
            if h_k is None:
                ctx.state["h_k"] = np.zeros_like(ctx.global_flat)
            elif not isinstance(h_k, np.ndarray):
                ctx.state["h_k"] = as_flat(h_k)
        else:
            if h_k is None:
                ctx.state["h_k"] = [np.zeros_like(w) for w in ctx.global_weights]
            elif isinstance(h_k, np.ndarray):
                ctx.state["h_k"] = [
                    chunk.copy() for chunk in unflatten_like(h_k, ctx.global_weights)
                ]

    def modify_gradients(self, ctx: ClientRoundContext) -> None:
        h_k = ctx.state["h_k"]
        if ctx.has_flat():
            grads = ctx.flat_grads
            grads += self.alpha * (ctx.flat_weights - ctx.global_flat) - h_k
        else:
            for p, gw, hk in zip(ctx.model.parameters(), ctx.global_weights, h_k):
                p.grad += self.alpha * (p.data - gw) - hk
        ctx.extra_flops += 4.0 * ctx.n_params

    def on_round_end(self, ctx: ClientRoundContext) -> None:
        h_k = ctx.state["h_k"]
        if ctx.has_flat():
            h_k -= self.alpha * (ctx.flat_weights - ctx.global_flat)
            return
        for i, (p, gw) in enumerate(zip(ctx.model.parameters(), ctx.global_weights)):
            h_k[i] = h_k[i] - self.alpha * (p.data - gw)
        ctx.state["h_k"] = [np.asarray(h) for h in h_k]

    def attach_flops_per_iteration(self, n_params: int, batch_size: int, fp_flops: float) -> float:
        return 4.0 * n_params  # Table VIII: 4K|w|

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": "model regularization",
            "information_utilization": "insufficient",
            "resource_cost": "low",
        }
