"""Server abstraction: global weights + strategy server state."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.fl.types import ClientUpdate, FLConfig
from repro.utils.logging import get_logger
from repro.utils.vectorize import tree_copy

__all__ = ["Server"]

_log = get_logger("fl.server")


class Server:
    """Holds the global model weights and runs strategy server hooks.

    The server never owns a live model object — only the weight tree — which
    keeps aggregation independent of layer implementations and mirrors the
    paper's "transmit the global model / aggregate uploaded models" protocol.
    """

    def __init__(self, initial_weights: List[np.ndarray], strategy, config: FLConfig) -> None:
        self.weights: List[np.ndarray] = tree_copy(initial_weights)
        self.strategy = strategy
        self.config = config
        self.state: Dict[str, Any] = strategy.server_init(self.weights, config)
        self.round_idx = 0
        self.skipped_rounds = 0

    @property
    def n_params(self) -> int:
        return int(sum(w.size for w in self.weights))

    def broadcast_payload(self) -> Dict[str, Any]:
        """Extra state shipped alongside the model (e.g. SCAFFOLD's c)."""
        return self.strategy.server_broadcast(self.state, self.round_idx)

    def run_preamble(self, preambles: Dict[int, Dict[str, Any]]) -> None:
        self.strategy.server_preamble(self.state, preambles, self.weights, self.round_idx)

    @staticmethod
    def _finite(update: ClientUpdate) -> bool:
        return all(np.isfinite(w).all() for w in update.weights)

    def partition_finite(self, updates: Sequence[ClientUpdate]) -> List[ClientUpdate]:
        """The non-finite drop policy, shared by every aggregation path
        (synchronous rounds and the async engine's mixing): return the
        healthy updates, logging any dropped client ids."""
        healthy = [u for u in updates if self._finite(u)]
        if len(healthy) < len(updates):
            bad = sorted(u.client_id for u in updates if not self._finite(u))
            _log.warning("round %d: dropping %d non-finite client update(s): %s",
                         self.round_idx, len(updates) - len(healthy), bad)
        return healthy

    def skip_round(self) -> None:
        """Abandon the current aggregation (every update was bad): keep the
        global model, count the event, and advance the version."""
        _log.error("round %d: every client update was non-finite; "
                   "keeping previous global model", self.round_idx)
        self.skipped_rounds += 1
        self.round_idx += 1

    def apply_updates(self, updates: Sequence[ClientUpdate]) -> None:
        """Aggregate (Eq. 2) then let the strategy post-process, in place.

        Non-finite client updates (NaN/inf from a diverged or faulty
        client) are dropped before aggregation — one bad client must not
        poison the global model.  If *every* update is bad the round is
        skipped entirely (the global model is kept), mirroring production
        FL servers that abandon a failed round rather than crash the job;
        :attr:`skipped_rounds` counts these events.
        """
        if not updates:
            raise ValueError("cannot aggregate an empty update set")
        healthy = self.partition_finite(updates)
        if not healthy:
            self.skip_round()
            return
        old = self.weights
        new = self.strategy.aggregate(healthy, old, self.state, self.config)
        new = self.strategy.post_aggregate(new, old, healthy, self.state, self.config)
        self.weights = [np.asarray(w, dtype=old[i].dtype) for i, w in enumerate(new)]
        self.round_idx += 1
