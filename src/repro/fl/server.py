"""Server abstraction: global weights + strategy server state."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.fl.aggregation import aggregation_block
from repro.fl.params import ParamPlane
from repro.fl.robust.aggregators import RobustAggregator, robust_aggregate
from repro.fl.types import ClientUpdate, FLConfig
from repro.utils.logging import get_logger

__all__ = ["Server"]

_log = get_logger("fl.server")


class Server:
    """Holds the global model weights and runs strategy server hooks.

    The server never owns a live model object — only the weight state —
    which keeps aggregation independent of layer implementations and mirrors
    the paper's "transmit the global model / aggregate uploaded models"
    protocol.

    Since the flat-parameter refactor the weight state is one contiguous
    buffer (:class:`~repro.fl.params.ParamPlane`): :attr:`weights` exposes
    stable per-layer views into it, and each aggregation writes the buffer
    in place — broadcast consumers (executors, evaluation) alias the same
    memory round after round instead of chasing freshly allocated trees.
    Strategy hooks keep receiving/returning plain lists of arrays; anything
    needing a snapshot across rounds copies explicitly (as they all did
    already, since the old code also rebound ``weights`` every round).
    """

    def __init__(
        self,
        initial_weights: List[np.ndarray],
        strategy,
        config: FLConfig,
        aggregator: Optional[RobustAggregator] = None,
        agg_block_size: Optional[int] = None,
    ) -> None:
        if agg_block_size is not None and int(agg_block_size) < 1:
            raise ValueError(
                f"agg_block_size must be >= 1, got {agg_block_size}")
        if (
            agg_block_size is not None
            and aggregator is not None
            and aggregator.requires_full_matrix
        ):
            # Decided once at build time (the spec funnels every construction
            # through here): rules reducing over coordinate order statistics
            # or pairwise geometry have no streaming formulation, so the
            # block size would be silently ignored — per the spec-validation
            # philosophy, a knob that does nothing is an error.
            raise ValueError(
                f"aggregator {aggregator.name!r} requires the full stacked "
                "(K, P) matrix and cannot stream in blocks; drop "
                "agg_block_size or use a streaming-capable rule ('mean')"
            )
        self.agg_block_size = None if agg_block_size is None else int(agg_block_size)
        if aggregator is not None:
            from repro.algorithms.base import Strategy

            if type(strategy).aggregate is not Strategy.aggregate:
                raise ValueError(
                    f"robust aggregator {aggregator.name!r} would silently "
                    f"override {type(strategy).__name__}.aggregate; robust "
                    "aggregation composes only with strategies that use the "
                    "default weighted mean"
                )
        self.plane = ParamPlane.from_tree(initial_weights)
        self.strategy = strategy
        self.config = config
        self.aggregator = aggregator
        self.state: Dict[str, Any] = strategy.server_init(self.weights, config)
        self.round_idx = 0
        self.skipped_rounds = 0
        # Per-round report, reset at the top of every aggregation attempt
        # and read by the engines' _phase_record: which clients the
        # finite-check dropped, which the robust rule screened, and whether
        # the round was skipped outright.
        self.last_dropped: List[int] = []
        self.last_screened: List[int] = []
        self.last_skipped = False
        self.last_skip_reason: Optional[str] = None

    @property
    def weights(self) -> List[np.ndarray]:
        """Per-layer views into the flat global buffer (stable identity)."""
        return self.plane.tree

    @weights.setter
    def weights(self, tree: Sequence[np.ndarray]) -> None:
        self.plane.copy_from_tree(tree)

    @property
    def flat_weights(self) -> np.ndarray:
        """The global model as one flat vector (aliases :attr:`weights`)."""
        if self.plane.flat is None:  # pragma: no cover - models are uniform f32
            raise ValueError("global weights have mixed dtypes; no flat view")
        return self.plane.flat

    @property
    def n_params(self) -> int:
        return self.plane.n_params

    def broadcast_payload(self) -> Dict[str, Any]:
        """Extra state shipped alongside the model (e.g. SCAFFOLD's c)."""
        return self.strategy.server_broadcast(self.state, self.round_idx)

    def run_preamble(self, preambles: Dict[int, Dict[str, Any]]) -> None:
        self.strategy.server_preamble(self.state, preambles, self.weights, self.round_idx)

    @staticmethod
    def _finite(update: ClientUpdate) -> bool:
        flat = update.flat_vector()
        if flat is not None:
            return bool(np.isfinite(flat).all())
        return all(np.isfinite(w).all() for w in update.weights)

    def reset_report(self) -> None:
        """Clear the per-round report fields before an aggregation attempt."""
        self.last_dropped = []
        self.last_screened = []
        self.last_skipped = False
        self.last_skip_reason = None

    def partition_finite(self, updates: Sequence[ClientUpdate]) -> List[ClientUpdate]:
        """The non-finite drop policy, shared by every aggregation path
        (synchronous rounds and the async engine's mixing): return the
        healthy updates, recording dropped client ids on
        :attr:`last_dropped` (surfaced in the round's History record) and
        logging them.  Each update's verdict is computed exactly once."""
        verdicts = [self._finite(u) for u in updates]
        healthy = [u for u, ok in zip(updates, verdicts) if ok]
        if len(healthy) < len(updates):
            bad = sorted(u.client_id for u, ok in zip(updates, verdicts) if not ok)
            self.last_dropped.extend(bad)
            _log.warning("round %d: dropping %d non-finite client update(s): %s",
                         self.round_idx, len(updates) - len(healthy), bad)
        return healthy

    def skip_round(self, reason: str = "non_finite") -> None:
        """Abandon the current aggregation: keep the global model, count the
        event, record why (``"non_finite"`` — every surviving update was
        bad; ``"quorum"`` — too few clients reported under the failure
        policy; ``"no_updates"`` — nobody reported at all), and advance the
        version."""
        _log.error("round %d: skipping aggregation (%s); "
                   "keeping previous global model", self.round_idx, reason)
        self.skipped_rounds += 1
        self.last_skipped = True
        self.last_skip_reason = reason
        self.round_idx += 1

    def apply_updates(self, updates: Sequence[ClientUpdate]) -> None:
        """Aggregate (Eq. 2) then let the strategy post-process, in place.

        Non-finite client updates (NaN/inf from a diverged or faulty
        client) are dropped before aggregation — one bad client must not
        poison the global model.  If *every* update is bad the round is
        skipped entirely (the global model is kept), mirroring production
        FL servers that abandon a failed round rather than crash the job;
        :attr:`skipped_rounds` counts these events.

        With a robust :class:`~repro.fl.robust.aggregators.RobustAggregator`
        attached, the strategy's ``aggregate`` hook is replaced by the
        robust reduction over the stacked ``(K, P)`` matrix; clients the
        rule screens out are recorded on :attr:`last_screened` and excluded
        from the ``post_aggregate`` hook's update list.
        """
        if not updates:
            raise ValueError("cannot aggregate an empty update set")
        self.reset_report()
        healthy = self.partition_finite(updates)
        if not healthy:
            self.skip_round()
            return
        old = self.weights
        if self.aggregator is not None:
            flat = self.plane.flat
            new, screened = robust_aggregate(
                self.aggregator, healthy, old, global_flat=flat
            )
            if screened:
                self.last_screened = screened
                _log.info("round %d: %s screened client(s): %s",
                          self.round_idx, self.aggregator.name, screened)
                accepted = [u for u in healthy if u.client_id not in set(screened)]
            else:
                accepted = healthy
            new = self.strategy.post_aggregate(new, old, accepted, self.state, self.config)
        else:
            # Pin the configured streaming block size for the strategy's
            # whole reduction (aggregate + post-process) — the thread-local
            # context reaches every weighted_average_trees call underneath,
            # whichever strategy is running.  None is transparent, deferring
            # to any ambient default (e.g. the test suite's
            # --agg-block-size); the result is byte-identical either way.
            with aggregation_block(self.agg_block_size):
                new = self.strategy.aggregate(healthy, old, self.state, self.config)
                new = self.strategy.post_aggregate(new, old, healthy, self.state, self.config)
        # One in-place write of the flat buffer; the views every consumer
        # holds update with it.  (``new`` never partially aliases the plane:
        # strategies return either fresh arrays or the plane's own views,
        # and copyto handles the latter as a no-op.)
        self.plane.copy_from_tree(new)
        self.round_idx += 1
