"""Client availability simulation: dropout, churn and diurnal patterns.

Real federations lose clients mid-round (battery, network, user activity).
These samplers wrap a base selection policy with an availability process so
the robustness of staleness-based methods (FedTrip's xi grows when clients
are unavailable for long stretches) can be studied:

* :class:`DropoutSampler` — every selected client independently fails to
  report with probability ``dropout``; the server re-samples replacements
  from the available pool (so the round still trains K clients when
  possible, mirroring production FL systems' over-provisioning).
* :class:`DiurnalSampler` — each client is only *available* during its own
  activity window of the round cycle, creating structured long staleness
  gaps.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.rng import RngStream

__all__ = ["DropoutSampler", "DiurnalSampler"]


class DropoutSampler:
    """Uniform K-of-N sampling with i.i.d. per-selection dropout.

    The effective participation rate drops from K/N toward
    ``K/N * (1 - dropout)`` when the pool is too small to re-sample, and
    stays ~K/N otherwise (replacements).  At least one client is always
    returned (a round with zero updates would deadlock synchronous FL, so
    the "last" client is retried until success — matching systems that
    extend the round deadline).
    """

    def __init__(
        self,
        n_clients: int,
        clients_per_round: int,
        dropout: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 1 <= clients_per_round <= n_clients:
            raise ValueError("need 1 <= clients_per_round <= n_clients")
        if not 0 <= dropout < 1:
            raise ValueError("dropout must be in [0, 1)")
        self.n_clients = n_clients
        self.clients_per_round = clients_per_round
        self.dropout = float(dropout)
        self._root = RngStream(seed).child("dropout-sampler")

    @property
    def participation_rate(self) -> float:
        return self.clients_per_round / self.n_clients

    def select(self, round_idx: int) -> List[int]:
        rng = self._root.child(round_idx).generator
        order = rng.permutation(self.n_clients)
        chosen: List[int] = []
        for cid in order:
            if len(chosen) == self.clients_per_round:
                break
            if rng.random() >= self.dropout:
                chosen.append(int(cid))
        if not chosen:  # extreme dropout: keep the round alive
            chosen.append(int(order[0]))
        return sorted(chosen)


class DiurnalSampler:
    """Clients are available only in their phase window of a round cycle.

    Clients are assigned evenly to ``phases`` groups; group g is available
    during rounds where ``(round // window) % phases == g``.  Selection is
    uniform K-of-available.  With few phases this mimics timezone-driven
    availability and produces staleness gaps of ~``window * (phases - 1)``
    rounds — a stress test for FedTrip's staleness-scaled push.
    """

    def __init__(
        self,
        n_clients: int,
        clients_per_round: int,
        phases: int = 2,
        window: int = 5,
        seed: int = 0,
    ) -> None:
        if phases < 1 or window < 1:
            raise ValueError("phases and window must be positive")
        if not 1 <= clients_per_round <= n_clients // phases:
            raise ValueError("clients_per_round exceeds per-phase availability")
        self.n_clients = n_clients
        self.clients_per_round = clients_per_round
        self.phases = int(phases)
        self.window = int(window)
        self._root = RngStream(seed).child("diurnal-sampler")

    @property
    def participation_rate(self) -> float:
        return self.clients_per_round / self.n_clients

    def available(self, round_idx: int) -> List[int]:
        phase = (round_idx // self.window) % self.phases
        return [c for c in range(self.n_clients) if c % self.phases == phase]

    def select(self, round_idx: int) -> List[int]:
        pool = self.available(round_idx)
        rng = self._root.child(round_idx).generator
        picks = rng.choice(len(pool), size=self.clients_per_round, replace=False)
        return sorted(pool[i] for i in picks)
