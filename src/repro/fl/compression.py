"""Update compression: quantization and sparsification (extension).

The paper's introduction motivates FL partly by communication overhead;
a natural companion to FedTrip's round-count reduction is per-round payload
reduction.  This module provides the two standard lossy compressors used
in the FL literature, applied to the *update* (w_k - w_glob) rather than
the raw weights (updates are near-zero-centred, which both schemes need):

* :class:`QuantizationCompressor` — uniform stochastic quantization to
  ``bits`` bits per element (QSGD-style), unbiased;
* :class:`TopKCompressor` — keep the largest-|.|.| fraction of entries,
  biased but very sparse.

Compressors transform a weight tree into a (payload, bytes) pair and back.
They compose with any Strategy by wrapping aggregation at the simulation
boundary; see ``CompressedExchange``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.fl.params import as_flat
from repro.utils.vectorize import flatten_arrays, unflatten_like

__all__ = ["QuantizationCompressor", "TopKCompressor", "CompressedExchange"]


class QuantizationCompressor:
    """Unbiased uniform stochastic quantization of a flat update vector.

    Each entry is scaled into ``[0, 2^bits - 1]`` levels of its tree-wide
    max-abs range and rounded stochastically so E[decode(encode(x))] = x.
    """

    def __init__(self, bits: int = 8, seed: int = 0) -> None:
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        self.bits = int(bits)
        self._rng = np.random.default_rng(seed)

    @property
    def levels(self) -> int:
        return (1 << self.bits) - 1

    def encode_flat(self, flat: np.ndarray) -> Tuple[dict, float]:
        """Quantize one flat update vector (the native entry point)."""
        flat = np.asarray(flat, dtype=np.float64)
        scale = float(np.max(np.abs(flat))) if flat.size else 0.0
        if scale == 0.0:
            q = np.zeros(flat.size, dtype=np.uint16)
        else:
            norm = (flat / scale + 1.0) / 2.0 * self.levels  # [0, levels]
            lo = np.floor(norm)
            q = (lo + (self._rng.random(flat.size) < (norm - lo))).astype(np.uint16)
        payload = {"q": q, "scale": scale, "bits": self.bits}
        nbytes = flat.size * self.bits / 8.0 + 8
        return payload, nbytes

    def decode_flat(self, payload: dict) -> np.ndarray:
        """Dequantize back to one float32 flat vector."""
        q = payload["q"].astype(np.float64)
        flat = (q / self.levels * 2.0 - 1.0) * payload["scale"]
        return flat.astype(np.float32)

    def encode(self, tree: Sequence[np.ndarray]) -> Tuple[dict, float]:
        return self.encode_flat(flatten_arrays(tree))

    def decode(self, payload: dict, template: Sequence[np.ndarray]) -> List[np.ndarray]:
        return [a.astype(np.float32) for a in unflatten_like(self.decode_flat(payload), template)]


class TopKCompressor:
    """Magnitude top-k sparsification of a flat update vector."""

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)

    def encode_flat(self, flat: np.ndarray) -> Tuple[dict, float]:
        """Sparsify one flat update vector (the native entry point)."""
        k = max(1, int(round(self.fraction * flat.size)))
        idx = np.argpartition(np.abs(flat), -k)[-k:]
        payload = {"idx": idx.astype(np.int64), "val": flat[idx], "size": flat.size}
        nbytes = k * (4 + 4)  # 4-byte index + float32 value per entry
        return payload, float(nbytes)

    def decode_flat(self, payload: dict) -> np.ndarray:
        """Scatter the kept entries back into a dense float32 flat vector."""
        flat = np.zeros(payload["size"], dtype=np.float32)
        flat[payload["idx"]] = payload["val"]
        return flat

    def encode(self, tree: Sequence[np.ndarray]) -> Tuple[dict, float]:
        return self.encode_flat(flatten_arrays(tree))

    def decode(self, payload: dict, template: Sequence[np.ndarray]) -> List[np.ndarray]:
        return unflatten_like(self.decode_flat(payload), template)


@dataclass
class CompressedExchange:
    """Round-trip an update tree through a compressor.

    ``apply(update_tree) -> (reconstructed_tree, bytes_on_wire)``.  Used by
    benches/examples to quantify the accuracy/bytes trade-off; integrating
    lossy exchange into the main Simulation is intentionally explicit (the
    paper's methods are all full-precision).
    """

    compressor: object

    def apply(self, tree: Sequence[np.ndarray]) -> Tuple[List[np.ndarray], float]:
        payload, nbytes = self.compressor.encode(tree)
        return self.compressor.decode(payload, tree), nbytes


class CompressedUploadWrapper:
    """Decorate any Strategy so client *uploads* go through a compressor.

    The server reconstructs ``w_g + decode(encode(w_k - w_g))`` before the
    base strategy's aggregation, and each update's ``comm_bytes`` is
    re-charged as downlink(full model) + uplink(compressed payload) — the
    standard FL compression deployment (downlink broadcast stays full
    precision).  Composes with FedAvg/FedProx/FedTrip/...

    Import-cycle note: Strategy lives in ``repro.algorithms.base``, which
    imports ``repro.fl.aggregation``; this class therefore duck-types the
    Strategy interface instead of subclassing it.
    """

    def __init__(self, base, compressor) -> None:
        self.base = base
        self.compressor = compressor
        self.name = f"compressed({base.name})"
        self.local_optimizer = base.local_optimizer
        self.needs_preamble = base.needs_preamble

    # Forwarded hooks ------------------------------------------------------
    def server_init(self, global_weights, config):
        return self.base.server_init(global_weights, config)

    def server_broadcast(self, server_state, round_idx):
        return self.base.server_broadcast(server_state, round_idx)

    def server_preamble(self, server_state, preambles, global_weights, round_idx):
        return self.base.server_preamble(server_state, preambles, global_weights, round_idx)

    def client_preamble(self, ctx, full_grad):
        return self.base.client_preamble(ctx, full_grad)

    def init_client_state(self, client_id):
        return self.base.init_client_state(client_id)

    def on_round_start(self, ctx):
        self.base.on_round_start(ctx)

    def local_step(self, ctx, xb, yb):
        return self.base.local_step(ctx, xb, yb)

    def modify_gradients(self, ctx):
        self.base.modify_gradients(ctx)

    def on_round_end(self, ctx):
        self.base.on_round_end(ctx)

    def extra_comm_units(self):
        return self.base.extra_comm_units()

    def attach_flops_per_iteration(self, n_params, batch_size, fp_flops):
        return self.base.attach_flops_per_iteration(n_params, batch_size, fp_flops)

    def post_aggregate(self, new_weights, old_weights, updates, server_state, config):
        return self.base.post_aggregate(new_weights, old_weights, updates, server_state, config)

    def describe(self):
        d = self.base.describe()
        d["name"] = self.name
        d["compression"] = type(self.compressor).__name__
        return d

    # The compression boundary ----------------------------------------------
    def aggregate(self, updates, global_weights, server_state, config):
        from repro.fl.types import ClientUpdate  # local import, no cycle

        n_params = sum(w.size for w in global_weights)
        # Flat fast path: the round-trip (delta -> encode -> decode ->
        # reconstruct) is four vector expressions per update; the per-layer
        # loop remains as the mixed-dtype fallback.
        g_flat = as_flat(global_weights)
        shapes = [np.shape(g) for g in global_weights]
        reconstructed = []
        for u in updates:
            u_flat = u.flat_vector()
            if g_flat is not None and u_flat is not None:
                payload, nbytes = self.compressor.encode_flat(u_flat - g_flat)
                back = self.compressor.decode_flat(payload).astype(g_flat.dtype)
                back += g_flat
                u.comm_bytes = n_params * 4.0 + float(nbytes)
                reconstructed.append(
                    ClientUpdate.from_flat(
                        back,
                        shapes,
                        client_id=u.client_id,
                        num_samples=u.num_samples,
                        train_loss=u.train_loss,
                        extras=u.extras,
                        flops=u.flops,
                        comm_bytes=u.comm_bytes,
                    )
                )
                continue
            delta = [w - g for w, g in zip(u.weights, global_weights)]
            payload, nbytes = self.compressor.encode(delta)
            back = self.compressor.decode(payload, delta)
            # Re-charge the original update's communication so the history's
            # cost tracking reflects the compressed uplink (the simulation
            # reads these same objects for bookkeeping after aggregation).
            u.comm_bytes = n_params * 4.0 + float(nbytes)
            reconstructed.append(
                ClientUpdate(
                    client_id=u.client_id,
                    weights=[g + d for g, d in zip(global_weights, back)],
                    num_samples=u.num_samples,
                    train_loss=u.train_loss,
                    extras=u.extras,
                    flops=u.flops,
                    comm_bytes=u.comm_bytes,
                )
            )
        return self.base.aggregate(reconstructed, global_weights, server_state, config)
