"""System-level resource modelling: wall-clock time per round.

The paper measures resource efficiency in communication rounds and GFLOPs;
real deployments care about *time*.  This module converts the simulation's
measured per-client FLOPs and bytes into simulated wall-clock time under a
device/network model:

* each client k has a compute rating ``flops_per_second[k]`` and a link
  ``(bandwidth_bps[k], latency_s[k])``;
* a synchronous round takes ``max_k (compute_k + comm_k)`` plus server
  aggregation time (aggregation is |w|-linear and usually negligible);
* stragglers therefore dominate — the classic synchronous-FL effect, and
  the reason reducing *rounds* (FedTrip's goal) matters more than reducing
  per-round compute for slow-network deployments.

Profiles are deliberately simple named presets (wifi / 4g / iot) so benches
and examples can report "simulated hours to target accuracy".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.history import History
from repro.fl.types import ClientUpdate

__all__ = ["DeviceProfile", "NETWORK_PRESETS", "SystemModel", "RoundTime"]


@dataclass(frozen=True)
class DeviceProfile:
    """Compute + link characteristics of one client device."""

    flops_per_second: float      # sustained training throughput
    bandwidth_bps: float         # symmetric up/down link bandwidth
    latency_s: float = 0.05      # per-transfer latency

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0 or self.bandwidth_bps <= 0 or self.latency_s < 0:
            raise ValueError("invalid device profile")

    def compute_time(self, flops: float) -> float:
        return flops / self.flops_per_second

    def transfer_time(self, bytes_: float) -> float:
        # Down + up are charged by the caller via total bytes; latency is
        # paid twice (one round trip each way).
        return bytes_ * 8.0 / self.bandwidth_bps + 2.0 * self.latency_s


#: Named presets roughly matching common FL deployment studies.
NETWORK_PRESETS: Dict[str, DeviceProfile] = {
    # A desktop-class client on campus wifi.
    "wifi": DeviceProfile(flops_per_second=2e10, bandwidth_bps=50e6, latency_s=0.02),
    # A mid-range phone on 4G.
    "4g": DeviceProfile(flops_per_second=5e9, bandwidth_bps=10e6, latency_s=0.06),
    # A constrained IoT node on a shared uplink.
    "iot": DeviceProfile(flops_per_second=5e8, bandwidth_bps=1e6, latency_s=0.1),
}


@dataclass
class RoundTime:
    """Decomposed duration of one synchronous round."""

    round_idx: int
    compute_s: float        # slowest client's compute time
    comm_s: float           # slowest client's transfer time
    total_s: float
    straggler: int          # client id that set the pace


class SystemModel:
    """Maps measured per-round costs onto simulated wall-clock time.

    Parameters
    ----------
    profiles:
        One :class:`DeviceProfile` per client id, or a single profile used
        for everyone, or a preset name from :data:`NETWORK_PRESETS`.
    heterogeneity:
        Optional multiplicative compute-speed spread: client k's speed is
        scaled by a deterministic factor in ``[1/h, 1]`` (h >= 1), so some
        clients are up to h-times slower — the straggler knob.
    """

    def __init__(
        self,
        profiles,
        n_clients: int,
        heterogeneity: float = 1.0,
        seed: int = 0,
    ) -> None:
        if isinstance(profiles, str):
            profiles = NETWORK_PRESETS[profiles]
        if isinstance(profiles, DeviceProfile):
            profiles = [profiles] * n_clients
        profiles = list(profiles)
        if len(profiles) != n_clients:
            raise ValueError(f"need {n_clients} profiles, got {len(profiles)}")
        if heterogeneity < 1.0:
            raise ValueError("heterogeneity must be >= 1")
        rng = np.random.default_rng(seed)
        slow = rng.uniform(1.0 / heterogeneity, 1.0, size=n_clients)
        self.profiles: List[DeviceProfile] = [
            DeviceProfile(
                flops_per_second=p.flops_per_second * s,
                bandwidth_bps=p.bandwidth_bps,
                latency_s=p.latency_s,
            )
            for p, s in zip(profiles, slow)
        ]
        self.round_times: List[RoundTime] = []

    # ------------------------------------------------------------------
    def observe(self, updates: Sequence[ClientUpdate], global_weights,
                extra_s: float = 0.0) -> None:
        """Update-observer hook: compute this round's simulated duration.

        ``extra_s`` is additional simulated time the round spent outside
        client compute/transfer — injected straggler delays and retry
        backoff under the engine's failure policy — folded into the
        round's total so the virtual clock prices fault handling.
        """
        times = []
        for u in updates:
            prof = self.profiles[u.client_id]
            t = prof.compute_time(u.flops) + prof.transfer_time(u.comm_bytes)
            times.append((t, prof.compute_time(u.flops), prof.transfer_time(u.comm_bytes), u.client_id))
        if times:
            total, comp, comm, who = max(times)
        else:
            # A skipped round (quorum/no-updates): nobody reported, but the
            # cohort still burned the failure-handling time.
            total, comp, comm, who = 0.0, 0.0, 0.0, -1
        self.round_times.append(
            RoundTime(
                round_idx=len(self.round_times),
                compute_s=comp,
                comm_s=comm,
                total_s=total + float(extra_s),
                straggler=who,
            )
        )

    def attach(self, simulation) -> "SystemModel":
        simulation.update_observers.append(self.observe)
        return self

    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        return float(sum(rt.total_s for rt in self.round_times))

    def cumulative_seconds(self) -> np.ndarray:
        return np.cumsum([rt.total_s for rt in self.round_times])

    def time_to_accuracy(self, history: History, target: float) -> Optional[float]:
        """Simulated seconds until the global model first hits ``target``."""
        r = history.rounds_to_accuracy(target)
        if r is None:
            return None
        cum = self.cumulative_seconds()
        if r > len(cum):
            return None
        return float(cum[r - 1])

    def straggler_counts(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for rt in self.round_times:
            out[rt.straggler] = out.get(rt.straggler, 0) + 1
        return out

    def summary(self) -> Dict[str, float]:
        if not self.round_times:
            raise ValueError("no rounds observed")
        comp = [rt.compute_s for rt in self.round_times]
        comm = [rt.comm_s for rt in self.round_times]
        return {
            "total_seconds": self.total_seconds(),
            "mean_round_seconds": self.total_seconds() / len(self.round_times),
            "compute_fraction": float(np.sum(comp) / max(self.total_seconds(), 1e-12)),
            "comm_fraction": float(np.sum(comm) / max(self.total_seconds(), 1e-12)),
        }
