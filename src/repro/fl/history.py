"""Training history: the metric container every table/figure reads from.

* Table IV/VI need :meth:`History.rounds_to_accuracy` (communication rounds
  until the global model first reaches a target accuracy).
* Fig. 5 needs :meth:`History.ema_accuracy` (the paper smooths curves with an
  exponential moving average).
* Fig. 6 needs :meth:`History.final_accuracy_stats` (mean/quartiles over the
  last 10 rounds).
* Table V needs the cumulative FLOPs at the target-accuracy round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.fl.types import RoundRecord

__all__ = ["History"]


@dataclass
class History:
    """Ordered per-round records plus derived metrics.

    ``stop_reason`` is set by the engine when training ends before the
    configured round count (e.g. the ``EarlyStopping`` callback hit
    ``target_accuracy``); ``None`` means the loop ran to completion.
    """

    records: List[RoundRecord] = field(default_factory=list)
    stop_reason: Optional[str] = None

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_idx <= self.records[-1].round_idx:
            raise ValueError("round indices must be strictly increasing")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- raw series -----------------------------------------------------------
    def accuracies(self) -> np.ndarray:
        """Test accuracy per evaluated round (NaN where not evaluated)."""
        return np.array(
            [r.test_accuracy if r.test_accuracy is not None else np.nan for r in self.records],
            dtype=np.float64,
        )

    def rounds(self) -> np.ndarray:
        return np.array([r.round_idx for r in self.records], dtype=np.int64)

    def train_losses(self) -> np.ndarray:
        return np.array([r.mean_train_loss for r in self.records], dtype=np.float64)

    def flops(self) -> np.ndarray:
        return np.array([r.cumulative_flops for r in self.records], dtype=np.float64)

    def comm_bytes(self) -> np.ndarray:
        return np.array([r.cumulative_comm_bytes for r in self.records], dtype=np.float64)

    def virtual_times(self) -> np.ndarray:
        """Simulated seconds at each round's aggregation (NaN where no
        device/network model was attached)."""
        return np.array(
            [r.virtual_time_s if r.virtual_time_s is not None else np.nan
             for r in self.records],
            dtype=np.float64,
        )

    def staleness_values(self) -> np.ndarray:
        """Every measured per-update staleness, flattened across rounds."""
        out: List[float] = []
        for r in self.records:
            if r.update_staleness is not None:
                out.extend(float(s) for s in r.update_staleness)
        return np.array(out, dtype=np.float64)

    # -- aggregation health ---------------------------------------------------
    def skipped_rounds(self) -> int:
        """Rounds the server abandoned because every update was non-finite."""
        return sum(1 for r in self.records if r.round_skipped)

    def dropped_client_ids(self) -> List[int]:
        """Every id the finite-check shed, in round order (with repeats —
        a flapping client appears once per round it was dropped)."""
        out: List[int] = []
        for r in self.records:
            out.extend(r.dropped_clients)
        return out

    def screened_client_ids(self) -> List[int]:
        """Every id a robust aggregation rule excluded, in round order
        (with repeats)."""
        out: List[int] = []
        for r in self.records:
            out.extend(r.screened_clients)
        return out

    def failed_client_ids(self) -> List[int]:
        """Every id whose task failed terminally under the failure policy,
        in round order (with repeats)."""
        out: List[int] = []
        for r in self.records:
            out.extend(r.failed_clients)
        return out

    def retried_client_ids(self) -> List[int]:
        """Every retry dispatch, in round order — a client retried twice in
        one round appears twice."""
        out: List[int] = []
        for r in self.records:
            out.extend(r.retried_clients)
        return out

    def phase_seconds_totals(self) -> Dict[str, float]:
        """Total wall seconds per engine phase, summed across rounds.

        Keys are the phase names each engine recorded (sync:
        sample/broadcast/preamble/local_train/aggregate/evaluate; the
        event-driven modes record theirs); rounds without a breakdown
        (e.g. histories loaded from pre-format files) contribute nothing.
        """
        totals: Dict[str, float] = {}
        for r in self.records:
            if r.phase_seconds:
                for name, dur in r.phase_seconds.items():
                    totals[name] = totals.get(name, 0.0) + dur
        return totals

    def adversary_hit_rate(self) -> float:
        """Fraction of screened ids that actually sat on the adversary
        roster — a precision measure for screening rules (NaN when nothing
        was screened or no adversary labels were recorded)."""
        screened = hits = 0
        for r in self.records:
            if r.adversary_clients is None or not r.screened_clients:
                continue
            roster = set(r.adversary_clients)
            screened += len(r.screened_clients)
            hits += sum(1 for c in r.screened_clients if c in roster)
        return hits / screened if screened else float("nan")

    # -- derived metrics ------------------------------------------------------
    def ema_accuracy(self, alpha: float = 0.3) -> np.ndarray:
        """Exponential moving average of the accuracy curve (paper Fig. 5).

        NaN entries (rounds without evaluation) carry the previous EMA value.
        """
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        acc = self.accuracies()
        out = np.empty_like(acc)
        prev = np.nan
        for i, a in enumerate(acc):
            if np.isnan(a):
                out[i] = prev
            elif np.isnan(prev):
                out[i] = prev = a
            else:
                out[i] = prev = alpha * a + (1 - alpha) * prev
        return out

    def rounds_to_accuracy(self, target: float, smoothed: bool = False) -> Optional[int]:
        """First round (1-based count of communication rounds) whose test
        accuracy reaches ``target``; ``None`` if never reached."""
        acc = self.ema_accuracy() if smoothed else self.accuracies()
        hits = np.flatnonzero(acc >= target)
        if hits.size == 0:
            return None
        return int(self.records[hits[0]].round_idx) + 1

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds until the test accuracy first reaches
        ``target``; ``None`` if never reached or no virtual clock was
        recorded (runs without a device profile)."""
        acc = self.accuracies()
        hits = np.flatnonzero(acc >= target)
        if hits.size == 0:
            return None
        t = self.records[hits[0]].virtual_time_s
        return float(t) if t is not None else None

    def mean_staleness(self) -> float:
        """Mean measured per-update staleness (NaN when none recorded)."""
        values = self.staleness_values()
        return float(values.mean()) if values.size else float("nan")

    def flops_to_accuracy(self, target: float) -> Optional[float]:
        """Cumulative training GFLOPs consumed when ``target`` is first hit."""
        acc = self.accuracies()
        hits = np.flatnonzero(acc >= target)
        if hits.size == 0:
            return None
        return float(self.records[hits[0]].cumulative_flops) / 1e9

    def best_accuracy(self) -> float:
        acc = self.accuracies()
        valid = acc[~np.isnan(acc)]
        return float(valid.max()) if valid.size else float("nan")

    def accuracy_at_round(self, round_idx: int) -> Optional[float]:
        """Accuracy recorded at a given 0-based round index, if evaluated."""
        for r in self.records:
            if r.round_idx == round_idx:
                return r.test_accuracy
        return None

    def final_accuracy_stats(self, last_k: int = 10) -> Dict[str, float]:
        """Boxplot statistics over the last ``last_k`` evaluated rounds
        (paper Fig. 6 reports the mean over the last 10 rounds)."""
        acc = self.accuracies()
        valid = acc[~np.isnan(acc)]
        if valid.size == 0:
            raise ValueError("history contains no evaluated rounds")
        tail = valid[-last_k:]
        return {
            "mean": float(tail.mean()),
            "std": float(tail.std()),
            "min": float(tail.min()),
            "q1": float(np.percentile(tail, 25)),
            "median": float(np.median(tail)),
            "q3": float(np.percentile(tail, 75)),
            "max": float(tail.max()),
            "n": int(tail.size),
        }

    def total_gflops(self) -> float:
        return (float(self.records[-1].cumulative_flops) / 1e9) if self.records else 0.0

    def total_comm_mb(self) -> float:
        return (
            float(self.records[-1].cumulative_comm_bytes) / (1024**2) if self.records else 0.0
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "records": [r.to_dict() for r in self.records],
            "stop_reason": self.stop_reason,
        }
