"""The client-worker process: ``python -m repro.fl.net.worker --connect host:port``.

One worker = one process = one coordinator connection.  The lifecycle:

1. **register** — dial the coordinator, send ``HELLO`` (with the expected
   ``cell_key``, if the operator passed one), receive ``WELCOME`` carrying
   a picklable :class:`NetWorkerSpec` — the same build recipe idiom as
   ``ProcessWorkerSpec``: dataset, strategy, config, registry model name —
   and rebuild model/optimizer/clients locally with the engine's seeded
   RNG streams, so a fixed seed yields byte-identical results no matter
   which worker (or how many) served the round;
2. **serve** — pump frames: ``BROADCAST`` installs the round's flat global
   weights into a local buffer (one memcpy; the runtime's weight views
   alias it), ``TASK`` runs one :class:`~repro.fl.executor.ClientTaskSpec`
   through the shared :func:`~repro.fl.executor.execute_task` choke point
   and uploads the result — raw flat bytes, or a top-k/quantization-coded
   delta when the experiment asked for a wire codec;
3. **re-register** — on any link failure (EOF, corrupted framing from an
   injected truncation, coordinator restart) reconnect with exponential
   backoff and serve again.  Built state is cached by ``cell_key``, so a
   reconnect is cheap and, crucially, does not re-advance any RNG.

Reliability bookkeeping that makes the transport faults invisible to the
engine: a deduping decoder (fault-duplicated frames die at the codec), a
small result cache keyed by the coordinator-assigned ``task_id`` (a
re-sent task is answered from cache, never re-trained), and ``NEED_BCAST``
NACKs (a task referencing a broadcast this worker never saw — the
broadcast frame was dropped — triggers a resend instead of training on
stale weights).  A daemon heartbeat thread beats every ``heartbeat_s``
seconds so the coordinator's liveness detector can tell "slow" from
"gone".
"""

from __future__ import annotations

import argparse
import pickle
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.algorithms.base import Strategy
from repro.data.federated import FederatedData
from repro.fl.client import Client
from repro.fl.compression import QuantizationCompressor, TopKCompressor
from repro.fl.executor import TaskResult, TaskRuntime, WorkerContext, execute_task, make_optimizer
from repro.fl.faults import FaultInjector
from repro.fl.net import frames
from repro.fl.net.frames import ProtocolError, unpack_blob_payload
from repro.fl.net.transport import ChannelClosed, FramedChannel
from repro.fl.params import WeightLayout
from repro.fl.population import ClientDirectory, Population
from repro.fl.robust.adversaries import Adversary
from repro.fl.types import FLConfig
from repro.models import build_model
from repro.nn.losses import CrossEntropyLoss
from repro.obs import WorkerShardRecorder
from repro.utils.rng import RngStream

__all__ = ["NetWorkerSpec", "WorkerClient", "main"]

#: results remembered per worker so a re-sent task (its RESULT frame was
#: dropped on the way up) is answered from cache instead of re-trained.
_RESULT_CACHE_SIZE = 64


@dataclass
class NetWorkerSpec:
    """Everything a network worker needs to rebuild its half of the engine.

    The network twin of :class:`~repro.fl.process_executor.ProcessWorkerSpec`
    (same fields, same rebuild semantics) minus shared memory — the global
    weights arrive as ``BROADCAST`` frames instead — plus the wire-level
    knobs (heartbeat cadence, optional upload codec) and the experiment's
    ``cell_key`` so reconnecting workers can reuse cached state.  Crosses
    the wire exactly once, pickled inside ``WELCOME``.
    """

    data: FederatedData
    strategy: Strategy
    config: FLConfig
    model_name: str
    opt_name: str
    fp_flops: float
    layout: WeightLayout
    adversary: Optional[Adversary] = None
    population: Optional[Population] = None
    obs_enabled: bool = False
    obs_spans: bool = False
    fault_injector: Optional[FaultInjector] = None
    cell_key: Optional[str] = None
    heartbeat_s: float = 0.5
    #: optional upload codec ("topk" / "quantization"): the worker ships a
    #: coded *delta* against the round's broadcast instead of raw flat bytes.
    codec: Optional[str] = None
    codec_kwargs: Dict[str, Any] = field(default_factory=dict)


class _CorruptStream(Exception):
    """A decoded frame's payload failed to deserialize — framing survived
    but content did not (an injected truncation resynchronized the stream
    onto garbage).  Treated exactly like a lost connection."""


class _WorkerState:
    """The rebuilt engine half: model, clients, runtime, weight buffer.

    Built once per ``cell_key`` and reused across reconnects — rebuilding
    would be wasteful but *not* wrong (every build draws from the same
    seeded streams), which is what the cache test pins.
    """

    def __init__(self, spec: NetWorkerSpec) -> None:
        self.spec = spec
        layout = spec.layout
        #: local stand-in for the process backend's shared segment: the
        #: round's broadcast lands here with one flat copy and the
        #: runtime's weight views alias it.
        self._buf = bytearray(layout.total_bytes)
        self._buf_u8 = np.frombuffer(self._buf, dtype=np.uint8)
        views = layout.views(self._buf, writeable=False)
        flat_view = layout.flat_view(self._buf, writeable=False) if layout.is_packed else None
        self.flat_view = flat_view

        data_spec = spec.data.spec
        root = RngStream(spec.config.seed)

        def model_fn():
            return build_model(
                spec.model_name,
                data_spec.input_shape,
                data_spec.num_classes,
                rng=root.child("model-init").generator,
            )

        model = model_fn()
        frozen = model_fn()
        frozen.eval()
        self.worker = WorkerContext(
            model, frozen, make_optimizer(spec.opt_name, model, spec.config),
            CrossEntropyLoss(),
        )
        if spec.population is not None:
            clients = ClientDirectory(spec.population, spec.data, seed=spec.config.seed)
        else:
            clients = [
                Client(k, spec.data.client_dataset(k), seed=spec.config.seed)
                for k in range(spec.data.n_clients)
            ]
            if spec.adversary is not None:
                spec.adversary.poison_clients(clients, data_spec.num_classes)
        # in_pool_worker stays False on purpose: the worker_death fault
        # *synthesizes* its failure here (like serial/threaded) instead of
        # killing the process — a network worker is never respawned by a
        # pool, so a real exit would permanently shrink the fleet and break
        # cross-backend byte-identity.  Real deaths are the chaos test's job.
        self.runtime = TaskRuntime(
            clients=clients,
            strategy=spec.strategy,
            config=spec.config,
            fp_flops=spec.fp_flops,
            global_weights=views,
            global_flat=flat_view,
            adversary=spec.adversary,
            fault_injector=spec.fault_injector,
        )
        if spec.obs_enabled:
            self.runtime.recorder = WorkerShardRecorder(with_spans=spec.obs_spans)
        #: version of the broadcast currently installed (0 = none yet).
        self.bcast_ver = 0
        #: task_id -> encoded RESULT payload, for re-sent tasks.
        self.results: "OrderedDict[int, bytes]" = OrderedDict()

    # -- round data ------------------------------------------------------
    def install_broadcast(self, payload: bytes) -> None:
        meta_blob, blob = unpack_blob_payload(payload)
        try:
            meta = pickle.loads(meta_blob)
        except Exception as exc:
            raise _CorruptStream(f"broadcast meta failed to unpickle: {exc}") from None
        if len(blob) != self._buf_u8.size:
            raise _CorruptStream(
                f"broadcast blob is {len(blob)} bytes, layout needs {self._buf_u8.size}"
            )
        np.copyto(self._buf_u8, np.frombuffer(blob, dtype=np.uint8))
        self.bcast_ver = int(meta["ver"])
        self.runtime.server_broadcast = meta["payload"] or {}

    def cache_result(self, task_id: int, payload: bytes) -> None:
        self.results[task_id] = payload
        while len(self.results) > _RESULT_CACHE_SIZE:
            self.results.popitem(last=False)

    # -- upload encoding -------------------------------------------------
    def _make_codec(self, task):
        name = (self.spec.codec or "").lower()
        kwargs = dict(self.spec.codec_kwargs)
        if name == "topk":
            return TopKCompressor(**kwargs)
        if name == "quantization":
            # Stochastic rounding re-seeded per (client, round, attempt) so
            # the coded bits are a pure function of the task, not of which
            # worker served it or in what order.
            seed = int(
                RngStream(self.spec.config.seed)
                .child("net-codec", task.client_id, task.round_idx, task.attempt)
                .generator.integers(1 << 31)
            )
            return QuantizationCompressor(seed=seed, **kwargs)
        raise ValueError(f"unknown net codec {self.spec.codec!r}")

    def encode_result(self, task, result: TaskResult) -> Dict[str, Any]:
        """The picklable wire form of one :class:`TaskResult`.

        The flat weight vector travels as raw bytes (byte-identity) or as
        a coded delta against this worker's installed broadcast (lossy,
        opt-in); everything else — strategy state, extras, failure, obs
        shard — pickles as-is.
        """
        recorder = self.runtime.recorder
        if recorder.enabled:
            result.obs = recorder.drain()
        wire: Dict[str, Any] = {
            "state": result.state,
            "failure": result.failure,
            "obs": result.obs,
            "fault_delay_s": result.fault_delay_s,
            "flops_wasted": result.flops_wasted,
            "update": None,
        }
        update = result.update
        if update is None:
            return wire
        meta = {
            "client_id": update.client_id,
            "num_samples": update.num_samples,
            "train_loss": update.train_loss,
            "extras": update.extras,
            "flops": update.flops,
            "comm_bytes": update.comm_bytes,
        }
        flat = update.flat_vector()
        if flat is None:  # pragma: no cover - models here are uniform f32
            wire["update"] = {"mode": "pickle", "update": update}
        elif self.spec.codec is not None and self.flat_view is not None:
            delta = np.asarray(flat, dtype=np.float32) - self.flat_view
            enc, nbytes = self._make_codec(task).encode_flat(delta)
            wire["update"] = {
                "mode": "codec", "enc": enc, "wire_nbytes": float(nbytes), "meta": meta,
            }
        else:
            wire["update"] = {
                "mode": "flat", "blob": flat.tobytes(), "dtype": flat.dtype.str,
                "meta": meta,
            }
        return wire


#: built state cached across reconnects, keyed by the experiment cell.
_STATE_CACHE: Dict[Optional[str], _WorkerState] = {}


def build_worker_state(spec: NetWorkerSpec) -> _WorkerState:
    """The (cached) rebuilt engine half for one experiment cell."""
    key = spec.cell_key
    state = _STATE_CACHE.get(key)
    if state is None or key is None:
        state = _WorkerState(spec)
        _STATE_CACHE.clear()  # one experiment per worker process at a time
        _STATE_CACHE[key] = state
    return state


class _Heartbeat:
    """Daemon thread beating ``HEARTBEAT`` every ``interval_s`` seconds.

    Shares the serve loop's channel; the channel's send lock makes the
    interleaving safe.  Dies quietly with the channel."""

    def __init__(self, chan: FramedChannel, interval_s: float) -> None:
        self._chan = chan
        self._interval_s = max(0.05, float(interval_s))
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="net-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._chan.send_frame(frames.HEARTBEAT)
            except ChannelClosed:
                return

    def stop(self) -> None:
        self._stop.set()


class WorkerClient:
    """The connect / register / serve / re-register loop."""

    def __init__(self, host: str, port: int, *,
                 cell_key: Optional[str] = None,
                 connect_timeout_s: float = 20.0,
                 backoff_base_s: float = 0.05,
                 max_reconnects: int = 8) -> None:
        self.host = host
        self.port = port
        self.cell_key = cell_key
        self.connect_timeout_s = float(connect_timeout_s)
        self.backoff_base_s = float(backoff_base_s)
        self.max_reconnects = int(max_reconnects)

    # -- lifecycle -------------------------------------------------------
    def run(self) -> int:
        """Serve until the coordinator says ``BYE`` (0) or the link stays
        dead through the reconnect budget (1)."""
        attempt = 0
        while True:
            try:
                chan = self._connect()
                spec = self._register(chan)
            except _Rejected:
                return 1
            except (OSError, ChannelClosed, ProtocolError, _CorruptStream):
                attempt += 1
                if attempt > self.max_reconnects:
                    return 1
                self._backoff(attempt)
                continue
            if spec is None:  # orderly BYE during registration
                return 0
            attempt = 0
            state = build_worker_state(spec)
            heartbeat = _Heartbeat(chan, spec.heartbeat_s)
            try:
                self._serve(chan, state)
                return 0
            except (ChannelClosed, ProtocolError, _CorruptStream):
                attempt += 1
                if attempt > self.max_reconnects:
                    return 1
                self._backoff(attempt)
            finally:
                heartbeat.stop()
                chan.close()

    def _backoff(self, attempt: int) -> None:
        """Exponential reconnect backoff, reusing the engine's retry
        pricing curve (``base * 2**(attempt-1)``) on the wall clock."""
        time.sleep(min(self.backoff_base_s * (2.0 ** min(attempt - 1, 6)), 10.0))

    def _connect(self) -> FramedChannel:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        return FramedChannel(sock)

    def _register(self, chan: FramedChannel) -> Optional[NetWorkerSpec]:
        """HELLO / WELCOME handshake; returns the build recipe, ``None``
        on an orderly BYE, raises :class:`_Rejected` on a refusal."""
        chan.send_frame(frames.HELLO, pickle.dumps({
            "cell_key": self.cell_key,
            "reconnect": getattr(self, "_ever_registered", False),
        }, protocol=pickle.HIGHEST_PROTOCOL))
        deadline = time.monotonic() + self.connect_timeout_s
        while time.monotonic() < deadline:
            for frame in chan.recv_frames(timeout=0.2):
                if frame.ftype == frames.WELCOME:
                    self._ever_registered = True
                    welcome = _loads(frame.payload)
                    return welcome["spec"]
                if frame.ftype == frames.BYE:
                    reason = _loads(frame.payload).get("reason", "")
                    if reason:
                        raise _Rejected(reason)
                    return None
        raise ChannelClosed("no WELCOME within the connect timeout")

    # -- serving ---------------------------------------------------------
    def _serve(self, chan: FramedChannel, state: _WorkerState) -> None:
        while True:
            for frame in chan.recv_frames(timeout=0.5):
                if frame.ftype == frames.BROADCAST:
                    state.install_broadcast(frame.payload)
                elif frame.ftype == frames.TASK:
                    self._handle_task(chan, state, frame.payload)
                elif frame.ftype == frames.BYE:
                    return
                # anything else (stray HEARTBEAT echoes) is ignored

    def _handle_task(self, chan: FramedChannel, state: _WorkerState,
                     payload: bytes) -> None:
        job = _loads(payload)
        task_id = int(job["task_id"])
        cached = state.results.get(task_id)
        if cached is not None:
            # The TASK frame was re-sent because our RESULT got lost:
            # answer from cache, never re-train (idempotence).
            chan.send_frame(frames.RESULT, cached)
            return
        if int(job["ver"]) != state.bcast_ver:
            # The broadcast this task trains against never arrived (its
            # frame was dropped): NACK instead of training on stale weights.
            chan.send_frame(frames.NEED_BCAST, pickle.dumps(
                {"task_id": task_id}, protocol=pickle.HIGHEST_PROTOCOL
            ))
            return
        result = execute_task(job["task"], state.worker, state.runtime)
        wire = state.encode_result(job["task"], result)
        blob = pickle.dumps(
            {"task_id": task_id, "wire": wire}, protocol=pickle.HIGHEST_PROTOCOL
        )
        state.cache_result(task_id, blob)
        chan.send_frame(frames.RESULT, blob)


class _Rejected(Exception):
    """The coordinator refused registration (wrong cell_key)."""


def _loads(payload: bytes):
    """Unpickle a frame payload, converting deserialization failures into
    the stream-corruption signal (reconnect, don't crash)."""
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise _CorruptStream(f"frame payload failed to unpickle: {exc}") from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fl.net.worker",
        description="Client-worker process for the network federation executor.",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to register with")
    parser.add_argument("--cell-key", default=None,
                        help="expected experiment cell key (registration is "
                             "refused on mismatch)")
    parser.add_argument("--connect-timeout-s", type=float, default=20.0)
    parser.add_argument("--backoff-base-s", type=float, default=0.05,
                        help="base of the exponential reconnect backoff")
    parser.add_argument("--max-reconnects", type=int, default=8,
                        help="consecutive failed (re)connects before giving up")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect wants HOST:PORT, got {args.connect!r}")
    client = WorkerClient(
        host, int(port),
        cell_key=args.cell_key,
        connect_timeout_s=args.connect_timeout_s,
        backoff_base_s=args.backoff_base_s,
        max_reconnects=args.max_reconnects,
    )
    return client.run()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
