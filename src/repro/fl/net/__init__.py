"""Real-network federation: framed sockets behind the executor API.

The package splits along trust-in-the-wire lines:

* :mod:`~repro.fl.net.frames` — the pure, property-tested codec
  (length-prefixed binary frames, CRC'd headers, seq dedupe);
* :mod:`~repro.fl.net.netfaults` — deterministic seeded wire faults
  (drop / duplicate / delay / truncate / partition);
* :mod:`~repro.fl.net.transport` — one framed, countable, injectable
  channel per TCP connection;
* :mod:`~repro.fl.net.worker` — the client-worker process
  (``python -m repro.fl.net.worker --connect host:port``): register,
  serve rounds, reconnect with backoff;
* :mod:`~repro.fl.net.coordinator` — the server plus
  :class:`~repro.fl.net.coordinator.NetworkExecutor`, registered as
  ``executor: "network"``.

Determinism contract: a loopback network run at a fixed seed produces a
History byte-identical to the serial executor — including under injected
frame drops with retries enabled (see ``docs/networking.md``).

Submodule attributes resolve lazily (PEP 562): ``python -m
repro.fl.net.worker`` must not find the worker module pre-imported by its
own package, and importing the pure codec must not drag in sockets.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-time imports only
    from repro.fl.net.coordinator import CoordinatorServer, NetworkExecutor, WIRE_CODECS
    from repro.fl.net.frames import (
        Frame,
        FrameDecoder,
        ProtocolError,
        encode_frame,
        pack_blob_payload,
        unpack_blob_payload,
    )
    from repro.fl.net.netfaults import (
        NetFaultInjector,
        available_netfaults,
        build_netfault,
        register_netfault,
    )
    from repro.fl.net.transport import ChannelClosed, FramedChannel
    from repro.fl.net.worker import NetWorkerSpec, WorkerClient

_EXPORTS = {
    "CoordinatorServer": "coordinator",
    "NetworkExecutor": "coordinator",
    "WIRE_CODECS": "coordinator",
    "Frame": "frames",
    "FrameDecoder": "frames",
    "ProtocolError": "frames",
    "encode_frame": "frames",
    "pack_blob_payload": "frames",
    "unpack_blob_payload": "frames",
    "NetFaultInjector": "netfaults",
    "available_netfaults": "netfaults",
    "build_netfault": "netfaults",
    "register_netfault": "netfaults",
    "ChannelClosed": "transport",
    "FramedChannel": "transport",
    "NetWorkerSpec": "worker",
    "WorkerClient": "worker",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{module}"), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
