"""The wire format: length-prefixed binary frames with a CRC'd header.

Every message between the :class:`~repro.fl.net.coordinator.CoordinatorServer`
and a worker client is one *frame*::

    +-------+---------+------+---------+------------+-------+-----------+
    | magic | version | type | seq u32 | length u64 | crc32 | payload   |
    | 2B    | 1B      | 1B   | 4B      | 8B         | 4B    | length B  |
    +-------+---------+------+---------+------------+-------+-----------+

The header is 20 bytes, big-endian (``>2sBBIQI``); ``crc32`` covers the
first 16 header bytes, so a torn or bit-flipped header is rejected before
``length`` is ever trusted.  ``seq`` increases strictly per connection and
per direction — a receiver that sees ``seq <= last_seq`` is looking at a
duplicated frame (the :mod:`~repro.fl.net.netfaults` layer is the only
source of duplicates on a TCP stream) and drops it, which is what makes
duplicate delivery idempotent.

Everything in this module is pure — bytes in, frames out, no sockets —
so the codec is property-testable (see ``tests/test_net.py``): arbitrary
payloads round-trip exactly, truncated streams simply wait for more bytes
(:meth:`FrameDecoder.feed` never partial-reads a frame), and garbage
prefixes raise :class:`ProtocolError` immediately instead of hanging or
resynchronizing onto attacker-chosen offsets.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, NamedTuple, Optional

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "HELLO",
    "WELCOME",
    "BROADCAST",
    "TASK",
    "RESULT",
    "HEARTBEAT",
    "NEED_BCAST",
    "BYE",
    "FRAME_NAMES",
    "ProtocolError",
    "Frame",
    "encode_frame",
    "FrameDecoder",
    "pack_blob_payload",
    "unpack_blob_payload",
]

MAGIC = b"RF"
PROTOCOL_VERSION = 1

#: header prefix covered by the CRC: magic, version, type, seq, length.
_PREFIX = struct.Struct(">2sBBIQ")
_CRC = struct.Struct(">I")
HEADER_SIZE = _PREFIX.size + _CRC.size  # 20 bytes

#: refuse frames claiming more than this many payload bytes (a corrupted
#: length field must not become an unbounded allocation).
MAX_PAYLOAD = 1 << 31

# Frame types.
HELLO = 1       # worker -> coordinator: registration / handshake
WELCOME = 2     # coordinator -> worker: accepted; carries the build recipe
BROADCAST = 3   # coordinator -> worker: the round's flat global weights
TASK = 4        # coordinator -> worker: one ClientTaskSpec dispatch
RESULT = 5      # worker -> coordinator: one TaskResult upload
HEARTBEAT = 6   # worker -> coordinator: liveness beacon
NEED_BCAST = 7  # worker -> coordinator: task referenced an unseen broadcast
BYE = 8         # either side: orderly close (payload may carry a reason)

FRAME_NAMES = {
    HELLO: "hello",
    WELCOME: "welcome",
    BROADCAST: "broadcast",
    TASK: "task",
    RESULT: "result",
    HEARTBEAT: "heartbeat",
    NEED_BCAST: "need_bcast",
    BYE: "bye",
}


class ProtocolError(Exception):
    """The byte stream is not a valid frame sequence (bad magic, wrong
    protocol version, CRC mismatch, oversized length).  Unrecoverable for
    the connection: framing is lost, the only safe move is to close."""


class Frame(NamedTuple):
    ftype: int
    seq: int
    payload: bytes


def encode_frame(ftype: int, seq: int, payload: bytes = b"") -> bytes:
    """One encoded frame: CRC'd header + payload."""
    if not 0 <= ftype <= 0xFF:
        raise ValueError(f"frame type must fit a u8, got {ftype}")
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    prefix = _PREFIX.pack(MAGIC, PROTOCOL_VERSION, ftype, seq & 0xFFFFFFFF, len(payload))
    return prefix + _CRC.pack(zlib.crc32(prefix)) + payload


class FrameDecoder:
    """Incremental frame parser over an untrusted byte stream.

    Feed it whatever the socket produced; it returns every *complete*
    frame and buffers the rest.  Three invariants the property suite pins:

    * **no partial reads** — a frame is surfaced only once all
      ``HEADER_SIZE + length`` bytes arrived; a truncated stream yields
      nothing (and :attr:`pending` reports the buffered remainder);
    * **no hangs on garbage** — a prefix that is not a valid header
      (magic/version/CRC/length) raises :class:`ProtocolError` on the
      very feed that exposes it;
    * **duplicate idempotence** — with ``dedupe=True`` (the transport
      default) a frame whose ``seq`` does not advance past the last
      accepted one is silently dropped.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD, dedupe: bool = False) -> None:
        self._buf = bytearray()
        self._max_payload = int(max_payload)
        self._dedupe = dedupe
        self._last_seq: Optional[int] = None

    @property
    def pending(self) -> int:
        """Buffered bytes not yet forming a complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data``; return every frame it completes (maybe none)."""
        self._buf += data
        frames: List[Frame] = []
        while True:
            frame = self._next()
            if frame is None:
                return frames
            if self._dedupe:
                if self._last_seq is not None and frame.seq <= self._last_seq:
                    continue  # duplicated frame: drop, idempotently
                self._last_seq = frame.seq
            frames.append(frame)

    def _next(self) -> Optional[Frame]:
        buf = self._buf
        if len(buf) < HEADER_SIZE:
            return None
        prefix = bytes(buf[: _PREFIX.size])
        magic, version, ftype, seq, length = _PREFIX.unpack(prefix)
        if magic != MAGIC:
            raise ProtocolError(f"bad magic {magic!r} (want {MAGIC!r})")
        (crc,) = _CRC.unpack(bytes(buf[_PREFIX.size:HEADER_SIZE]))
        if crc != zlib.crc32(prefix):
            raise ProtocolError("header CRC mismatch")
        # CRC verified: the remaining fields are what the sender wrote.
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {version} (this build speaks {PROTOCOL_VERSION})"
            )
        if length > self._max_payload:
            raise ProtocolError(f"frame claims {length} payload bytes (cap {self._max_payload})")
        total = HEADER_SIZE + length
        if len(buf) < total:
            return None  # wait for the rest; never a partial payload
        payload = bytes(buf[HEADER_SIZE:total])
        del buf[:total]
        return Frame(ftype, seq, payload)


# ---------------------------------------------------------------------------
# Broadcast payload packing: pickled metadata + one raw binary blob.
# ---------------------------------------------------------------------------

_BLOB_LEN = struct.Struct(">Q")


def pack_blob_payload(meta_blob: bytes, blob: bytes) -> bytes:
    """``BROADCAST`` payload layout: u64 meta length, pickled meta, then the
    raw flat weight buffer — the model crosses the wire as one contiguous
    byte run, never re-pickled."""
    return _BLOB_LEN.pack(len(meta_blob)) + meta_blob + blob


def unpack_blob_payload(payload: bytes) -> "tuple[bytes, memoryview]":
    """Invert :func:`pack_blob_payload`; the blob comes back as a zero-copy
    memoryview into the frame payload."""
    if len(payload) < _BLOB_LEN.size:
        raise ProtocolError("broadcast payload shorter than its meta length field")
    (meta_len,) = _BLOB_LEN.unpack(payload[: _BLOB_LEN.size])
    start = _BLOB_LEN.size
    if len(payload) < start + meta_len:
        raise ProtocolError("broadcast payload shorter than its declared meta")
    meta = payload[start:start + meta_len]
    return meta, memoryview(payload)[start + meta_len:]
