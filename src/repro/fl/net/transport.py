"""One framed, countable, fault-injectable channel over a TCP socket.

:class:`FramedChannel` is the single choke point every byte crosses in
:mod:`repro.fl.net` — the coordinator holds one per accepted worker, the
worker holds one for its coordinator link.  It owns three concerns:

* **framing** — outbound frames get this channel's next ``seq``; inbound
  bytes run through a seq-deduping :class:`~repro.fl.net.frames.FrameDecoder`
  (so a duplicated frame is dropped here, before anyone interprets it);
* **accounting** — ``bytes_sent`` / ``bytes_recv`` count what actually hit
  the socket (post-fault), feeding the ``fl_net_*`` obs counters;
* **fault injection** — an optional
  :class:`~repro.fl.net.netfaults.NetFaultInjector` rewrites each send
  into a plan (chunks + delay).  Only the coordinator passes one: a single
  deterministic injector in a single process, never forked to workers.

Sends are serialized under a lock because the worker's heartbeat thread
shares its channel with the serve loop; the seq counter and the socket
write are one atomic unit.
"""

from __future__ import annotations

import socket
import threading
import time
from select import select
from typing import List, Optional, Tuple

from repro.fl.net.frames import MAX_PAYLOAD, Frame, FrameDecoder, encode_frame
from repro.fl.net.netfaults import NetFaultInjector

__all__ = ["ChannelClosed", "FramedChannel"]

#: a blocked send/recv past this long means the peer is gone, not slow.
_IO_TIMEOUT_S = 30.0
_RECV_CHUNK = 1 << 20


class ChannelClosed(Exception):
    """The peer closed the connection (EOF) or the socket died."""


class FramedChannel:
    """Framed send/recv over one connected socket.

    Not a reconnecting abstraction: when the link dies this object is
    done (``ChannelClosed`` / ``ProtocolError``) and the owner decides —
    the worker dials again with backoff, the coordinator synthesizes
    ``connection_lost`` failures.
    """

    def __init__(self, sock: socket.socket, *,
                 max_payload: int = MAX_PAYLOAD,
                 injector: Optional[NetFaultInjector] = None) -> None:
        sock.settimeout(_IO_TIMEOUT_S)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets in tests
            pass
        self._sock = sock
        self._decoder = FrameDecoder(max_payload=max_payload, dedupe=True)
        self._injector = injector
        self._send_lock = threading.Lock()
        self._seq = 0
        self._open = True
        self.bytes_sent = 0
        self.bytes_recv = 0

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def is_open(self) -> bool:
        return self._open

    def send_frame(self, ftype: int, payload: bytes = b"",
                   fault_key: Optional[Tuple] = None) -> None:
        """Encode and send one frame.

        ``fault_key`` routes the frame through the injector's send plan
        (coordinator side only); a key must end in an attempt counter so a
        logical resend re-draws its coin.  The resent frame also gets a
        fresh ``seq`` here — only a fault-duplicated frame reuses one,
        which is exactly what the receiver's dedupe keys on.
        """
        with self._send_lock:
            self._seq += 1
            data = encode_frame(ftype, self._seq, payload)
            delay = 0.0
            chunks: List[bytes] = [data]
            if self._injector is not None and fault_key is not None:
                chunks, delay = self._injector.send_plan(data, *fault_key)
            if delay > 0.0:
                time.sleep(delay)
            try:
                for chunk in chunks:
                    self._sock.sendall(chunk)
                    self.bytes_sent += len(chunk)
            except (OSError, socket.timeout) as exc:
                self._open = False
                raise ChannelClosed(str(exc)) from None

    def recv_frames(self, timeout: float = 0.0) -> List[Frame]:
        """Frames completed by whatever bytes are readable within
        ``timeout`` seconds (0 = just poll).  Returns ``[]`` on quiet
        links; raises :class:`ChannelClosed` on EOF and lets the
        decoder's ``ProtocolError`` propagate on corruption."""
        if not self._open:
            raise ChannelClosed("channel already closed")
        try:
            ready, _, _ = select([self._sock], [], [], timeout)
        except (OSError, ValueError) as exc:
            self._open = False
            raise ChannelClosed(str(exc)) from None
        if not ready:
            return []
        try:
            data = self._sock.recv(_RECV_CHUNK)
        except (OSError, socket.timeout) as exc:
            self._open = False
            raise ChannelClosed(str(exc)) from None
        if not data:
            self._open = False
            raise ChannelClosed("peer closed the connection")
        self.bytes_recv += len(data)
        return self._decoder.feed(data)

    def close(self) -> None:
        self._open = False
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass
