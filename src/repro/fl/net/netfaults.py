"""Deterministic, seeded fault injection for the socket transport.

Where :mod:`repro.fl.faults` breaks *tasks* (crashes, corrupt uploads,
stragglers), this module breaks the *wire*: frames that vanish, arrive
twice, arrive late, arrive cut in half, or links that go dark for a whole
round.  Injectors live at the coordinator's send/recv choke point
(:class:`~repro.fl.net.transport.FramedChannel`) — one process, one
injector, so a chaos run never depends on cross-process scheduling.

Determinism follows the house rule: every coin is a pure function of
``(seed, "netfault", name, *key)`` through the
:class:`~repro.utils.rng.RngStream` tree, never of call order or wall
time.  The transport keys each coin with a monotonically increasing
per-site counter (send attempt, receive attempt), so a *resent* frame
re-draws its coin — bounded resends therefore actually get through at
sub-certain drop rates, exactly like task retries under ``crash``.

How each fault surfaces to the engine:

==================  ======================================================
``drop_frame``      an outbound ``BROADCAST``/``TASK`` frame (or an
                    inbound ``RESULT`` frame) is discarded; the
                    coordinator's resend timer re-sends the task, the
                    worker's result cache answers instantly, and the
                    History stays byte-identical to the serial executor
``duplicate_frame`` the frame's bytes are sent twice back-to-back; the
                    receiver's seq-deduping decoder drops the copy, so
                    this must be (and is, by test) invisible
``delay_frame``     the frame is held for a seeded number of seconds
                    before hitting the socket; absorbed by resend timers
                    and dedupe, visible only in wall-clock
``truncate_frame``  only the first half of the frame's bytes are sent —
                    framing on that connection is destroyed, the worker's
                    decoder raises ``ProtocolError`` and reconnects, and
                    the coordinator synthesizes a retryable
                    ``connection_lost`` task failure for PR 9's policy
``partition``       the (worker, round) link is down in both directions;
                    the worker looks dead, liveness fires, tasks fail as
                    ``connection_lost`` and quorum/retry decide the round
==================  ======================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.utils.rng import RngStream

__all__ = [
    "NetFaultInjector",
    "DropFrameFault",
    "DuplicateFrameFault",
    "DelayFrameFault",
    "TruncateFrameFault",
    "PartitionFault",
    "available_netfaults",
    "build_netfault",
    "register_netfault",
]


class NetFaultInjector:
    """Base injector: a seeded coin plus the three transport hooks.

    ``send_plan`` shapes outbound frames (drop/duplicate/delay/truncate),
    ``drop_recv`` discards inbound frames after decode, and ``blocked``
    cuts a link entirely.  Subclasses override exactly one hook.  Keys are
    chosen by the transport/coordinator and always end in an attempt
    counter so re-sends re-draw.
    """

    name: str = "base"

    def __init__(self, *, rate: float, seed: int) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"netfault rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)

    def _rng(self, *path) -> np.random.Generator:
        """Fresh generator keyed by ``(seed, "netfault", name, *path)``."""
        return RngStream(self.seed).child("netfault", self.name, *path).generator

    def fires(self, *key) -> bool:
        """The fault coin for one wire event."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return bool(self._rng(*key).random() < self.rate)

    def send_plan(self, data: bytes, *key) -> "tuple[List[bytes], float]":
        """How one outbound frame actually hits the socket: a list of byte
        chunks (``[]`` drops it, two entries duplicate it, a shortened
        entry truncates it) and a pre-send delay in seconds."""
        return [data], 0.0

    def drop_recv(self, *key) -> bool:
        """Discard one decoded inbound frame (as if it never arrived)."""
        return False

    def blocked(self, *key) -> bool:
        """Is this link partitioned for this key (both directions)?"""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate={self.rate}, seed={self.seed})"


class DropFrameFault(NetFaultInjector):
    """The frame is lost in flight — outbound frames are not sent, inbound
    ``RESULT`` frames are discarded after decode.  Recovered by resend
    timers + the worker's result cache; byte-identity holds."""

    name = "drop_frame"

    def send_plan(self, data: bytes, *key):
        if self.fires("send", *key):
            return [], 0.0
        return [data], 0.0

    def drop_recv(self, *key) -> bool:
        return self.fires("recv", *key)


class DuplicateFrameFault(NetFaultInjector):
    """The frame's bytes arrive twice.  The second copy carries the same
    ``seq``, so the receiving decoder's dedupe drops it silently."""

    name = "duplicate_frame"

    def send_plan(self, data: bytes, *key):
        if self.fires(*key):
            return [data, data], 0.0
        return [data], 0.0


class DelayFrameFault(NetFaultInjector):
    """The frame is held for a seeded uniform delay before sending.  Only
    wall-clock sees it: resend timers and dedupe absorb any crossings."""

    name = "delay_frame"

    def __init__(self, *, rate: float, seed: int,
                 min_delay_s: float = 0.05, max_delay_s: float = 0.3) -> None:
        super().__init__(rate=rate, seed=seed)
        if not 0.0 <= min_delay_s <= max_delay_s:
            raise ValueError(
                f"need 0 <= min_delay_s <= max_delay_s, got "
                f"[{min_delay_s}, {max_delay_s}]"
            )
        self.min_delay_s = float(min_delay_s)
        self.max_delay_s = float(max_delay_s)

    def send_plan(self, data: bytes, *key):
        if self.fires(*key):
            delay = float(
                self._rng("delay", *key).uniform(self.min_delay_s, self.max_delay_s)
            )
            return [data], delay
        return [data], 0.0


class TruncateFrameFault(NetFaultInjector):
    """Only half the frame's bytes make it out — the connection's framing
    is destroyed mid-stream.  The peer's decoder hits a CRC/magic error,
    closes, and reconnects; the coordinator files ``connection_lost``."""

    name = "truncate_frame"

    def send_plan(self, data: bytes, *key):
        if self.fires(*key):
            return [data[: max(1, len(data) // 2)]], 0.0
        return [data], 0.0


class PartitionFault(NetFaultInjector):
    """The (worker, round) link is down in both directions: nothing the
    coordinator sends arrives and nothing the worker sends is heard.  The
    worker looks dead until the next round's coin clears."""

    name = "partition"

    def blocked(self, *key) -> bool:
        return self.fires(*key)


# ---------------------------------------------------------------------------
# Registry (mirrors repro.fl.faults).
# ---------------------------------------------------------------------------

#: factory(rate=..., seed=..., **kwargs) -> NetFaultInjector
NetFaultFactory = Callable[..., NetFaultInjector]

_NETFAULTS: Dict[str, NetFaultFactory] = {}


def register_netfault(name: str, factory: NetFaultFactory) -> None:
    """Register (or replace) a network fault factory under ``name``."""
    _NETFAULTS[name.lower()] = factory


def available_netfaults() -> List[str]:
    return sorted(_NETFAULTS)


def build_netfault(name: str, *, rate: float, seed: int,
                   **kwargs: Any) -> NetFaultInjector:
    """Instantiate the network fault registered under ``name``."""
    try:
        factory = _NETFAULTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown netfault {name!r}; available: {available_netfaults()}"
        ) from None
    try:
        return factory(rate=rate, seed=seed, **kwargs)
    except TypeError as exc:
        raise ValueError(f"bad arguments for netfault {name!r}: {exc}") from None


register_netfault("drop_frame", DropFrameFault)
register_netfault("duplicate_frame", DuplicateFrameFault)
register_netfault("delay_frame", DelayFrameFault)
register_netfault("truncate_frame", TruncateFrameFault)
register_netfault("partition", PartitionFault)
