"""The coordinator: a socket server behind the executor API.

:class:`CoordinatorServer` owns the listening socket and the per-worker
connections — registration handshakes (protocol version via the frame
header, ``cell_key`` via the HELLO payload), one ``BROADCAST`` of the
contiguous flat parameter buffer per round, ``TASK`` dispatch, ``RESULT``
collection, liveness, resends.  :class:`NetworkExecutor` wraps it in the
standard executor contract (``broadcast`` / ``run`` / ``borrow_worker`` /
``close``) so the engine cannot tell it from the serial backend — which is
the point: a loopback network run at a fixed seed must produce a History
byte-identical to the serial executor.

How that identity survives an unreliable wire: transport faults are
absorbed *below* the engine.  Dropped ``TASK``/``BROADCAST`` frames are
re-sent on a timer (each resend re-draws its injected-fault coin);
re-sent tasks are answered from the worker's result cache, never
re-trained; dropped ``RESULT`` frames are recovered the same way;
duplicated frames die in the seq-deduping decoder; a worker that missed
its broadcast NACKs with ``NEED_BCAST``.  Only *connection-level* events
— EOF, heartbeat-silence past the liveness window, a partition, framing
destroyed by truncation — surface to the engine, as retryable
``connection_lost`` :class:`~repro.fl.faults.TaskFailure`\\ s, which is
exactly the interface PR 9's retry/timeout/quorum/resume policy already
speaks.

Everything runs single-threaded in the engine's thread: the coordinator
pumps sockets inside ``run()``/``wait_for_workers()`` calls, and between
rounds (while the engine aggregates/evaluates) worker heartbeats simply
queue in kernel buffers — liveness clocks are reset at the next ``run()``
entry, so a quiet aggregate phase is never mistaken for a dead fleet.
"""

from __future__ import annotations

import os
import pickle
import socket
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass
from select import select
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.compression import QuantizationCompressor, TopKCompressor
from repro.fl.executor import ClientTaskSpec, TaskResult, broadcast_tree
from repro.fl.faults import TaskFailure
from repro.fl.net import frames
from repro.fl.net.frames import ProtocolError, pack_blob_payload
from repro.fl.net.netfaults import NetFaultInjector
from repro.fl.net.transport import ChannelClosed, FramedChannel
from repro.fl.net.worker import NetWorkerSpec
from repro.fl.params import ParamPlane, WeightLayout
from repro.fl.types import ClientUpdate
from repro.utils.logging import get_logger

__all__ = ["CoordinatorServer", "NetworkExecutor", "WIRE_CODECS"]

_log = get_logger("fl.net.coordinator")

#: upload codecs the network executor knows how to decode.
WIRE_CODECS = ("topk", "quantization")

#: hosts the executor treats as loopback (it spawns its own workers there).
_LOOPBACK_HOSTS = ("127.0.0.1", "localhost", "::1", "")

#: a task unanswered this long is re-sent (re-drawing any injected fault).
_RESEND_TIMEOUT_S = 0.5


class _Conn:
    """One registered worker connection."""

    __slots__ = ("chan", "worker_id", "last_recv", "busy", "bcast_sends")

    def __init__(self, chan: FramedChannel, worker_id: int) -> None:
        self.chan = chan
        self.worker_id = worker_id
        self.last_recv = time.monotonic()
        #: task_id currently dispatched to this worker, or None.
        self.busy: Optional[int] = None
        #: per-connection broadcast send counter (fault-coin attempt key).
        self.bcast_sends = 0


@dataclass
class _Flight:
    """One dispatched task's in-flight bookkeeping."""

    idx: int
    worker_id: int
    task_id: int
    first_sent: float
    last_sent: float
    sends: int = 0
    receipts: int = 0


class CoordinatorServer:
    """Accepts client-worker connections and runs rounds over them.

    Parameters
    ----------
    bind:
        ``host:port`` to listen on; port 0 picks an ephemeral port (read
        it back from :attr:`address`).
    spec:
        Picklable :class:`~repro.fl.net.worker.NetWorkerSpec` shipped in
        every ``WELCOME``.  ``None`` is allowed (handshake-only servers in
        tests); workers then receive no build recipe.
    cell_key:
        The experiment cell this coordinator serves.  A HELLO asserting a
        *different* cell is refused with a BYE — joining worker processes
        cannot silently compute for the wrong experiment.
    heartbeat_s:
        Worker beacon cadence; a connection silent for
        ``max(5 * heartbeat_s, 3.0)`` seconds while holding a task is
        declared dead.
    connect_timeout_s:
        Registration patience (``wait_for_workers``), per-task wall-clock
        ceiling, and how long a round tolerates an empty fleet before
        failing its remaining tasks.
    injector:
        Optional deterministic :class:`~repro.fl.net.netfaults
        .NetFaultInjector` applied at this server's send/recv choke
        points.  Coordinator-side only — one injector, one process, one
        seeded coin tree.
    """

    def __init__(self, bind: str = "127.0.0.1:0", *,
                 spec: Optional[NetWorkerSpec] = None,
                 cell_key: Optional[str] = None,
                 heartbeat_s: float = 0.5,
                 connect_timeout_s: float = 20.0,
                 injector: Optional[NetFaultInjector] = None) -> None:
        host, _, port = bind.rpartition(":")
        if not port.lstrip("-").isdigit():
            raise ValueError(f"net bind wants HOST:PORT, got {bind!r}")
        self._listener = socket.create_server(
            (host or "127.0.0.1", int(port)), backlog=16, reuse_port=False
        )
        self.heartbeat_s = float(heartbeat_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self._liveness_timeout_s = max(5.0 * self.heartbeat_s, 3.0)
        self._injector = injector
        self._cell_key = cell_key
        self._welcome_blob = pickle.dumps(
            {"spec": spec}, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._conns: Dict[int, _Conn] = {}
        #: accepted sockets that have not completed the HELLO handshake yet.
        self._pending: List[Tuple[FramedChannel, float]] = []
        self._next_worker_id = 0
        self._next_task_id = 0
        self._bcast_payload: Optional[bytes] = None
        self._bcast_ver = 0
        self._closed = False
        #: wire/connection counters; bytes of closed channels accumulate in
        #: ``retired_*`` so stats survive reconnect churn.
        self._stats = {
            "connections": 0, "reconnects": 0, "heartbeat_misses": 0,
            "connection_losses": 0, "retired_bytes_sent": 0, "retired_bytes_recv": 0,
        }

    # ------------------------------------------------------------------
    # addressing / registration
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    @property
    def n_connected(self) -> int:
        return len(self._conns)

    def wait_for_workers(self, n: int, timeout_s: Optional[float] = None) -> None:
        """Pump until ``n`` workers registered; ``TimeoutError`` otherwise."""
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self.connect_timeout_s
        )
        while len(self._conns) < n:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {len(self._conns)}/{n} network workers registered "
                    f"within {self.connect_timeout_s:.1f}s"
                )
            self._pump(0.05)

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------
    def set_broadcast(self, payload: Dict[str, Any], blob: bytes) -> int:
        """Install round broadcast ``ver+1`` (server payload + flat weight
        bytes) and push it to every registered worker."""
        self._bcast_ver += 1
        meta = pickle.dumps(
            {"ver": self._bcast_ver, "payload": payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._bcast_payload = pack_blob_payload(meta, blob)
        for conn in list(self._conns.values()):
            self._send_bcast(conn)
        return self._bcast_ver

    def _send_bcast(self, conn: _Conn) -> None:
        if self._bcast_payload is None:
            return
        conn.bcast_sends += 1
        if self._blocked(conn.worker_id):
            return  # partition: pretend it went out
        try:
            conn.chan.send_frame(
                frames.BROADCAST, self._bcast_payload,
                fault_key=("bcast", conn.worker_id, self._bcast_ver, conn.bcast_sends),
            )
        except ChannelClosed:
            self._drop_conn(conn.worker_id, "send failed")

    def _blocked(self, worker_id: int) -> bool:
        return (
            self._injector is not None
            and self._injector.blocked(worker_id, self._bcast_ver)
        )

    # ------------------------------------------------------------------
    # socket pump
    # ------------------------------------------------------------------
    def _pump(self, timeout: float) -> List[Tuple[str, int, Any]]:
        """One IO iteration: accept, handshake, read.  Returns round-level
        events: ``("result", worker_id, payload)`` and
        ``("need_bcast", worker_id, payload)``.  Liveness is the caller's
        job (it knows which connections owe it work)."""
        events: List[Tuple[str, int, Any]] = []
        now = time.monotonic()
        socks = [self._listener]
        socks += [chan for chan, _ in self._pending if chan.is_open]
        conns = list(self._conns.values())
        socks += [c.chan for c in conns]
        try:
            ready, _, _ = select(socks, [], [], timeout)
        except (OSError, ValueError):
            ready = []
        ready_set = set(ready)
        if self._listener in ready_set:
            self._accept()
        for chan, _accepted in list(self._pending):
            if chan in ready_set:
                self._pump_pending(chan)
        self._pending = [
            (chan, t) for chan, t in self._pending
            if chan.is_open and now - t < self.connect_timeout_s
        ]
        for conn in conns:
            if conn.chan not in ready_set or conn.worker_id not in self._conns:
                continue
            try:
                got = conn.chan.recv_frames(timeout=0)
            except (ChannelClosed, ProtocolError) as exc:
                self._drop_conn(conn.worker_id, str(exc))
                continue
            if got and self._blocked(conn.worker_id):
                continue  # partition inbound: frames vanish, clock stalls
            for frame in got:
                conn.last_recv = now
                if frame.ftype == frames.RESULT:
                    events.append(("result", conn.worker_id, frame.payload))
                elif frame.ftype == frames.NEED_BCAST:
                    events.append(("need_bcast", conn.worker_id, frame.payload))
                # HEARTBEAT (and anything stray) only refreshes last_recv
        return events

    def _accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        self._pending.append((FramedChannel(sock), time.monotonic()))

    def _pump_pending(self, chan: FramedChannel) -> None:
        try:
            got = chan.recv_frames(timeout=0)
        except (ChannelClosed, ProtocolError):
            chan.close()
            return
        for frame in got:
            if frame.ftype == frames.HELLO:
                self._register(chan, frame.payload)
                return

    def _register(self, chan: FramedChannel, payload: bytes) -> None:
        self._pending = [(c, t) for c, t in self._pending if c is not chan]
        try:
            hello = pickle.loads(payload)
        except Exception:
            chan.close()
            return
        their_cell = hello.get("cell_key")
        if (
            their_cell is not None and self._cell_key is not None
            and their_cell != self._cell_key
        ):
            # Refuse loudly: a worker aimed at a different experiment must
            # not silently compute for this one.
            try:
                chan.send_frame(frames.BYE, pickle.dumps({
                    "reason": f"cell_key mismatch: coordinator serves "
                              f"{self._cell_key}, worker expects {their_cell}",
                }, protocol=pickle.HIGHEST_PROTOCOL))
            except ChannelClosed:
                pass
            chan.close()
            return
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        conn = _Conn(chan, worker_id)
        self._stats["connections"] += 1
        if hello.get("reconnect"):
            self._stats["reconnects"] += 1
        try:
            chan.send_frame(frames.WELCOME, self._welcome_blob)
        except ChannelClosed:
            chan.close()
            return
        self._conns[worker_id] = conn
        # Late joiners (and reconnectors) need the current round's model.
        self._send_bcast(conn)

    def _drop_conn(self, worker_id: int, reason: str) -> Optional[int]:
        """Close and retire one connection; returns its in-flight task_id."""
        conn = self._conns.pop(worker_id, None)
        if conn is None:
            return None
        _log.debug("dropping worker %d: %s", worker_id, reason)
        self._stats["retired_bytes_sent"] += conn.chan.bytes_sent
        self._stats["retired_bytes_recv"] += conn.chan.bytes_recv
        conn.chan.close()
        return conn.busy

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[ClientTaskSpec],
        decode_result: Callable[[Dict[str, Any]], TaskResult],
    ) -> List[TaskResult]:
        """Dispatch ``tasks`` over the fleet; results in task order.

        Every slot is filled: by a decoded worker result, or by a
        synthesized retryable ``connection_lost`` failure when the serving
        connection died (EOF / liveness / partition / per-task wall-clock
        ceiling) — the engine's retry/quorum policy takes it from there.
        """
        slots: List[Optional[TaskResult]] = [None] * len(tasks)
        remaining = len(tasks)
        unassigned = deque(range(len(tasks)))
        flights: Dict[int, _Flight] = {}
        now = time.monotonic()
        # Heartbeats queued in kernel buffers while the engine aggregated/
        # evaluated are stale; what matters is liveness from here on.
        for conn in self._conns.values():
            conn.last_recv = now
        last_live = now

        def settle(flight: _Flight, result: TaskResult) -> None:
            nonlocal remaining
            if slots[flight.idx] is None:
                slots[flight.idx] = result
                remaining -= 1
            flights.pop(flight.task_id, None)
            conn = self._conns.get(flight.worker_id)
            if conn is not None and conn.busy == flight.task_id:
                conn.busy = None

        while remaining:
            # Assign idle workers in worker-id order (results are
            # placement-invariant; the order is just deterministic greed).
            for worker_id in sorted(self._conns):
                if not unassigned:
                    break
                conn = self._conns[worker_id]
                if conn.busy is None:
                    idx = unassigned.popleft()
                    flight = _Flight(
                        idx=idx, worker_id=worker_id,
                        task_id=self._next_task_id,
                        first_sent=time.monotonic(), last_sent=0.0,
                    )
                    self._next_task_id += 1
                    flights[flight.task_id] = flight
                    conn.busy = flight.task_id
                    self._send_task(conn, flight, tasks[idx])
            for kind, worker_id, payload in self._pump(0.02):
                if kind == "result":
                    try:
                        job = pickle.loads(payload)
                    except Exception as exc:
                        self._lose_worker(worker_id, f"bad result payload: {exc}",
                                          tasks, settle, flights)
                        continue
                    flight = flights.get(int(job.get("task_id", -1)))
                    if flight is None:
                        continue  # duplicate/stale result: already settled
                    flight.receipts += 1
                    if self._injector is not None and self._injector.drop_recv(
                        "result", flight.task_id, flight.receipts
                    ):
                        continue  # recv-side drop: the resend timer recovers
                    settle(flight, decode_result(job["wire"]))
                elif kind == "need_bcast":
                    conn = self._conns.get(worker_id)
                    if conn is None:
                        continue
                    self._send_bcast(conn)
                    if conn.busy is not None and conn.busy in flights:
                        self._send_task(conn, flights[conn.busy], tasks[flights[conn.busy].idx])
            now = time.monotonic()
            for flight in list(flights.values()):
                conn = self._conns.get(flight.worker_id)
                if conn is None or conn.busy != flight.task_id:
                    # Serving connection died under the task.
                    self._stats["connection_losses"] += 1
                    settle(flight, self._lost(tasks[flight.idx], "connection lost"))
                elif now - flight.first_sent > self.connect_timeout_s:
                    self._stats["connection_losses"] += 1
                    settle(flight, self._lost(
                        tasks[flight.idx],
                        f"no result within {self.connect_timeout_s:.1f}s",
                    ))
                elif now - conn.last_recv > self._liveness_timeout_s:
                    self._stats["heartbeat_misses"] += 1
                    self._stats["connection_losses"] += 1
                    self._drop_conn(flight.worker_id, "heartbeat silence")
                    settle(flight, self._lost(tasks[flight.idx], "heartbeat silence"))
                elif now - flight.last_sent > _RESEND_TIMEOUT_S:
                    self._send_task(conn, flight, tasks[flight.idx])
            if self._conns or self._pending:
                last_live = now
            elif remaining and now - last_live > self.connect_timeout_s:
                # Whole fleet gone and nobody redialed: fail what's left.
                for flight in list(flights.values()):
                    self._stats["connection_losses"] += 1
                    settle(flight, self._lost(tasks[flight.idx], "no live workers"))
                while unassigned:
                    idx = unassigned.popleft()
                    if slots[idx] is None:
                        slots[idx] = self._lost(tasks[idx], "no live workers")
                        remaining -= 1
        return slots  # type: ignore[return-value]  # every slot is filled

    def _lose_worker(self, worker_id, reason, tasks, settle, flights) -> None:
        task_id = self._drop_conn(worker_id, reason)
        if task_id is not None and task_id in flights:
            self._stats["connection_losses"] += 1
            settle(flights[task_id], self._lost(tasks[flights[task_id].idx], reason))

    def _send_task(self, conn: _Conn, flight: _Flight, task: ClientTaskSpec) -> None:
        flight.sends += 1
        flight.last_sent = time.monotonic()
        if self._blocked(conn.worker_id):
            return  # partition: the frame evaporates
        payload = pickle.dumps(
            {"task_id": flight.task_id, "ver": self._bcast_ver, "task": task},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            conn.chan.send_frame(
                frames.TASK, payload,
                fault_key=("task", conn.worker_id, flight.task_id, flight.sends),
            )
        except ChannelClosed:
            self._drop_conn(conn.worker_id, "send failed")

    @staticmethod
    def _lost(task: ClientTaskSpec, detail: str) -> TaskResult:
        return TaskResult(
            update=None,
            state=None,
            failure=TaskFailure(
                kind="connection_lost",
                client_id=task.client_id,
                round_idx=task.round_idx,
                attempt=task.attempt,
                retryable=True,
                detail=detail,
            ),
        )

    # ------------------------------------------------------------------
    # stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Wire counters: live channel bytes plus retired connections."""
        out = dict(self._stats)
        sent = out.pop("retired_bytes_sent")
        recv = out.pop("retired_bytes_recv")
        for conn in self._conns.values():
            sent += conn.chan.bytes_sent
            recv += conn.chan.bytes_recv
        out["bytes_sent"] = sent
        out["bytes_recv"] = recv
        return out

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker_id in list(self._conns):
            conn = self._conns[worker_id]
            try:
                conn.chan.send_frame(frames.BYE, pickle.dumps(
                    {"reason": ""}, protocol=pickle.HIGHEST_PROTOCOL
                ))
            except ChannelClosed:
                pass
            self._drop_conn(worker_id, "shutdown")
        for chan, _t in self._pending:
            chan.close()
        self._pending = []
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - double close
            pass


class NetworkExecutor:
    """``executor: "network"`` — the engine's client rounds over sockets.

    Construction builds the :class:`CoordinatorServer`, and — when the
    bind host is loopback — spawns ``n_workers`` worker subprocesses
    (``python -m repro.fl.net.worker``) aimed back at it, so CI and tests
    need no external orchestration.  On a non-loopback bind the operator
    starts workers by hand and this just waits for them to register.
    """

    name = "network"
    #: tells the engine the wire can lose tasks even with no fault injector
    #: configured, so the failure policy (quorum skip instead of a crash on
    #: an empty aggregate) stays armed.
    inherently_unreliable = True

    def __init__(
        self,
        engine,
        n_workers: int = 2,
        *,
        bind: str = "127.0.0.1:0",
        connect_timeout_s: float = 20.0,
        heartbeat_s: float = 0.5,
        injector: Optional[NetFaultInjector] = None,
        codec: Optional[str] = None,
        codec_kwargs: Optional[Dict[str, Any]] = None,
        cell_key: Optional[str] = None,
        spawn_workers: Optional[bool] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if codec is not None and codec not in WIRE_CODECS:
            raise ValueError(f"unknown net codec {codec!r}; available: {list(WIRE_CODECS)}")
        pws = engine.process_worker_spec()  # also rejects custom model_fn
        layout: WeightLayout = engine.server.plane.layout
        if codec is not None and not layout.is_packed:
            raise ValueError("net codecs need a packed (uniform-dtype) weight layout")
        self._layout = layout
        self._n_workers = int(n_workers)
        self._connect_timeout_s = float(connect_timeout_s)
        self._codec = codec
        self._codec_kwargs = dict(codec_kwargs or {})
        self._recorder = engine.obs
        self._metrics_last: Dict[str, float] = {}
        self._bcast_flat: Optional[np.ndarray] = None
        self._procs: List[subprocess.Popen] = []
        self._closed = False
        spec = NetWorkerSpec(
            data=pws.data,
            strategy=pws.strategy,
            config=pws.config,
            model_name=pws.model_name,
            opt_name=pws.opt_name,
            fp_flops=pws.fp_flops,
            layout=layout,
            adversary=pws.adversary,
            population=pws.population,
            obs_enabled=pws.obs_enabled,
            obs_spans=pws.obs_spans,
            fault_injector=pws.fault_injector,
            cell_key=cell_key,
            heartbeat_s=float(heartbeat_s),
            codec=codec,
            codec_kwargs=self._codec_kwargs,
        )
        self._server = CoordinatorServer(
            bind,
            spec=spec,
            cell_key=cell_key,
            heartbeat_s=heartbeat_s,
            connect_timeout_s=connect_timeout_s,
            injector=injector,
        )
        try:
            host = bind.rpartition(":")[0]
            if spawn_workers is None:
                spawn_workers = host in _LOOPBACK_HOSTS
            if spawn_workers:
                self._spawn_loopback_workers(
                    cell_key, getattr(engine, "retry_backoff_base_s", 0.05)
                )
            self._server.wait_for_workers(self._n_workers, connect_timeout_s)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # loopback worker subprocesses
    # ------------------------------------------------------------------
    def _spawn_loopback_workers(self, cell_key: Optional[str],
                                backoff_base_s: float) -> None:
        host, port = self._server.address
        import repro

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        cmd = [
            sys.executable, "-m", "repro.fl.net.worker",
            "--connect", f"{host}:{port}",
            "--connect-timeout-s", str(self._connect_timeout_s),
            # Worker reconnect backoff reuses the engine's retry pricing
            # curve base — the satellite contract for retry_backoff_base_s.
            "--backoff-base-s", str(min(float(backoff_base_s), 0.25)),
        ]
        if cell_key is not None:
            cmd += ["--cell-key", cell_key]
        for _ in range(self._n_workers):
            self._procs.append(subprocess.Popen(cmd, env=env))

    # ------------------------------------------------------------------
    # executor contract
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    def borrow_worker(self):
        """Worker contexts live in other processes; nothing to lend."""
        return None

    def broadcast(self, weights, payload: Optional[Dict[str, Any]] = None) -> None:
        """Ship the round's global weights as one contiguous flat byte run
        (plus the pickled server payload) to every registered worker."""
        if isinstance(weights, ParamPlane) and weights.layout == self._layout:
            blob = weights.bytes_view().tobytes()
        else:
            buf = bytearray(self._layout.total_bytes)
            views = self._layout.views(buf, writeable=True)
            tree = broadcast_tree(weights)
            if len(tree) != len(views):
                raise ValueError(
                    f"weight tree has {len(tree)} arrays, layout expects {len(views)}"
                )
            for view, w in zip(views, tree):
                np.copyto(view, w)
            blob = bytes(buf)
        # Kept for codec decode: coded uploads are deltas against this.
        self._bcast_flat = (
            np.frombuffer(blob, dtype=self._layout.dtype)
            if self._layout.is_packed else None
        )
        self._server.set_broadcast(payload or {}, blob)

    def run(self, tasks: Sequence[ClientTaskSpec]) -> List[TaskResult]:
        results = self._server.run_tasks(tasks, self._decode_result)
        self._flush_wire_metrics()
        return results

    # ------------------------------------------------------------------
    # wire decode
    # ------------------------------------------------------------------
    def _decode_result(self, wire: Dict[str, Any]) -> TaskResult:
        upd = wire["update"]
        update: Optional[ClientUpdate] = None
        if upd is not None:
            mode = upd["mode"]
            if mode == "pickle":  # pragma: no cover - uniform-f32 models
                update = upd["update"]
            else:
                if mode == "flat":
                    flat = np.frombuffer(upd["blob"], dtype=upd["dtype"]).copy()
                elif mode == "codec":
                    if self._bcast_flat is None:
                        raise ProtocolError("coded result before any broadcast")
                    flat = self._bcast_flat + self._decode_codec(upd["enc"])
                else:
                    raise ProtocolError(f"unknown update wire mode {mode!r}")
                update = ClientUpdate.from_flat(
                    flat, self._layout.shapes, **upd["meta"]
                )
        return TaskResult(
            update=update,
            state=wire["state"],
            obs=wire["obs"],
            failure=wire["failure"],
            fault_delay_s=wire["fault_delay_s"],
            flops_wasted=wire["flops_wasted"],
        )

    def _decode_codec(self, enc: Dict[str, Any]) -> np.ndarray:
        if self._codec == "topk":
            return TopKCompressor(**self._codec_kwargs).decode_flat(enc)
        # Quantization decode is pure arithmetic on the payload; the seed
        # only drives encode-side stochastic rounding.
        return QuantizationCompressor(**self._codec_kwargs).decode_flat(enc)

    # ------------------------------------------------------------------
    # metrics / stats / lifecycle
    # ------------------------------------------------------------------
    def wire_stats(self) -> Dict[str, int]:
        """Connection/byte counters for benchmarks and tests."""
        return self._server.stats()

    def _flush_wire_metrics(self) -> None:
        if not self._recorder.enabled:
            return
        stats = self._server.stats()
        m = self._recorder.metrics
        for name, key, help_text in (
            ("fl_net_bytes_sent_total", "bytes_sent",
             "bytes the coordinator put on the wire"),
            ("fl_net_bytes_recv_total", "bytes_recv",
             "bytes the coordinator read off the wire"),
            ("fl_net_reconnects_total", "reconnects",
             "worker re-registrations after a lost connection"),
            ("fl_net_heartbeat_misses_total", "heartbeat_misses",
             "connections declared dead for heartbeat silence"),
            ("fl_net_connection_losses_total", "connection_losses",
             "tasks failed as connection_lost"),
        ):
            value = float(stats[key])
            delta = value - self._metrics_last.get(name, 0.0)
            if delta > 0:
                m.counter(name, help_text).inc(delta)
            self._metrics_last[name] = value

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._flush_wire_metrics()
        self._server.shutdown()
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()
        self._procs = []

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self.close()
        except Exception:
            pass
