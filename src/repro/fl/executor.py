"""Client-round execution backends.

An FL round trains K independent clients; the simulation expresses each as a
closure over a :class:`WorkerContext` (a model replica + optimizer + frozen
reference model) and hands the batch to an executor:

* :class:`SerialExecutor` — one worker context, clients trained in order.
  The default, and the only sensible choice on a single core.
* :class:`ThreadedExecutor` — N worker contexts served by a thread pool.
  NumPy's BLAS kernels release the GIL, so multi-core machines overlap the
  GEMM-heavy forward/backward work across clients.  Results are returned in
  task order, so serial and threaded execution are bit-identical per client
  (verified by tests).
"""

from __future__ import annotations

import queue
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.fl.types import ClientUpdate
from repro.models.fedmodel import FedModel
from repro.nn.losses import CrossEntropyLoss
from repro.optim.base import Optimizer

__all__ = ["WorkerContext", "SerialExecutor", "ThreadedExecutor"]

ClientTask = Callable[["WorkerContext"], ClientUpdate]


@dataclass
class WorkerContext:
    """Per-worker mutable resources; never shared across threads."""

    model: FedModel
    frozen: FedModel
    optimizer: Optimizer
    criterion: CrossEntropyLoss


class SerialExecutor:
    """Run client tasks one after another on a single worker context."""

    def __init__(self, make_worker: Callable[[], WorkerContext]) -> None:
        self._worker = make_worker()

    @property
    def n_workers(self) -> int:
        return 1

    def borrow_worker(self) -> Optional[WorkerContext]:
        """The resident worker context, for out-of-band single-threaded work
        (global evaluation, preamble passes).  Serial execution has exactly
        one; callers must not hold it across ``run()`` calls."""
        return self._worker

    def run(self, tasks: List[ClientTask]) -> List[ClientUpdate]:
        return [task(self._worker) for task in tasks]

    def close(self) -> None:  # symmetry with ThreadedExecutor
        pass


class ThreadedExecutor:
    """Thread-pool execution with a checkout queue of worker contexts."""

    def __init__(self, make_worker: Callable[[], WorkerContext], n_workers: int = 2) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self._n_workers = n_workers
        self._contexts: "queue.SimpleQueue[WorkerContext]" = queue.SimpleQueue()
        for _ in range(n_workers):
            self._contexts.put(make_worker())
        self._pool = ThreadPoolExecutor(max_workers=n_workers, thread_name_prefix="fl-worker")

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def borrow_worker(self) -> Optional[WorkerContext]:
        """No single resident worker exists in the pool; callers needing a
        model for out-of-band work must build their own replica."""
        return None

    def _run_one(self, task: ClientTask) -> ClientUpdate:
        ctx = self._contexts.get()
        try:
            return task(ctx)
        finally:
            self._contexts.put(ctx)

    def run(self, tasks: List[ClientTask]) -> List[ClientUpdate]:
        futures = [self._pool.submit(self._run_one, t) for t in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self._pool.shutdown(wait=False)
        except Exception:
            pass
