"""Client-round execution backends and the picklable task layer.

An FL round trains K independent clients.  The engine describes each one as
a :class:`ClientTaskSpec` — a plain-data payload (client id, round index,
persistent strategy state, server broadcast blob) that any backend can
execute, including out-of-process ones — and hands the batch to an executor:

* :class:`SerialExecutor` — one worker context, clients trained in order.
  The default, and the only backend that supports the preamble phase.
* :class:`ThreadedExecutor` — N worker contexts served by a thread pool.
  NumPy's BLAS kernels release the GIL, so multi-core machines overlap the
  GEMM-heavy forward/backward work across clients.
* :class:`~repro.fl.process_executor.ProcessExecutor` — N worker *processes*
  fed through a ``multiprocessing`` pool, with the global weights broadcast
  once per round via ``multiprocessing.shared_memory`` (see that module).

All backends return results in task order, so a fixed seed produces
byte-identical round records on every backend (verified by tests).  The
executor registry in :mod:`repro.api.registry` resolves backends by name
(``"serial"`` / ``"threaded"`` / ``"process"``).
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.fl.client import Client, run_client_round
from repro.fl.faults import FaultInjector, TaskFailure
from repro.fl.params import ParamPlane
from repro.fl.robust.adversaries import Adversary
from repro.fl.types import ClientUpdate, FLConfig
from repro.obs import NULL_RECORDER
from repro.models.fedmodel import FedModel
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim import SGD, Adam
from repro.optim.base import Optimizer

__all__ = [
    "WorkerContext",
    "ClientTaskSpec",
    "TaskResult",
    "TaskRuntime",
    "SerialExecutor",
    "ThreadedExecutor",
    "broadcast_tree",
    "broadcast_flat",
    "build_round_context",
    "execute_task",
    "make_optimizer",
    "upload_nbytes",
]


def broadcast_tree(weights) -> List[np.ndarray]:
    """Normalize a broadcast argument — a :class:`~repro.fl.params.ParamPlane`
    (the engine's zero-churn path) or a plain weight tree — to the per-layer
    view list executors hand to workers."""
    if isinstance(weights, ParamPlane):
        return weights.tree
    return weights


def broadcast_flat(weights) -> Optional[np.ndarray]:
    """The broadcast argument's ``(P,)`` vector when it has one (a packed
    :class:`~repro.fl.params.ParamPlane`), else None — plain weight trees
    keep workers on the per-layer adoption fallback."""
    if isinstance(weights, ParamPlane):
        return weights.flat
    return None


def make_optimizer(name: str, params, config: FLConfig):
    """Build the local optimizer the paper pairs with each method.

    ``params`` is either a parameter sequence (per-layer optimizer) or a
    whole model: models are materialized onto weight/grad planes first and
    the optimizer gets their flat state, enabling the fused ``(P,)`` update
    path every worker context uses.
    """
    flat_state = None
    if isinstance(params, Module):
        model = params.materialize_flat()
        flat_state = model.flat_state()
        params = model.parameters()
    key = name.lower()
    if key == "sgdm":
        return SGD(params, lr=config.lr, momentum=config.momentum, flat_state=flat_state)
    if key == "sgd":
        return SGD(params, lr=config.lr, momentum=0.0, flat_state=flat_state)
    if key == "adam":
        return Adam(params, lr=config.lr, flat_state=flat_state)
    raise ValueError(f"unknown optimizer {name!r}")


@dataclass
class WorkerContext:
    """Per-worker mutable resources; never shared across threads/processes."""

    model: FedModel
    frozen: FedModel
    optimizer: Optimizer
    criterion: CrossEntropyLoss


@dataclass
class ClientTaskSpec:
    """One client's work order for one round — plain data, picklable.

    ``state`` is the client's persistent strategy state (historical model,
    control variates, ...): the executor hands it to the strategy hooks and
    returns the (possibly replaced) dict on the :class:`TaskResult`, which
    is how state round-trips across process boundaries.  The server's
    round broadcast payload is deliberately *not* part of the task — it is
    shipped once per round through ``executor.broadcast`` (so the process
    backend never pickles it per client).  ``emulate_seconds`` optionally
    charges a wall-clock sleep per task, modelling device/network latency
    (see :mod:`repro.fl.systems`) so scheduling benchmarks can measure
    backend overlap independently of raw FLOPs.  ``xi_measured`` is the
    scheduler-observed staleness of this client (server versions since its
    last dispatch) when an event-driven mode runs the round; ``None`` in
    the synchronous mode, where staleness is round arithmetic.
    ``attempt`` counts retries of this task under the engine's failure
    policy (0 = first dispatch); the fault injector keys its coin on it,
    so a retried task re-draws its fate deterministically.
    """

    client_id: int
    round_idx: int
    state: Dict[str, Any]
    preamble_flops: float = 0.0
    emulate_seconds: float = 0.0
    xi_measured: Optional[float] = None
    attempt: int = 0


@dataclass
class TaskResult:
    """What an executor returns per task: the update + the new client state.

    ``obs`` is a process-pool worker's drained observability shard (span
    records + metric deltas, plain picklable dicts) when the run has
    tracing/metrics enabled; ``None`` otherwise and for in-process
    backends, which record straight into the engine's recorder.

    A *failed* task carries a :class:`~repro.fl.faults.TaskFailure` in
    ``failure`` instead of a usable update: ``update`` is then ``None``
    (or, for corruption faults, the mangled payload kept for inspection —
    never aggregated) and ``state`` is ``None`` when the client's state was
    never touched.  ``fault_delay_s`` is a straggler injector's extra
    simulated report latency (virtual clock only — no wall sleep);
    ``flops_wasted`` is compute burned by a mid-train crash, surfaced
    through obs but never billed to the cost model.
    """

    update: Optional[ClientUpdate]
    state: Optional[Dict[str, Any]]
    obs: Optional[Dict[str, Any]] = None
    failure: Optional[TaskFailure] = None
    fault_delay_s: float = 0.0
    flops_wasted: float = 0.0


@dataclass
class TaskRuntime:
    """Everything a backend needs to turn a :class:`ClientTaskSpec` into a
    :class:`TaskResult`.

    In-process executors share the engine's runtime (``global_weights`` and
    ``server_broadcast`` are rebound by :meth:`SerialExecutor.broadcast`
    each round); each pool worker of the process backend builds its own
    from a picklable init payload, with ``global_weights`` pointing at
    read-only shared-memory views and ``server_broadcast`` refreshed once
    per round from the broadcast segment.
    """

    #: client roster, indexed by client id.  Either the engine's eager list
    #: or a lazy :class:`~repro.fl.population.ClientDirectory` (population
    #: mode) — backends only ever do ``clients[client_id]``, which both
    #: support (the directory materializes on first touch, thread-safely).
    clients: Sequence[Client]
    strategy: Strategy
    config: FLConfig
    fp_flops: float
    global_weights: List[np.ndarray]
    server_broadcast: Dict[str, Any] = field(default_factory=dict)
    #: the same global weights as one ``(P,)`` vector (aliasing
    #: ``global_weights``); None when the broadcast was a plain tree, in
    #: which case workers take the per-layer adoption fallback.
    global_flat: Optional[np.ndarray] = None
    #: optional :class:`~repro.fl.robust.adversaries.Adversary` corrupting
    #: roster clients' uploads inside :func:`execute_task` — the one code
    #: path every backend shares, so the attack composes identically with
    #: serial/threaded/process executors and sync/semisync/async modes.
    adversary: Optional[Adversary] = None
    #: optional :class:`~repro.fl.faults.FaultInjector` failing tasks at the
    #: same choke point — also shared by every backend, so a fixed seed
    #: produces the identical failure pattern on all of them.
    fault_injector: Optional[FaultInjector] = None
    #: True only inside a process-pool worker (set by ``_init_worker``);
    #: lets the worker-death fault actually kill the process there while
    #: in-process backends synthesize the equivalent failure.
    in_pool_worker: bool = False
    #: observability sink for per-task spans/metrics (see :mod:`repro.obs`).
    #: In-process backends share the engine's recorder (thread-safe); each
    #: process-pool worker gets its own shard recorder whose output pickles
    #: home on the task result.  Defaults to the no-op null recorder, which
    #: hot-path call sites skip with a single attribute check.
    recorder: Any = NULL_RECORDER


def build_round_context(
    worker: WorkerContext,
    runtime: TaskRuntime,
    client_id: int,
    round_idx: int,
    broadcast: Dict[str, Any],
    state: Dict[str, Any],
    xi_measured: Optional[float] = None,
) -> ClientRoundContext:
    """Load the global weights into the worker model and assemble the
    per-client round context every strategy hook receives.

    Broadcast adoption on a plane-backed worker is one ``np.copyto`` of the
    flat vector into the model's weight plane; non-plane models (or tree
    broadcasts) copy per layer as before."""
    client = runtime.clients[client_id]
    flat = runtime.global_flat
    if flat is not None and worker.model.flat_weights is not None:
        worker.model.set_weights_flat(flat)
    else:
        worker.model.set_weights(runtime.global_weights)
    return ClientRoundContext(
        client_id=client.id,
        round_idx=round_idx,
        global_weights=runtime.global_weights,
        model=worker.model,
        frozen=worker.frozen,
        optimizer=worker.optimizer,
        criterion=worker.criterion,
        config=runtime.config,
        state=state,
        rng=client.round_rng(round_idx),
        n_samples=client.num_samples,
        fp_flops_per_sample=runtime.fp_flops,
        server_broadcast=dict(broadcast),
        xi_measured=xi_measured,
        global_flat=flat,
    )


def upload_nbytes(update: ClientUpdate) -> int:
    """Actual bytes an update puts on the (simulated) uplink: the flat
    weight vector plus any ndarray extras.  Distinct from the cost model's
    ``comm_bytes`` (which prices a whole round trip per the paper)."""
    flat = update.flat
    if flat is not None:
        total = int(flat.nbytes)
    else:
        total = sum(int(np.asarray(w).nbytes) for w in update.weights)
    for value in update.extras.values():
        if isinstance(value, np.ndarray):
            total += int(value.nbytes)
    return total


def execute_task(task: ClientTaskSpec, worker: WorkerContext, runtime: TaskRuntime) -> TaskResult:
    """Run one client task on one worker context (any backend, any process).

    When the runtime carries an adversary and this client is on its roster,
    the honest update is corrupted *here*, at upload time — after local
    training, before the result leaves the worker — so every backend and
    server mode sees the identical crafted update.

    This is also the observability choke point: with a live recorder on
    the runtime, every backend's tasks emit the same per-client span and
    metric updates.  The disabled path is one attribute check — no timer,
    no allocations.
    """
    recorder = runtime.recorder
    t_start = time.perf_counter() if recorder.enabled else 0.0
    injector = runtime.fault_injector
    fault_fires = injector is not None and injector.fires(
        task.client_id, task.round_idx, task.attempt
    )
    if fault_fires:
        failed = injector.pre_train(task, runtime)
        if failed is not None:
            # Crash-style fault: no training happened, no state changed —
            # the same no-op on the in-place serial backend and the
            # copy-shipping process backend, which is what keeps retries
            # byte-identical across them.
            return failed
    if task.emulate_seconds > 0.0:
        time.sleep(task.emulate_seconds)
    client = runtime.clients[task.client_id]
    ctx = build_round_context(
        worker, runtime, task.client_id, task.round_idx,
        runtime.server_broadcast, task.state, xi_measured=task.xi_measured,
    )
    update = run_client_round(client, runtime.strategy, ctx)
    update.flops += task.preamble_flops
    adversary = runtime.adversary
    if adversary is not None and adversary.is_adversary(task.client_id):
        update = adversary.corrupt_update(
            update, task.round_idx, runtime.global_flat, runtime.global_weights
        )
    if recorder.enabled:
        recorder.client_task(
            client_id=task.client_id,
            round_idx=task.round_idx,
            dur_s=time.perf_counter() - t_start,
            n_samples=update.num_samples,
            flops=update.flops,
            bytes_up=upload_nbytes(update),
            staleness=task.xi_measured,
        )
    result = TaskResult(update=update, state=ctx.state)
    if fault_fires:
        # Straggler-style fault: training was honest, only the simulated
        # report time stretches.  Whether the delay becomes a timeout
        # failure is the engine's policy call, not the worker's.
        result.fault_delay_s = injector.delay_s(task)
    return result


class SerialExecutor:
    """Run client tasks one after another on a single worker context."""

    name = "serial"

    def __init__(
        self,
        make_worker: Callable[[], WorkerContext],
        runtime: Optional[TaskRuntime] = None,
    ) -> None:
        self._worker = make_worker()
        self.runtime = runtime

    @property
    def n_workers(self) -> int:
        return 1

    def borrow_worker(self) -> Optional[WorkerContext]:
        """The resident worker context, for out-of-band single-threaded work
        (global evaluation, preamble passes).  Serial execution has exactly
        one; callers must not hold it across ``run()`` calls."""
        return self._worker

    def broadcast(self, weights,
                  payload: Optional[Dict[str, Any]] = None) -> None:
        """Point this round's tasks at the new global weights (a
        :class:`~repro.fl.params.ParamPlane` or weight tree) and server
        broadcast payload (no copies)."""
        runtime = self._require_runtime()
        runtime.global_weights = broadcast_tree(weights)
        runtime.global_flat = broadcast_flat(weights)
        runtime.server_broadcast = payload if payload is not None else {}

    def _require_runtime(self) -> TaskRuntime:
        if self.runtime is None:
            raise RuntimeError("executor was constructed without a TaskRuntime")
        return self.runtime

    def run(self, tasks: Sequence[ClientTaskSpec]) -> List[TaskResult]:
        runtime = self._require_runtime()
        return [execute_task(t, self._worker, runtime) for t in tasks]

    def close(self) -> None:  # symmetry with the pooled backends
        pass


class ThreadedExecutor:
    """Thread-pool execution with a checkout queue of worker contexts."""

    name = "threaded"

    def __init__(
        self,
        make_worker: Callable[[], WorkerContext],
        runtime: Optional[TaskRuntime] = None,
        n_workers: int = 2,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self._n_workers = n_workers
        self.runtime = runtime
        self._contexts: "queue.SimpleQueue[WorkerContext]" = queue.SimpleQueue()
        for _ in range(n_workers):
            self._contexts.put(make_worker())
        self._pool = ThreadPoolExecutor(max_workers=n_workers, thread_name_prefix="fl-worker")

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def borrow_worker(self) -> Optional[WorkerContext]:
        """No single resident worker exists in the pool; callers needing a
        model for out-of-band work must build their own replica."""
        return None

    def broadcast(self, weights,
                  payload: Optional[Dict[str, Any]] = None) -> None:
        """Point this round's tasks at the new global weights (a
        :class:`~repro.fl.params.ParamPlane` or weight tree) and server
        broadcast payload (no copies)."""
        if self.runtime is None:
            raise RuntimeError("executor was constructed without a TaskRuntime")
        self.runtime.global_weights = broadcast_tree(weights)
        self.runtime.global_flat = broadcast_flat(weights)
        self.runtime.server_broadcast = payload if payload is not None else {}

    def _run_one(self, task: ClientTaskSpec) -> TaskResult:
        ctx = self._contexts.get()
        try:
            return execute_task(task, ctx, self.runtime)
        finally:
            self._contexts.put(ctx)

    def run(self, tasks: Sequence[ClientTaskSpec]) -> List[TaskResult]:
        if self.runtime is None:
            raise RuntimeError("executor was constructed without a TaskRuntime")
        futures = [self._pool.submit(self._run_one, t) for t in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self._pool.shutdown(wait=False)
        except Exception:
            pass
