"""The synchronous FL round loop (Algorithm 1's outer structure).

Each round:

1. sample K clients (line 2);
2. optional preamble phase — FedDANE/MimeLite collect full-batch gradients at
   the global model and the server combines them;
3. every selected client trains locally from the global weights (lines 3-10),
   executed through a pluggable serial/threaded executor;
4. the server aggregates (line 12) and the strategy post-processes;
5. the global model is evaluated on the held-out test set and a
   :class:`~repro.fl.types.RoundRecord` is appended to the history, including
   cumulative computation (FLOPs) and communication (bytes) — the quantities
   Tables IV and V report.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.algorithms.base import ClientRoundContext, Strategy
from repro.data.federated import FederatedData
from repro.fl.client import Client, run_client_round
from repro.fl.evaluation import evaluate_model, full_batch_gradient
from repro.fl.executor import SerialExecutor, ThreadedExecutor, WorkerContext
from repro.fl.history import History
from repro.fl.sampling import UniformSampler
from repro.fl.server import Server
from repro.fl.types import FLConfig, RoundRecord
from repro.models import build_model, profile_model
from repro.models.fedmodel import FedModel
from repro.nn.losses import CrossEntropyLoss
from repro.optim import SGD, Adam
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

__all__ = ["Simulation", "make_optimizer"]

_log = get_logger("fl.simulation")


def make_optimizer(name: str, params, config: FLConfig):
    """Build the local optimizer the paper pairs with each method."""
    key = name.lower()
    if key == "sgdm":
        return SGD(params, lr=config.lr, momentum=config.momentum)
    if key == "sgd":
        return SGD(params, lr=config.lr, momentum=0.0)
    if key == "adam":
        return Adam(params, lr=config.lr)
    raise ValueError(f"unknown optimizer {name!r}")


class Simulation:
    """Wire a dataset, a model architecture and a strategy into a round loop.

    Parameters
    ----------
    data:
        Partitioned federated dataset.
    strategy:
        Algorithm instance (see :mod:`repro.algorithms`).
    config:
        Round/optimizer configuration.
    model_name:
        Registry key ("mlp" / "cnn" / "alexnet"); ignored if ``model_fn``.
    model_fn:
        Custom factory ``() -> FedModel``, overriding the registry.
    sampler:
        Client-selection policy; defaults to the paper's uniform K-of-N.
    n_workers:
        >1 enables the threaded executor (strategies with a preamble phase
        require serial execution and will reject it).
    """

    def __init__(
        self,
        data: FederatedData,
        strategy: Strategy,
        config: FLConfig,
        model_name: str = "cnn",
        model_fn: Optional[Callable[[], FedModel]] = None,
        sampler=None,
        n_workers: int = 1,
    ) -> None:
        if config.n_clients != data.n_clients:
            raise ValueError(
                f"config.n_clients={config.n_clients} but data has {data.n_clients} shards"
            )
        self.data = data
        self.strategy = strategy
        self.config = config
        root = RngStream(config.seed)
        if model_fn is None:
            spec = data.spec

            def model_fn() -> FedModel:
                # A fresh child generator per call -> every replica gets the
                # same deterministic initial weights.
                return build_model(
                    model_name,
                    spec.input_shape,
                    spec.num_classes,
                    rng=root.child("model-init").generator,
                )

        self._model_fn = model_fn
        canonical = model_fn()
        self.profile = profile_model(canonical)
        self.server = Server(canonical.get_weights(), strategy, config)
        self.clients: List[Client] = [
            Client(k, data.client_dataset(k), seed=config.seed) for k in range(data.n_clients)
        ]
        for c in self.clients:
            c.state = strategy.init_client_state(c.id)
        self.sampler = sampler if sampler is not None else UniformSampler(
            config.n_clients, config.clients_per_round, seed=config.seed
        )
        opt_name = strategy.local_optimizer or config.optimizer

        def make_worker() -> WorkerContext:
            model = model_fn()
            frozen = model_fn()
            frozen.eval()
            optimizer = make_optimizer(opt_name, model.parameters(), config)
            return WorkerContext(model, frozen, optimizer, CrossEntropyLoss())

        if n_workers <= 1:
            self.executor = SerialExecutor(make_worker)
        else:
            if strategy.needs_preamble:
                raise ValueError(
                    f"{strategy.name} uses a preamble phase; run with n_workers=1"
                )
            self.executor = ThreadedExecutor(make_worker, n_workers)
        self.history = History()
        self._preamble_worker = None  # lazily built serial worker for preambles
        # Observers called with (updates, global_weights_before_aggregation)
        # every round — used by drift diagnostics and custom metrics.
        self.update_observers: List = []

    # ------------------------------------------------------------------
    def _build_ctx(self, worker: WorkerContext, client: Client, round_idx: int,
                   broadcast: Dict) -> ClientRoundContext:
        worker.model.set_weights(self.server.weights)
        return ClientRoundContext(
            client_id=client.id,
            round_idx=round_idx,
            global_weights=self.server.weights,
            model=worker.model,
            frozen=worker.frozen,
            optimizer=worker.optimizer,
            criterion=worker.criterion,
            config=self.config,
            state=client.state,
            rng=client.round_rng(round_idx),
            n_samples=client.num_samples,
            fp_flops_per_sample=float(self.profile.forward_flops),
            server_broadcast=dict(broadcast),
        )

    def _run_preamble(self, selected: List[int], round_idx: int, broadcast: Dict) -> Dict[int, Dict]:
        """Phase 2: full-batch gradients at the global model (FedDANE/MimeLite)."""
        if self._preamble_worker is None:
            # Reuse the serial executor's worker when possible.
            if isinstance(self.executor, SerialExecutor):
                self._preamble_worker = self.executor._worker
            else:  # pragma: no cover - preamble forces serial execution
                raise RuntimeError("preamble phase requires serial execution")
        worker = self._preamble_worker
        payloads: Dict[int, Dict] = {}
        self._preamble_flops: Dict[int, float] = {}
        for k in selected:
            client = self.clients[k]
            ctx = self._build_ctx(worker, client, round_idx, broadcast)
            grad = full_batch_gradient(worker.model, client.dataset, self.config.eval_batch_size)
            payloads[k] = self.strategy.client_preamble(ctx, grad)
            # full-batch grad = one fwd+bwd pass over the shard (3x forward).
            self._preamble_flops[k] = 3.0 * client.num_samples * self.profile.forward_flops
        return payloads

    # ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        t0 = time.perf_counter()
        round_idx = self.server.round_idx
        selected = self.sampler.select(round_idx)
        broadcast = self.server.broadcast_payload()

        preamble_flops: Dict[int, float] = {}
        if self.strategy.needs_preamble:
            payloads = self._run_preamble(selected, round_idx, broadcast)
            self.server.run_preamble(payloads)
            broadcast = self.server.broadcast_payload()  # may now include agg. grad
            preamble_flops = self._preamble_flops

        def make_task(client: Client):
            def task(worker: WorkerContext):
                ctx = self._build_ctx(worker, client, round_idx, broadcast)
                return run_client_round(client, self.strategy, ctx)

            return task

        updates = self.executor.run([make_task(self.clients[k]) for k in selected])
        for upd in updates:
            upd.flops += preamble_flops.get(upd.client_id, 0.0)

        for observer in self.update_observers:
            observer(updates, self.server.weights)
        self.server.apply_updates(updates)

        # -- bookkeeping ------------------------------------------------
        round_flops = sum(u.flops for u in updates)
        round_comm = sum(u.comm_bytes for u in updates)
        prev = self.history.records[-1] if self.history.records else None
        cum_flops = (prev.cumulative_flops if prev else 0.0) + round_flops
        cum_comm = (prev.cumulative_comm_bytes if prev else 0.0) + round_comm

        acc = loss = None
        evaluate = (
            round_idx % self.config.eval_every == 0 or round_idx == self.config.rounds - 1
        )
        if evaluate:
            acc, loss = self.evaluate_global()
        record = RoundRecord(
            round_idx=round_idx,
            selected=selected,
            test_accuracy=acc,
            test_loss=loss,
            mean_train_loss=float(np.mean([u.train_loss for u in updates])),
            cumulative_flops=cum_flops,
            cumulative_comm_bytes=cum_comm,
            wall_seconds=time.perf_counter() - t0,
        )
        self.history.append(record)
        return record

    def run(self, progress: bool = False) -> History:
        """Run all configured rounds and return the history."""
        for _ in range(self.config.rounds - len(self.history)):
            record = self.run_round()
            if progress and record.test_accuracy is not None:
                _log.info(
                    "[%s] round %d acc=%.2f%% loss=%.4f",
                    self.strategy.name,
                    record.round_idx,
                    record.test_accuracy,
                    record.test_loss,
                )
        return self.history

    def evaluate_global(self):
        """Accuracy/loss of the current global weights on the test split."""
        worker = getattr(self.executor, "_worker", None)
        model = worker.model if worker is not None else self._model_fn()
        model.set_weights(self.server.weights)
        return evaluate_model(model, self.data.test, self.config.eval_batch_size)

    def global_model(self) -> FedModel:
        """A fresh model instance loaded with the current global weights."""
        model = self._model_fn()
        model.set_weights(self.server.weights)
        return model

    def close(self) -> None:
        self.executor.close()
