"""Compatibility shim: the classic ``Simulation`` entry point.

The round loop itself now lives in :class:`repro.api.engine.Engine`, which
decomposes it into named phases (``sample -> broadcast -> preamble ->
local_train -> aggregate -> evaluate -> record``) and drives
:class:`repro.api.callbacks.Callback` hooks between them.  ``Simulation``
is a direct subclass kept so the historical imperative API —

    sim = Simulation(data, strategy, config, model_name="cnn")
    history = sim.run()
    sim.close()

— keeps working unchanged (constructor signature, ``run_round()``,
``update_observers``, ``evaluate_global()``, ``global_model()``), including
the engine's registry-resolved execution backends
(``executor="serial"|"threaded"|"process"``).  New code should prefer the
declarative front door::

    from repro.api import ExperimentSpec, run_experiment
    history = run_experiment(ExperimentSpec(dataset="mini_mnist", model="cnn"))

Both paths execute the same engine code, so a fixed seed produces identical
round records either way (a property the test suite asserts).
"""

from __future__ import annotations

from repro.api.engine import Engine, make_optimizer

__all__ = ["Simulation", "make_optimizer"]


class Simulation(Engine):
    """Imperative alias of :class:`repro.api.engine.Engine`.

    Accepts exactly the engine's constructor arguments; see ``Engine`` for
    the parameter reference and the phase/callback lifecycle.
    """
