"""Centralized training baseline: the upper bound FL papers quote.

Pools every client's data and trains one model with plain mini-batch SGD —
no communication, no heterogeneity.  FL accuracy curves are read against
this ceiling; the gap FedTrip closes is the heterogeneity-induced part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.federated import FederatedData
from repro.fl.evaluation import evaluate_model
from repro.models.fedmodel import FedModel
from repro.nn.losses import CrossEntropyLoss
from repro.optim import SGD
from repro.utils.rng import RngStream

__all__ = ["CentralizedResult", "train_centralized"]


@dataclass
class CentralizedResult:
    """Per-epoch accuracy/loss of the pooled-data baseline."""

    accuracies: List[float]
    losses: List[float]
    model: FedModel

    @property
    def best_accuracy(self) -> float:
        return max(self.accuracies)

    def epochs_to_accuracy(self, target: float) -> Optional[int]:
        for i, acc in enumerate(self.accuracies):
            if acc >= target:
                return i + 1
        return None


def train_centralized(
    data: FederatedData,
    model: FedModel,
    epochs: int = 10,
    batch_size: int = 50,
    lr: float = 0.01,
    momentum: float = 0.9,
    seed: int = 0,
    eval_batch_size: int = 256,
) -> CentralizedResult:
    """Train ``model`` on the union of all client shards.

    Only the partitioned samples are pooled (not the full train split), so
    the comparison against the federated run uses exactly the same data.
    """
    if epochs <= 0 or batch_size <= 0 or lr <= 0:
        raise ValueError("epochs, batch_size and lr must be positive")
    pooled_idx = np.concatenate(data.client_shards)
    pooled = data.train.subset(pooled_idx)
    rng = RngStream(seed).child("centralized").generator
    loader = DataLoader(pooled, batch_size=batch_size, rng=rng, shuffle=True)
    criterion = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)

    accuracies: List[float] = []
    losses: List[float] = []
    for _ in range(epochs):
        model.train()
        epoch_losses = []
        for xb, yb in loader:
            logits = model(xb)
            loss, dlogits = criterion(logits, yb)
            model.zero_grad()
            model.backward(dlogits)
            optimizer.step()
            epoch_losses.append(loss)
        acc, _ = evaluate_model(model, data.test, eval_batch_size)
        accuracies.append(acc)
        losses.append(float(np.mean(epoch_losses)))
    return CentralizedResult(accuracies=accuracies, losses=losses, model=model)
