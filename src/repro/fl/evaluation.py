"""Global-model evaluation on the server-side test set."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.models.fedmodel import FedModel
from repro.nn.losses import CrossEntropyLoss

__all__ = ["evaluate_model", "full_batch_gradient"]


def evaluate_model(
    model: FedModel,
    dataset: ArrayDataset,
    batch_size: int = 256,
) -> Tuple[float, float]:
    """Return ``(accuracy_percent, mean_loss)`` in eval mode.

    Iterates sequential slices (no shuffle needed for evaluation) so memory
    stays bounded even for the paper-scale test splits.
    """
    criterion = CrossEntropyLoss()
    was_training = model.training
    model.eval()
    correct = 0
    loss_sum = 0.0
    n = len(dataset)
    try:
        for start in range(0, n, batch_size):
            xb = dataset.x[start : start + batch_size]
            yb = dataset.y[start : start + batch_size]
            logits = model(xb)
            loss, _ = criterion(logits, yb)
            loss_sum += loss * xb.shape[0]
            correct += int((np.argmax(logits, axis=1) == yb).sum())
    finally:
        model.train(was_training)
    return 100.0 * correct / n, loss_sum / n


def full_batch_gradient(
    model: FedModel,
    dataset: ArrayDataset,
    batch_size: int = 256,
):
    """Gradient of the mean loss over the whole local dataset.

    Needed by FedDANE's gradient correction and MimeLite's server momentum.
    The model's weights are left untouched; its gradient buffers hold the
    result, which is returned as a detached copy.
    """
    criterion = CrossEntropyLoss()
    model.train()
    model.zero_grad()
    n = len(dataset)
    for start in range(0, n, batch_size):
        xb = dataset.x[start : start + batch_size]
        yb = dataset.y[start : start + batch_size]
        logits = model(xb)
        _, dlogits = criterion(logits, yb)
        # criterion grad is mean over the batch; rescale so the accumulated
        # sum equals the mean over the full dataset.
        model.backward(dlogits * (xb.shape[0] / n))
    return [np.array(p.grad, copy=True) for p in model.parameters()]
