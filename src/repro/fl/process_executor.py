"""Process-pool execution with shared-memory weight broadcast.

Training a client round is dominated by pure-Python tape/optimizer work that
holds the GIL, so :class:`~repro.fl.executor.ThreadedExecutor` stops scaling
almost immediately.  :class:`ProcessExecutor` sidesteps the GIL entirely: it
trains clients in a persistent ``multiprocessing`` worker pool, and instead
of pickling the full global model into every client task it broadcasts the
weights **once per round** through a ``multiprocessing.shared_memory`` flat
buffer:

* the server side does **one** ``np.copyto`` per round into the shared
  segment (:meth:`ProcessExecutor.broadcast`): the engine's
  :class:`~repro.fl.params.ParamPlane` and the segment share the same
  :class:`~repro.fl.params.WeightLayout`, so the whole model moves as a
  single flat byte copy;
* every worker holds *read-only* NumPy views into the same segment, so
  reading the global weights is zero-copy — ``set_weights`` copies them into
  the worker's model exactly as the in-process backends do.

Workers are initialized once per pool from a picklable
:class:`ProcessWorkerSpec` (dataset, strategy, config, model registry name)
and rebuild their model/optimizer/clients locally with the same seeded RNG
streams as the engine, so a fixed seed produces byte-identical round records
across serial, threaded and process backends (asserted by tests).

Synchronization contract: the engine calls ``broadcast(weights)`` strictly
before ``run(tasks)`` and ``run`` is synchronous, so no worker ever reads
the segment while the parent writes it.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, replace
from time import monotonic
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import Strategy
from repro.data.federated import FederatedData
from repro.fl.client import Client
from repro.fl.executor import (
    ClientTaskSpec,
    TaskResult,
    TaskRuntime,
    WorkerContext,
    execute_task,
    make_optimizer,
)
from repro.fl.faults import FaultInjector, TaskFailure
# WeightLayout's home is repro.fl.params since the flat-parameter refactor;
# re-exported here for backward compatibility.
from repro.fl.params import ParamPlane, WeightLayout
from repro.fl.population import ClientDirectory, Population
from repro.fl.robust.adversaries import Adversary
from repro.fl.types import FLConfig
from repro.models import build_model
from repro.obs import WorkerShardRecorder
from repro.nn.losses import CrossEntropyLoss
from repro.utils.rng import RngStream

__all__ = ["WeightLayout", "ProcessWorkerSpec", "ProcessExecutor"]


@dataclass
class ProcessWorkerSpec:
    """Everything a pool worker needs to rebuild its half of the engine.

    Must stay picklable: it crosses the process boundary exactly once, as
    the pool initializer argument.
    """

    data: FederatedData
    strategy: Strategy
    config: FLConfig
    model_name: str
    opt_name: str
    fp_flops: float
    #: optional Byzantine adversary — picklable by construction (holds only
    #: plain numbers and its roster tuple); workers re-apply its data
    #: poisoning to their locally rebuilt clients.
    adversary: Optional[Adversary] = None
    #: optional virtual population — pure arithmetic (size, n_shards), so
    #: pickling it is free; workers rebuild a lazy ClientDirectory over it
    #: instead of an eager client list.  Client state still travels with
    #: each task, so worker-side directories only serve shards and RNG.
    population: Optional[Population] = None
    #: observability (repro.obs): when true, each pool worker builds a
    #: WorkerShardRecorder whose per-task metric deltas (and, with
    #: obs_spans, span records) pickle home on every TaskResult; the engine
    #: absorbs them in task order so merged metrics are deterministic.
    obs_enabled: bool = False
    obs_spans: bool = False
    #: optional deterministic fault injector (repro.fl.faults) — stateless
    #: (seed + name + kwargs), so pickling ships the exact coin streams the
    #: in-process backends draw from.  Workers flag ``in_pool_worker`` on
    #: their runtime so process-only faults (worker death) know they may
    #: actually kill the hosting process.
    fault_injector: Optional[FaultInjector] = None
    #: filled in by ProcessExecutor.__init__, never by the engine
    layout: Optional[WeightLayout] = None
    shm_name: str = ""


# Per-worker-process globals, populated by _init_worker.
_WORKER: Optional[WorkerContext] = None
_RUNTIME: Optional[TaskRuntime] = None
_SHM: Optional[shared_memory.SharedMemory] = None
#: (segment name, unpickled payload) — one unpickle per worker per round.
_PAYLOAD_CACHE: Tuple[Optional[str], Dict[str, Any]] = (None, {})


#: reference to a round's broadcast payload segment: (shm name, nbytes)
PayloadRef = Optional[Tuple[str, int]]


def _resolve_payload(ref: PayloadRef) -> Dict[str, Any]:
    """Fetch the round's server broadcast payload, caching per segment."""
    global _PAYLOAD_CACHE
    if ref is None:
        return {}
    name, nbytes = ref
    if _PAYLOAD_CACHE[0] != name:
        shm = shared_memory.SharedMemory(name=name)
        try:
            payload = pickle.loads(bytes(shm.buf[:nbytes]))
        finally:
            shm.close()
        _PAYLOAD_CACHE = (name, payload)
    return _PAYLOAD_CACHE[1]


def _init_worker(spec: ProcessWorkerSpec) -> None:
    """Pool initializer: attach the weight segment, rebuild model/clients."""
    global _WORKER, _RUNTIME, _SHM
    # Workers share the parent's resource tracker (multiprocessing hands the
    # tracker fd to fork and spawn children alike), so the attach below is a
    # no-op re-registration; only the creating process ever unlinks.
    _SHM = shared_memory.SharedMemory(name=spec.shm_name)
    views = spec.layout.views(_SHM.buf, writeable=False)
    # Packed layouts also expose the segment as one (P,) vector, so worker
    # models adopt each round's broadcast with a single flat copy.
    flat_view = (
        spec.layout.flat_view(_SHM.buf, writeable=False)
        if spec.layout.is_packed else None
    )

    data_spec = spec.data.spec
    root = RngStream(spec.config.seed)

    def model_fn():
        # Fresh child generator per call -> replicas get the exact initial
        # weights the engine's canonical model got.
        return build_model(
            spec.model_name,
            data_spec.input_shape,
            data_spec.num_classes,
            rng=root.child("model-init").generator,
        )

    model = model_fn()
    frozen = model_fn()
    frozen.eval()
    # Handing the model (not its parameter list) re-homes it onto weight/
    # grad planes and gives the optimizer the fused flat update path.
    _WORKER = WorkerContext(
        model, frozen, make_optimizer(spec.opt_name, model, spec.config),
        CrossEntropyLoss(),
    )
    if spec.population is not None:
        # Lazy roster in the worker too: only the clients this worker is
        # actually handed tasks for ever materialize.  No state factory —
        # strategy state arrives with each task and returns with its result.
        clients = ClientDirectory(
            spec.population, spec.data, seed=spec.config.seed
        )
    else:
        clients = [
            Client(k, spec.data.client_dataset(k), seed=spec.config.seed)
            for k in range(spec.data.n_clients)
        ]
        if spec.adversary is not None:
            # Same data poisoning the engine applied to its own client list;
            # deterministic, so both sides see identical shards.
            spec.adversary.poison_clients(clients, data_spec.num_classes)
    _RUNTIME = TaskRuntime(
        clients=clients,
        strategy=spec.strategy,
        config=spec.config,
        fp_flops=spec.fp_flops,
        global_weights=views,
        global_flat=flat_view,
        adversary=spec.adversary,
        fault_injector=spec.fault_injector,
        in_pool_worker=True,
    )
    if spec.obs_enabled:
        _RUNTIME.recorder = WorkerShardRecorder(with_spans=spec.obs_spans)


def _run_task(job: Tuple[ClientTaskSpec, PayloadRef]) -> TaskResult:
    """Pool task entry point; runs in the worker process."""
    assert _WORKER is not None and _RUNTIME is not None, "worker not initialized"
    task, payload_ref = job
    _RUNTIME.server_broadcast = _resolve_payload(payload_ref)
    result = execute_task(task, _WORKER, _RUNTIME)
    recorder = _RUNTIME.recorder
    if recorder.enabled:
        # Drain this worker's observability shard onto the result so the
        # engine can merge it at round end (plain dicts, cheap to pickle).
        result.obs = recorder.drain()
    return result


class ProcessExecutor:
    """Train client tasks in a ``multiprocessing`` pool.

    Parameters
    ----------
    spec:
        Picklable worker build recipe (``shm_name``/``layout`` are filled in
        here from ``initial_weights``).
    initial_weights:
        The engine's global weight tree; defines the shared segment layout
        and seeds its first broadcast.
    n_workers:
        Pool size.
    mp_start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default prefers
        ``fork`` where available (no re-import cost), else ``spawn``.
    death_grace_s:
        How long :meth:`run` waits, after observing a pool worker die and
        with no further task completing, before writing the missing results
        off as ``worker_death`` task failures.  ``multiprocessing.Pool``
        silently respawns dead workers but never completes the task the
        victim was holding, so without this ``run`` would hang forever.
    """

    name = "process"

    def __init__(
        self,
        spec: ProcessWorkerSpec,
        initial_weights: Sequence[np.ndarray],
        n_workers: int = 2,
        mp_start_method: Optional[str] = None,
        death_grace_s: float = 5.0,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self._n_workers = n_workers
        if isinstance(initial_weights, ParamPlane):
            layout = initial_weights.layout
        else:
            layout = WeightLayout.from_weights(initial_weights)
        self._layout = layout
        self._shm = shared_memory.SharedMemory(create=True, size=layout.total_bytes)
        self._views: Optional[List[np.ndarray]] = layout.views(self._shm.buf, writeable=True)
        #: whole-segment byte view — one memcpy broadcasts the entire model
        #: when the engine hands us its ParamPlane with the same layout.
        self._bytes: Optional[np.ndarray] = np.ndarray(
            (layout.total_bytes,), dtype=np.uint8, buffer=self._shm.buf
        )
        self._payload_shm: Optional[shared_memory.SharedMemory] = None
        self._payload_ref: PayloadRef = None
        self.broadcast(initial_weights)
        if mp_start_method is None:
            mp_start_method = "fork" if "fork" in get_all_start_methods() else "spawn"
        ctx = get_context(mp_start_method)
        spec = replace(spec, shm_name=self._shm.name, layout=layout)
        self._pool = ctx.Pool(n_workers, initializer=_init_worker, initargs=(spec,))
        self._death_grace_s = death_grace_s
        self._known_pids = self._live_pids()
        self._closed = False

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def borrow_worker(self) -> Optional[WorkerContext]:
        """Worker contexts live in other processes; there is nothing to lend."""
        return None

    def broadcast(self, weights,
                  payload: Optional[Dict[str, Any]] = None) -> None:
        """Copy the new global weights into the shared segment and publish
        the server's broadcast payload, pickled **once** per round into its
        own segment — never per client task.

        When the engine hands its :class:`~repro.fl.params.ParamPlane`
        (same layout as the segment), the weight copy is a single
        ``np.copyto`` over the raw bytes; a plain weight tree falls back to
        one copy per parameter array.
        """
        assert self._views is not None, "executor is closed"
        if isinstance(weights, ParamPlane) and weights.layout == self._layout:
            np.copyto(self._bytes, weights.bytes_view())
        else:
            tree = weights.tree if isinstance(weights, ParamPlane) else weights
            if len(tree) != len(self._views):
                raise ValueError(
                    f"weight tree has {len(tree)} arrays, layout expects {len(self._views)}"
                )
            for view, w in zip(self._views, tree):
                np.copyto(view, w)
        # The previous round's payload segment is quiescent by now (run()
        # is synchronous), so it can be retired before publishing the next.
        self._drop_payload_segment()
        if payload:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            self._payload_shm = shared_memory.SharedMemory(create=True, size=len(blob))
            self._payload_shm.buf[: len(blob)] = blob
            self._payload_ref = (self._payload_shm.name, len(blob))

    def _drop_payload_segment(self) -> None:
        self._payload_ref = None
        if self._payload_shm is not None:
            self._payload_shm.close()
            try:
                self._payload_shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._payload_shm = None

    def _live_pids(self) -> set:
        """Pids of currently-alive pool workers.

        Reads the pool's worker roster (``Pool`` keeps it in ``_pool``);
        the roster mutates under us when the pool's maintenance thread
        respawns a dead worker, so snapshot it before filtering.
        """
        return {p.pid for p in list(self._pool._pool) if p.is_alive()}

    def run(self, tasks: Sequence[ClientTaskSpec]) -> List[TaskResult]:
        """Run ``tasks`` on the pool, surviving worker deaths.

        Dispatches one ``apply_async`` per task (instead of ``Pool.map``,
        which blocks forever if a worker dies holding a task) and polls for
        completions.  When the worker roster changes mid-round, the task a
        dead worker was executing can never complete; once no further task
        has completed for ``death_grace_s`` seconds, every still-pending
        task is synthesized as a ``worker_death``
        :class:`~repro.fl.faults.TaskFailure` so the engine's retry/quorum
        policy decides what happens next.  The pool itself respawns
        replacement workers automatically (and each replacement re-runs the
        initializer), so later rounds run at full width again.
        """
        jobs = [
            self._pool.apply_async(_run_task, ((t, self._payload_ref),))
            for t in tasks
        ]
        results: List[Optional[TaskResult]] = [None] * len(jobs)
        pending = list(range(len(jobs)))
        last_progress = monotonic()
        death_seen = False
        while pending:
            still: List[int] = []
            for i in pending:
                if jobs[i].ready():
                    results[i] = jobs[i].get()
                    last_progress = monotonic()
                else:
                    still.append(i)
            pending = still
            if not pending:
                break
            current = self._live_pids()
            if current != self._known_pids:
                death_seen = True
                self._known_pids = current
            if death_seen and monotonic() - last_progress > self._death_grace_s:
                for i in pending:
                    task = tasks[i]
                    # Drop the orphaned job from the pool's result cache:
                    # a job that never completes would otherwise pin the
                    # pool's shutdown (join waits for an empty cache).  If
                    # the result does arrive later the handler ignores the
                    # unknown job id.
                    self._pool._cache.pop(jobs[i]._job, None)
                    results[i] = TaskResult(
                        update=None,
                        state=None,
                        failure=TaskFailure(
                            kind="worker_death",
                            client_id=task.client_id,
                            round_idx=task.round_idx,
                            attempt=task.attempt,
                            detail="pool worker died before reporting",
                        ),
                    )
                break
            jobs[pending[0]].wait(0.05)
        return results  # type: ignore[return-value]  # every slot is filled

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._pool.join()
        self._drop_payload_segment()
        # Views hold exported buffers; release them before closing the segment.
        self._views = None
        self._bytes = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self.close()
        except Exception:
            pass
