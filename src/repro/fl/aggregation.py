"""Server-side model aggregation."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.fl.types import ClientUpdate

__all__ = ["fedavg_aggregate", "uniform_aggregate", "weighted_average_trees"]


def weighted_average_trees(
    trees: Sequence[Sequence[np.ndarray]], weights: Sequence[float]
) -> List[np.ndarray]:
    """Weighted mean of parameter trees; weights are normalized to sum 1."""
    if not trees:
        raise ValueError("no trees to aggregate")
    w = np.asarray(weights, dtype=np.float64)
    if w.size != len(trees):
        raise ValueError("one weight per tree required")
    if (w < 0).any() or w.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    w = w / w.sum()
    out = [np.zeros_like(a, dtype=np.float64) for a in trees[0]]
    for tree, wk in zip(trees, w):
        if len(tree) != len(out):
            raise ValueError("tree structure mismatch")
        for acc, arr in zip(out, tree):
            acc += wk * arr
    return [a.astype(trees[0][i].dtype) for i, a in enumerate(out)]


def fedavg_aggregate(updates: Sequence[ClientUpdate]) -> List[np.ndarray]:
    """FedAvg: weights proportional to client sample counts (Eq. 2)."""
    if not updates:
        raise ValueError("no client updates to aggregate")
    return weighted_average_trees(
        [u.weights for u in updates], [u.num_samples for u in updates]
    )


def uniform_aggregate(updates: Sequence[ClientUpdate]) -> List[np.ndarray]:
    """Unweighted mean over participating clients."""
    if not updates:
        raise ValueError("no client updates to aggregate")
    return weighted_average_trees([u.weights for u in updates], [1.0] * len(updates))
