"""Server-side model aggregation.

The weighted average (Eq. 2) is the server's arithmetic hot path: every
round it reduces K client models of P parameters each.  The historical
implementation was a Python loop — K x L ``acc += w_k * arr`` axpys — whose
interpreter overhead dominates once models are small relative to the cohort
(exactly the paper's resource-efficiency regime).  The flat path stacks the
K client vectors into one ``(K, P)`` float64 matrix (reused across rounds,
see :class:`~repro.fl.params.MatrixPool`) and reduces it with a single
``w @ M`` GEMM.

``weighted_average_trees`` keeps its list-of-arrays signature — every
strategy's ``aggregate`` continues to work unchanged — and dispatches to
the GEMM path whenever the tree has one dtype.  The loop implementation
survives as :func:`weighted_average_trees_loop`: it is the reference the
equivalence tests and ``benchmarks/bench_hot_path.py`` compare against.

Numerics: both paths accumulate in float64 and cast back to the tree dtype
once; they agree to float64 rounding (BLAS may order the K-way reduction
differently than the sequential loop).  Determinism holds because every
executor and server mode shares this single code path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.fl.params import stack_updates
from repro.fl.types import ClientUpdate

__all__ = [
    "fedavg_aggregate",
    "uniform_aggregate",
    "weighted_average_flat",
    "weighted_average_trees",
    "weighted_average_trees_loop",
]


def _normalized(weights: Sequence[float], n: int) -> np.ndarray:
    """Validate and sum-normalize aggregation weights.

    Shared by the GEMM path and the tree-loop fallback, so both raise the
    same, specific error: non-finite weights, negative weights, and an
    all-zero sum (e.g. every client reported zero samples) each get their
    own message instead of a silent divide producing NaN weights.  ``n = 1``
    degenerates to the single weight normalizing to exactly 1.0, so a K=1
    "average" returns that update's values unchanged (pinned by tests).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.size != n:
        raise ValueError("one weight per tree required")
    if not np.isfinite(w).all():
        raise ValueError("aggregation weights must be finite")
    if (w < 0).any():
        raise ValueError("aggregation weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError(
            "aggregation weights sum to zero; cannot form a weighted average "
            "(did every client report zero samples?)"
        )
    return w / total


def weighted_average_flat(mat: np.ndarray, weights: Sequence[float]) -> np.ndarray:
    """Weighted mean of K stacked flat vectors: one ``w @ M`` GEMM.

    ``mat`` is ``(K, P)``; returns the ``(P,)`` float64 combination with
    ``weights`` normalized to sum 1.
    """
    return _normalized(weights, mat.shape[0]) @ mat


def _check_structure(
    trees: Sequence[Sequence[np.ndarray]],
    flats: Optional[Sequence[Optional[np.ndarray]]],
) -> None:
    """Every tree must match the first layer-for-layer (the loop path got
    this for free from broadcasting; the flat path must check explicitly —
    two trees of equal total size but different layer shapes would
    otherwise average element-order-scrambled).  Rows backed by a cached
    flat vector (``ClientUpdate.from_flat`` guarantees tree/flat
    consistency) only need the arity check, keeping the hot path free of
    K x L shape walks."""
    shapes = [np.shape(a) for a in trees[0]]
    for i, tree in enumerate(trees):
        if i and len(tree) != len(shapes):
            raise ValueError("tree structure mismatch")
        if (flats is None or flats[i] is None) and any(
            np.shape(a) != s for a, s in zip(tree, shapes)
        ):
            raise ValueError("tree structure mismatch")


def weighted_average_trees(
    trees: Sequence[Sequence[np.ndarray]],
    weights: Sequence[float],
    flats: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[np.ndarray]:
    """Weighted mean of parameter trees; weights are normalized to sum 1.

    ``flats`` optionally carries a precomputed flat vector per tree (the
    :class:`~repro.fl.types.ClientUpdate` fast path) so stacking skips
    re-flattening.  Mixed-dtype trees fall back to the per-layer loop.
    """
    if not trees:
        raise ValueError("no trees to aggregate")
    first = trees[0]
    dtypes = {np.asarray(a).dtype for a in first}
    if len(dtypes) != 1:
        return weighted_average_trees_loop(trees, weights)
    w = _normalized(weights, len(trees))
    _check_structure(trees, flats)
    mat = stack_updates(trees, flats=flats)
    flat = w @ mat
    dtype = next(iter(dtypes))
    out: List[np.ndarray] = []
    cursor = 0
    for a in first:
        a = np.asarray(a)
        out.append(flat[cursor : cursor + a.size].reshape(a.shape).astype(dtype))
        cursor += a.size
    return out


def weighted_average_trees_loop(
    trees: Sequence[Sequence[np.ndarray]], weights: Sequence[float]
) -> List[np.ndarray]:
    """Reference per-layer loop implementation (pre-GEMM server path).

    Kept for the loop-vs-GEMM equivalence tests, as the baseline leg of
    ``benchmarks/bench_hot_path.py``, and as the mixed-dtype fallback.
    """
    if not trees:
        raise ValueError("no trees to aggregate")
    w = _normalized(weights, len(trees))
    out = [np.zeros_like(a, dtype=np.float64) for a in trees[0]]
    for tree, wk in zip(trees, w):
        if len(tree) != len(out):
            raise ValueError("tree structure mismatch")
        for acc, arr in zip(out, tree):
            acc += wk * arr
    return [a.astype(trees[0][i].dtype) for i, a in enumerate(out)]


def _average_updates(updates: Sequence[ClientUpdate], weights: Sequence[float]) -> List[np.ndarray]:
    return weighted_average_trees(
        [u.weights for u in updates],
        weights,
        flats=[u.flat for u in updates],
    )


def fedavg_aggregate(updates: Sequence[ClientUpdate]) -> List[np.ndarray]:
    """FedAvg: weights proportional to client sample counts (Eq. 2)."""
    if not updates:
        raise ValueError("no client updates to aggregate")
    return _average_updates(updates, [u.num_samples for u in updates])


def uniform_aggregate(updates: Sequence[ClientUpdate]) -> List[np.ndarray]:
    """Unweighted mean over participating clients."""
    if not updates:
        raise ValueError("no client updates to aggregate")
    return _average_updates(updates, [1.0] * len(updates))
