"""Server-side model aggregation.

The weighted average (Eq. 2) is the server's arithmetic hot path: every
round it reduces K client models of P parameters each.  The historical
implementation was a Python loop — K x L ``acc += w_k * arr`` axpys — whose
interpreter overhead dominates once models are small relative to the cohort
(exactly the paper's resource-efficiency regime).  The flat path stages
client vectors into a pooled float64 matrix (see
:class:`~repro.fl.params.MatrixPool`) and reduces them into one running
``(P,)`` accumulator.

Streaming and the pinned reduction order
----------------------------------------

The reduction is a *row-sequential left fold*: rows are staged in cohort
order and folded one at a time (``acc += w_k * row_k``), never via a
single BLAS GEMM/GEMV.  BLAS is free to reorder a K-way sum, so a GEMM
result would depend on how many rows it sees at once — the fold makes the
float64 bit pattern a function of the row *sequence* only.  That buys the
streaming property for free: staging ``block_size`` rows at a time and
folding each block in order produces byte-identical output for *every*
block size (1, 3, K, K + 7, ...), because the per-row operation sequence
is unchanged.  Peak staging memory is ``O(block_size x P)`` instead of
``O(K x P)``, which is what lets a cohort stream out of a million-client
:class:`~repro.fl.population.Population` without materializing a dense
matrix.

The effective block size resolves in priority order: the explicit
``block_size`` argument, the innermost :func:`aggregation_block` context
(thread-local, used by :class:`~repro.fl.server.Server`), the module
default set by :func:`set_default_aggregation_block_size` (the conftest
``--agg-block-size`` hook), and finally ``None`` — dense staging of all K
rows, the historical behaviour.

``weighted_average_trees`` keeps its list-of-arrays signature — every
strategy's ``aggregate`` continues to work unchanged — and dispatches to
the staged fold whenever the tree has one dtype.  The loop implementation
survives as :func:`weighted_average_trees_loop`: it is the reference the
equivalence tests and ``benchmarks/bench_hot_path.py`` compare against.

Numerics: both paths accumulate in float64 and cast back to the tree dtype
once.  Rows are upcast to float64 *before* the scalar multiply (staging
buffer), matching what dense stacking always did — multiplying a float32
row by a float64 scalar directly would compute in single precision under
value-based casting.  Determinism holds because every executor and server
mode shares this single code path.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.fl.params import MatrixPool, _default_pool
from repro.fl.types import ClientUpdate

__all__ = [
    "aggregation_block",
    "fedavg_aggregate",
    "get_aggregation_block_size",
    "set_default_aggregation_block_size",
    "uniform_aggregate",
    "weighted_average_flat",
    "weighted_average_trees",
    "weighted_average_trees_loop",
]

#: module-wide default block size (``None`` = dense).  Set once per process
#: (e.g. by the conftest ``--agg-block-size`` option); per-experiment values
#: travel through the thread-local :func:`aggregation_block` context instead.
_DEFAULT_BLOCK: Optional[int] = None

_BLOCK_LOCAL = threading.local()


def _validated_block(block_size: Optional[int]) -> Optional[int]:
    if block_size is None:
        return None
    b = int(block_size)
    if b < 1:
        raise ValueError(f"aggregation block size must be >= 1, got {block_size}")
    return b


def set_default_aggregation_block_size(block_size: Optional[int]) -> Optional[int]:
    """Set the process-wide default aggregation block size; returns the
    previous value.  ``None`` restores dense (all-K) staging."""
    global _DEFAULT_BLOCK
    previous = _DEFAULT_BLOCK
    _DEFAULT_BLOCK = _validated_block(block_size)
    return previous


def get_aggregation_block_size() -> Optional[int]:
    """The block size aggregation would use right now on this thread
    (innermost :func:`aggregation_block` context, else the module default),
    or ``None`` for dense staging."""
    stack = getattr(_BLOCK_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    return _DEFAULT_BLOCK


@contextmanager
def aggregation_block(block_size: Optional[int]) -> Iterator[None]:
    """Thread-locally pin the aggregation block size for the enclosed code.

    ``None`` is transparent — the surrounding context (or module default)
    stays in effect — so callers can pass an optional knob straight through
    without branching.
    """
    if block_size is None:
        yield
        return
    b = _validated_block(block_size)
    stack = getattr(_BLOCK_LOCAL, "stack", None)
    if stack is None:
        stack = _BLOCK_LOCAL.stack = []
    stack.append(b)
    try:
        yield
    finally:
        stack.pop()


def _resolve_block(block_size: Optional[int], k: int) -> int:
    """Effective staging width for a K-row reduction: the explicit argument,
    else the context/module default, else dense; always clamped to
    ``[1, K]`` (a block larger than the cohort is just dense)."""
    b = _validated_block(block_size)
    if b is None:
        b = get_aggregation_block_size()
    if b is None:
        return k
    return min(b, k)


def _normalized(weights: Sequence[float], n: int) -> np.ndarray:
    """Validate and sum-normalize aggregation weights.

    Shared by the staged-fold path and the tree-loop fallback, so both
    raise the same, specific error: non-finite weights, negative weights,
    and an all-zero sum (e.g. every client reported zero samples) each get
    their own message instead of a silent divide producing NaN weights.
    ``n = 1`` degenerates to the single weight normalizing to exactly 1.0,
    so a K=1 "average" returns that update's values unchanged (pinned by
    tests).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.size != n:
        raise ValueError("one weight per tree required")
    if not np.isfinite(w).all():
        raise ValueError("aggregation weights must be finite")
    if (w < 0).any():
        raise ValueError("aggregation weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError(
            "aggregation weights sum to zero; cannot form a weighted average "
            "(did every client report zero samples?)"
        )
    return w / total


def _fold_rows(rows: np.ndarray, w: np.ndarray, acc: np.ndarray, scratch: np.ndarray) -> None:
    """``acc += sum_k w[k] * rows[k]``, folded strictly row-by-row.

    This is *the* pinned reduction order: every aggregation entry point
    funnels K float64 rows through this loop in cohort order, so the
    result is bitwise independent of how the rows were batched upstream.
    """
    for k in range(rows.shape[0]):
        np.multiply(rows[k], w[k], out=scratch)
        acc += scratch


def weighted_average_flat(mat: np.ndarray, weights: Sequence[float]) -> np.ndarray:
    """Weighted mean of K stacked flat vectors via the pinned row fold.

    ``mat`` is ``(K, P)``; returns the ``(P,)`` float64 combination with
    ``weights`` normalized to sum 1.  Byte-identical to the streaming path
    in :func:`weighted_average_trees` for the same rows — both fold
    float64 rows sequentially in row order.
    """
    mat = np.asarray(mat)
    w = _normalized(weights, mat.shape[0])
    if mat.dtype != np.float64:
        mat = mat.astype(np.float64)
    acc = np.zeros(mat.shape[1], dtype=np.float64)
    scratch = np.empty(mat.shape[1], dtype=np.float64)
    _fold_rows(mat, w, acc, scratch)
    return acc


def _check_structure(
    trees: Sequence[Sequence[np.ndarray]],
    flats: Optional[Sequence[Optional[np.ndarray]]],
) -> None:
    """Every tree must match the first layer-for-layer (the loop path got
    this for free from broadcasting; the flat path must check explicitly —
    two trees of equal total size but different layer shapes would
    otherwise average element-order-scrambled).  Rows backed by a cached
    flat vector (``ClientUpdate.from_flat`` guarantees tree/flat
    consistency) only need the arity check, keeping the hot path free of
    K x L shape walks."""
    shapes = [np.shape(a) for a in trees[0]]
    for i, tree in enumerate(trees):
        if i and len(tree) != len(shapes):
            raise ValueError("tree structure mismatch")
        if (flats is None or flats[i] is None) and any(
            np.shape(a) != s for a, s in zip(tree, shapes)
        ):
            raise ValueError("tree structure mismatch")


def _streamed_weighted_sum(
    trees: Sequence[Sequence[np.ndarray]],
    flats: Optional[Sequence[Optional[np.ndarray]]],
    w: np.ndarray,
    block_size: Optional[int],
    pool: Optional[MatrixPool] = None,
) -> np.ndarray:
    """Fold K client trees into one ``(P,)`` float64 vector, staging at most
    ``block`` rows of scratch at a time.

    The fold multiplies each row straight out of its cached flat vector when
    one is available — ``dtype=float64`` pins the double-precision ufunc
    loop, which upcasts a float32 row element-wise exactly as a staging
    copy would, minus the extra memory pass.  Only rows *without* a cached
    flat are staged (``flatten_into`` needs a float64 destination), and the
    pooled staging buffer is at most ``block`` rows, reused cyclically.
    Dense (``block == K``) and every smaller block produce the same bits:
    the per-row multiply/add sequence never depends on the block
    (see :func:`_fold_rows` for the pinned-order contract).
    """
    from repro.fl.params import flatten_into

    k = len(trees)
    sizes = [int(np.asarray(a).size) for a in trees[0]]
    p = sum(sizes)
    block = _resolve_block(block_size, k)
    stage = None  # allocated lazily: all-flat cohorts never touch the pool
    acc = np.zeros(p, dtype=np.float64)
    scratch = np.empty(p, dtype=np.float64)
    for i in range(k):
        flat = flats[i] if flats is not None else None
        if flat is not None and flat.size == p:
            src = flat
        else:
            if len(trees[i]) != len(sizes):
                raise ValueError("tree structure mismatch")
            if stage is None:
                pool = pool if pool is not None else _default_pool()
                stage = pool.take(block, p)
            src = stage[i % block]
            flatten_into(src, trees[i])
        np.multiply(src, w[i], out=scratch, dtype=np.float64)
        acc += scratch
    return acc


def weighted_average_trees(
    trees: Sequence[Sequence[np.ndarray]],
    weights: Sequence[float],
    flats: Optional[Sequence[Optional[np.ndarray]]] = None,
    block_size: Optional[int] = None,
) -> List[np.ndarray]:
    """Weighted mean of parameter trees; weights are normalized to sum 1.

    ``flats`` optionally carries a precomputed flat vector per tree (the
    :class:`~repro.fl.types.ClientUpdate` fast path) so staging skips
    re-flattening.  ``block_size`` caps how many rows are staged at once
    (``None`` defers to :func:`aggregation_block` / the module default);
    the result is byte-identical for every block size.  Mixed-dtype trees
    fall back to the per-layer loop.
    """
    if not trees:
        raise ValueError("no trees to aggregate")
    first = trees[0]
    dtypes = {np.asarray(a).dtype for a in first}
    if len(dtypes) != 1:
        return weighted_average_trees_loop(trees, weights)
    w = _normalized(weights, len(trees))
    _check_structure(trees, flats)
    flat = _streamed_weighted_sum(trees, flats, w, block_size)
    dtype = next(iter(dtypes))
    out: List[np.ndarray] = []
    cursor = 0
    for a in first:
        a = np.asarray(a)
        out.append(flat[cursor : cursor + a.size].reshape(a.shape).astype(dtype))
        cursor += a.size
    return out


def weighted_average_trees_loop(
    trees: Sequence[Sequence[np.ndarray]], weights: Sequence[float]
) -> List[np.ndarray]:
    """Reference per-layer loop implementation (pre-GEMM server path).

    Kept for the loop-vs-fold equivalence tests, as the baseline leg of
    ``benchmarks/bench_hot_path.py``, and as the mixed-dtype fallback.
    """
    if not trees:
        raise ValueError("no trees to aggregate")
    w = _normalized(weights, len(trees))
    out = [np.zeros_like(a, dtype=np.float64) for a in trees[0]]
    for tree, wk in zip(trees, w):
        if len(tree) != len(out):
            raise ValueError("tree structure mismatch")
        for acc, arr in zip(out, tree):
            acc += wk * arr
    return [a.astype(trees[0][i].dtype) for i, a in enumerate(out)]


def _average_updates(updates: Sequence[ClientUpdate], weights: Sequence[float]) -> List[np.ndarray]:
    return weighted_average_trees(
        [u.weights for u in updates],
        weights,
        flats=[u.flat for u in updates],
    )


def fedavg_aggregate(updates: Sequence[ClientUpdate]) -> List[np.ndarray]:
    """FedAvg: weights proportional to client sample counts (Eq. 2)."""
    if not updates:
        raise ValueError("no client updates to aggregate")
    return _average_updates(updates, [u.num_samples for u in updates])


def uniform_aggregate(updates: Sequence[ClientUpdate]) -> List[np.ndarray]:
    """Unweighted mean over participating clients."""
    if not updates:
        raise ValueError("no client updates to aggregate")
    return _average_updates(updates, [1.0] * len(updates))
