"""Federated-learning runtime: server, clients, round loop, metrics."""

from repro.fl.types import FLConfig, ClientUpdate, RoundRecord
from repro.fl.history import History
from repro.fl.params import (
    MatrixPool,
    ParamPlane,
    WeightLayout,
    as_flat,
    reset_default_pool,
    stack_updates,
)
from repro.fl.sampling import UniformSampler, WeightedSampler, FixedSampler
from repro.fl.population import (
    ClientDirectory,
    FlatStateArena,
    Population,
    PopulationSampler,
)
from repro.fl.aggregation import (
    aggregation_block,
    fedavg_aggregate,
    get_aggregation_block_size,
    set_default_aggregation_block_size,
    uniform_aggregate,
    weighted_average_flat,
    weighted_average_trees,
    weighted_average_trees_loop,
)
from repro.fl.robust import (
    Adversary,
    RobustAggregator,
    available_adversaries,
    available_aggregators,
    build_adversary,
    build_aggregator,
    register_adversary,
    register_aggregator,
    robust_aggregate,
)
from repro.fl.client import Client, run_client_round
from repro.fl.server import Server
from repro.fl.evaluation import evaluate_model, full_batch_gradient
from repro.fl.executor import (
    WorkerContext,
    ClientTaskSpec,
    TaskResult,
    TaskRuntime,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.fl.process_executor import ProcessExecutor
from repro.fl.simulation import Simulation, make_optimizer
from repro.fl.asyncfl import AsyncFLEngine, ClientTimingModel, EventQueue, VirtualClock
from repro.fl.availability import DropoutSampler, DiurnalSampler
from repro.fl.centralized import CentralizedResult, train_centralized
from repro.fl.systems import DeviceProfile, NETWORK_PRESETS, SystemModel, RoundTime
from repro.fl.compression import (
    QuantizationCompressor,
    TopKCompressor,
    CompressedExchange,
    CompressedUploadWrapper,
)
from repro.fl.secure import PairwiseMasker, secure_sum
from repro.fl.privacy import (
    GaussianMechanism,
    PrivacyAccountant,
    PrivateAggregationWrapper,
)

__all__ = [
    "FLConfig",
    "ClientUpdate",
    "RoundRecord",
    "History",
    "UniformSampler",
    "WeightedSampler",
    "FixedSampler",
    "MatrixPool",
    "ParamPlane",
    "WeightLayout",
    "as_flat",
    "reset_default_pool",
    "stack_updates",
    "ClientDirectory",
    "FlatStateArena",
    "Population",
    "PopulationSampler",
    "aggregation_block",
    "get_aggregation_block_size",
    "set_default_aggregation_block_size",
    "fedavg_aggregate",
    "uniform_aggregate",
    "weighted_average_flat",
    "weighted_average_trees",
    "weighted_average_trees_loop",
    "Adversary",
    "RobustAggregator",
    "available_adversaries",
    "available_aggregators",
    "build_adversary",
    "build_aggregator",
    "register_adversary",
    "register_aggregator",
    "robust_aggregate",
    "Client",
    "run_client_round",
    "Server",
    "evaluate_model",
    "full_batch_gradient",
    "WorkerContext",
    "ClientTaskSpec",
    "TaskResult",
    "TaskRuntime",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "Simulation",
    "make_optimizer",
    "AsyncFLEngine",
    "ClientTimingModel",
    "EventQueue",
    "VirtualClock",
    "DeviceProfile",
    "NETWORK_PRESETS",
    "SystemModel",
    "RoundTime",
    "CentralizedResult",
    "train_centralized",
    "DropoutSampler",
    "DiurnalSampler",
    "QuantizationCompressor",
    "TopKCompressor",
    "CompressedExchange",
    "CompressedUploadWrapper",
    "PairwiseMasker",
    "secure_sum",
    "GaussianMechanism",
    "PrivacyAccountant",
    "PrivateAggregationWrapper",
]
