"""Client selection policies.

The paper selects a fixed number K of clients uniformly at random each round
(4-of-10 default, 4-of-50 in the scalability study).  A weighted sampler is
included as an extension for availability-skew experiments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngStream

__all__ = ["UniformSampler", "WeightedSampler", "FixedSampler"]


class UniformSampler:
    """K distinct clients, uniform without replacement, seeded per round."""

    def __init__(self, n_clients: int, clients_per_round: int, seed: int = 0) -> None:
        if not 1 <= clients_per_round <= n_clients:
            raise ValueError("need 1 <= clients_per_round <= n_clients")
        self.n_clients = n_clients
        self.clients_per_round = clients_per_round
        self._root = RngStream(seed).child("sampler")

    def select(self, round_idx: int) -> List[int]:
        rng = self._root.child(round_idx).generator
        picks = rng.choice(self.n_clients, size=self.clients_per_round, replace=False)
        return sorted(int(p) for p in picks)

    @property
    def participation_rate(self) -> float:
        """p = K/N — the quantity driving E[xi] in Theorem 1."""
        return self.clients_per_round / self.n_clients


class WeightedSampler:
    """Selection proportional to fixed client weights (availability skew)."""

    def __init__(
        self,
        weights: Sequence[float],
        clients_per_round: int,
        seed: int = 0,
    ) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or (w < 0).any() or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        if not 1 <= clients_per_round <= w.size:
            raise ValueError("invalid clients_per_round")
        self.weights = w / w.sum()
        self.clients_per_round = clients_per_round
        self.n_clients = int(w.size)
        self._root = RngStream(seed).child("weighted-sampler")

    def select(self, round_idx: int) -> List[int]:
        rng = self._root.child(round_idx).generator
        picks = rng.choice(
            self.n_clients, size=self.clients_per_round, replace=False, p=self.weights
        )
        return sorted(int(p) for p in picks)

    @property
    def participation_rate(self) -> float:
        return self.clients_per_round / self.n_clients


class FixedSampler:
    """A predetermined selection schedule (deterministic tests/ablations)."""

    def __init__(self, schedule: Sequence[Sequence[int]], n_clients: Optional[int] = None) -> None:
        if not schedule:
            raise ValueError("schedule must be non-empty")
        self.schedule = [sorted(int(c) for c in row) for row in schedule]
        self.n_clients = n_clients if n_clients is not None else (max(max(r) for r in self.schedule) + 1)
        self.clients_per_round = len(self.schedule[0])

    def select(self, round_idx: int) -> List[int]:
        return list(self.schedule[round_idx % len(self.schedule)])

    @property
    def participation_rate(self) -> float:
        return self.clients_per_round / self.n_clients
