"""The canonical flat-parameter representation of model state.

The server-side hot path — aggregate K client models, broadcast the new
global model — is dominated by memory traffic, not math.  Treating model
state as a Python list of per-layer arrays makes every one of those steps a
Python loop (K clients x L layers for aggregation, L copies per broadcast).
This module makes **one contiguous buffer** the canonical in-memory form of
a weight tree so the hot path collapses to single vectorized operations:

* :class:`WeightLayout` — the immutable byte layout of a weight tree
  (shape/dtype/offset per array).  When every array shares one dtype the
  layout is *packed*: zero padding, and the whole buffer is addressable as
  a single 1-D ``flat`` vector of ``total_elems`` elements.
* :class:`ParamPlane` — a layout plus one owned buffer, exposing the same
  memory as (a) per-layer reshaped views (``plane.tree`` — drop-in for the
  old list-of-arrays) and (b) the flat vector (``plane.flat``).  Writing
  through either view is visible through the other; broadcast is one
  ``np.copyto``.
* :func:`stack_updates` — gather K client updates into a ``(K, P)`` float64
  matrix (reused across rounds via :class:`MatrixPool`), the input format
  of the GEMM aggregation in :mod:`repro.fl.aggregation`.

The process executor's shared-memory segment uses the same layout, so the
server->worker broadcast is a single flat copy as well (see
:mod:`repro.fl.process_executor`).

Mixed-dtype trees (rare — models in this codebase are uniformly float32)
remain fully supported: the layout falls back to max-itemsize alignment and
``flat`` is unavailable, in which case callers use the per-layer views.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.vectorize import flatten_arrays, flatten_into

__all__ = [
    "WeightLayout",
    "ParamPlane",
    "GradPlane",
    "MatrixPool",
    "as_flat",
    "default_pool",
    "materialize_parameters",
    "reset_default_pool",
    "stack_updates",
]


@dataclass(frozen=True)
class WeightLayout:
    """Flat-buffer layout of a weight tree: (shape, dtype, offset) triples.

    ``offsets`` are byte offsets into the buffer; ``sizes`` are element
    counts per array.  A *packed* layout (single dtype, no padding) also
    defines the element-space view: array ``i`` occupies elements
    ``[elem_offsets[i], elem_offsets[i] + sizes[i])`` of the flat vector.
    """

    shapes: Tuple[Tuple[int, ...], ...]
    dtypes: Tuple[str, ...]
    offsets: Tuple[int, ...]
    total_bytes: int

    @classmethod
    def from_weights(cls, weights: Sequence[np.ndarray]) -> "WeightLayout":
        arrays = [np.asarray(w) for w in weights]
        # Align each array to the largest itemsize present.  For the common
        # homogeneous case every offset is a dtype multiple already, so the
        # layout packs with zero padding and stays flat-addressable.
        align = max((a.dtype.itemsize for a in arrays), default=1)
        shapes, dtypes, offsets = [], [], []
        cursor = 0
        for a in arrays:
            cursor = (cursor + align - 1) // align * align
            shapes.append(tuple(a.shape))
            dtypes.append(a.dtype.str)
            offsets.append(cursor)
            cursor += a.nbytes
        return cls(tuple(shapes), tuple(dtypes), tuple(offsets), max(cursor, 1))

    # -- derived structure -------------------------------------------------
    @property
    def n_arrays(self) -> int:
        return len(self.shapes)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(int(np.prod(s, dtype=np.int64)) for s in self.shapes)

    @property
    def total_elems(self) -> int:
        return sum(self.sizes)

    @property
    def is_packed(self) -> bool:
        """Single dtype, zero padding: the buffer is one flat vector."""
        if not self.shapes:
            return False
        if len(set(self.dtypes)) != 1:
            return False
        itemsize = np.dtype(self.dtypes[0]).itemsize
        cursor = 0
        for offset, size in zip(self.offsets, self.sizes):
            if offset != cursor:
                return False
            cursor += size * itemsize
        return True

    @property
    def dtype(self) -> np.dtype:
        """The common dtype of a packed layout."""
        if not self.is_packed:
            raise ValueError("layout is not packed (mixed dtypes or padding)")
        return np.dtype(self.dtypes[0])

    # -- views over an external buffer -------------------------------------
    def views(self, buf, writeable: bool) -> List[np.ndarray]:
        """NumPy views over ``buf`` (any buffer object), one per array."""
        out = []
        for shape, dtype, offset in zip(self.shapes, self.dtypes, self.offsets):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
            view.flags.writeable = writeable
            out.append(view)
        return out

    def flat_view(self, buf, writeable: bool) -> np.ndarray:
        """The whole buffer as one 1-D vector (packed layouts only)."""
        view = np.ndarray((self.total_elems,), dtype=self.dtype, buffer=buf)
        view.flags.writeable = writeable
        return view

    def tree_of(self, flat: np.ndarray) -> List[np.ndarray]:
        """Per-layer reshaped views of an existing flat vector (no copies)."""
        if flat.ndim != 1 or flat.size != self.total_elems:
            raise ValueError(
                f"flat vector has shape {flat.shape}, layout needs ({self.total_elems},)"
            )
        out: List[np.ndarray] = []
        cursor = 0
        for shape, size in zip(self.shapes, self.sizes):
            out.append(flat[cursor : cursor + size].reshape(shape))
            cursor += size
        return out

    def check_tree(self, tree: Sequence[np.ndarray]) -> None:
        """Validate shapes against the layout (dtype casts are allowed)."""
        if len(tree) != self.n_arrays:
            raise ValueError(
                f"weight tree has {len(tree)} arrays, layout expects {self.n_arrays}"
            )
        for i, (a, shape) in enumerate(zip(tree, self.shapes)):
            if tuple(np.shape(a)) != shape:
                raise ValueError(
                    f"array {i} has shape {np.shape(a)}, layout expects {shape}"
                )


class ParamPlane:
    """One contiguous buffer holding a whole weight tree.

    The plane owns its memory; ``tree`` (per-layer views) and ``flat``
    (the 1-D vector, packed layouts only) alias it, so an in-place write
    through any of the three is immediately visible through the others.
    This is what lets the server keep *one* global weight buffer for the
    lifetime of a run: aggregation writes it once per round, and every
    consumer (evaluation, executor broadcast, strategy hooks) reads views
    that never churn.
    """

    def __init__(self, layout: WeightLayout) -> None:
        self.layout = layout
        self._buf = np.zeros(layout.total_bytes, dtype=np.uint8)
        #: stable per-layer views; identity is preserved across rounds.
        self.tree: List[np.ndarray] = layout.views(self._buf.data, writeable=True)
        #: the canonical flat vector (None for mixed-dtype layouts).
        self.flat: Optional[np.ndarray] = (
            layout.flat_view(self._buf.data, writeable=True) if layout.is_packed else None
        )

    @classmethod
    def from_tree(cls, tree: Sequence[np.ndarray]) -> "ParamPlane":
        plane = cls(WeightLayout.from_weights(tree))
        plane.copy_from_tree(tree)
        return plane

    @property
    def n_params(self) -> int:
        return self.layout.total_elems

    def bytes_view(self) -> np.ndarray:
        """The raw buffer as uint8 — one memcpy moves the whole model."""
        return self._buf

    # -- writes ------------------------------------------------------------
    def copy_from_tree(self, tree: Sequence[np.ndarray]) -> None:
        """Copy a weight tree into the plane (casting per layer if needed)."""
        self.layout.check_tree(tree)
        for view, w in zip(self.tree, tree):
            np.copyto(view, w, casting="same_kind")

    def copy_from_flat(self, flat: np.ndarray) -> None:
        """Copy a flat vector into the plane (packed layouts only)."""
        if self.flat is None:
            raise ValueError("layout is not packed; use copy_from_tree")
        np.copyto(self.flat, flat, casting="same_kind")

    # -- reads -------------------------------------------------------------
    def tree_copy(self) -> List[np.ndarray]:
        return [np.array(v, copy=True) for v in self.tree]

    def flat_copy(self) -> np.ndarray:
        if self.flat is None:
            raise ValueError("layout is not packed")
        return self.flat.copy()


class GradPlane(ParamPlane):
    """A zero-initialized plane matching a weight layout.

    The gradient-side twin of :class:`ParamPlane`: worker models re-homed by
    :func:`materialize_parameters` accumulate every layer's gradient into one
    of these, so ``zero_grad``, gradient clipping, the fused optimizers and
    the strategies' attach ops all become single vector operations over the
    ``(P,)`` :attr:`flat` view instead of per-layer Python loops.
    """

    def zero_(self) -> None:
        """Reset every gradient in the plane with one vectorized write."""
        if self.flat is not None:
            self.flat[...] = 0.0
        else:  # pragma: no cover - mixed-dtype models are never plane-backed
            for view in self.tree:
                view[...] = 0.0


def materialize_parameters(params) -> Optional[Tuple[ParamPlane, "GradPlane"]]:
    """Re-home a list of :class:`~repro.nn.parameter.Parameter` objects onto
    one weight plane and one gradient plane.

    Each parameter's ``data``/``grad`` becomes a zero-copy view into the
    corresponding plane, preserving the current bytes, shapes, dtypes and
    traversal order exactly.  Returns ``None`` (and leaves the parameters
    untouched) when the tree is empty or mixed-dtype — callers then stay on
    the per-layer fallback paths.  This is the plane-backed-module
    constructor behind :meth:`repro.nn.module.Module.materialize_flat`.
    """
    params = list(params)
    if not params:
        return None
    layout = WeightLayout.from_weights([p.data for p in params])
    if not layout.is_packed:
        return None
    weight_plane = ParamPlane(layout)
    grad_plane = GradPlane(layout)
    for p, wview, gview in zip(params, weight_plane.tree, grad_plane.tree):
        np.copyto(wview, p.data)
        np.copyto(gview, p.grad)
        p.rebind(wview, gview)
    return weight_plane, grad_plane


class MatrixPool:
    """Round-persistent scratch matrices for the GEMM aggregation path.

    The aggregation hot path stacks K client vectors into one ``(K, P)``
    float64 matrix every round.  K and P are constant for a run, so the
    pool hands back the same allocation round after round instead of
    churning ~K*P*8 bytes per aggregation.  Keyed by shape; one entry per
    live shape (a run has one, two when privacy/compression wrappers stack
    their own deltas).

    A matrix returned by :meth:`take` is **scratch**: it is valid until the
    next ``take`` of the same shape, so callers must consume (reduce) it
    before triggering another aggregation.  The module-level default pool
    is therefore *thread-local* — engines aggregating concurrently in
    separate threads never share scratch.
    """

    def __init__(self, max_entries: int = 4) -> None:
        self._max = max_entries
        self._pool: Dict[Tuple[int, int], np.ndarray] = {}
        #: largest (K, P) shape ever handed out, by element count — the
        #: pool's peak scratch footprint, surfaced as an observability
        #: gauge.  Survives clear(): it describes the run, not the cache.
        self.peak_shape: Tuple[int, int] = (0, 0)

    def take(self, k: int, p: int) -> np.ndarray:
        if k * p > self.peak_shape[0] * self.peak_shape[1]:
            self.peak_shape = (k, p)
        mat = self._pool.get((k, p))
        if mat is None:
            if len(self._pool) >= self._max:
                self._pool.clear()
            mat = np.empty((k, p), dtype=np.float64)
            self._pool[(k, p)] = mat
        return mat

    def clear(self) -> None:
        self._pool.clear()


_POOLS = threading.local()


def _default_pool() -> MatrixPool:
    pool = getattr(_POOLS, "pool", None)
    if pool is None:
        pool = _POOLS.pool = MatrixPool()
    return pool


def default_pool() -> MatrixPool:
    """This thread's shared scratch pool (public read access — the engine's
    observability gauges report its peak shape)."""
    return _default_pool()


def reset_default_pool() -> None:
    """Drop this thread's pooled scratch matrices.

    The pool is keyed by ``(K, P)`` and capped at a few entries, so reuse
    across *same-shape* experiments is safe (every row is overwritten
    before the matrix is read) — but scratch from a finished experiment
    would otherwise pin ``K x P`` float64 until another shape evicts it.
    :meth:`repro.api.Engine.close` calls this so back-to-back experiments
    with different models or cohort sizes don't accumulate dead buffers.
    """
    pool = getattr(_POOLS, "pool", None)
    if pool is not None:
        pool.clear()


def as_flat(tree: Sequence[np.ndarray]) -> Optional[np.ndarray]:
    """One freshly allocated flat copy of a homogeneous-dtype tree, or
    ``None`` when dtypes are mixed (callers then take their per-layer
    fallback).  The shared predicate behind every flat fast path."""
    arrays = [np.asarray(a) for a in tree]
    if arrays and len({a.dtype for a in arrays}) == 1:
        return flatten_arrays(arrays)
    return None


def stack_updates(
    trees: Sequence[Sequence[np.ndarray]],
    flats: Optional[Sequence[Optional[np.ndarray]]] = None,
    pool: Optional[MatrixPool] = None,
) -> np.ndarray:
    """Stack K weight trees into the pooled ``(K, P)`` float64 matrix.

    ``flats`` optionally supplies a precomputed flat vector per tree (the
    :class:`~repro.fl.types.ClientUpdate` fast path); rows with ``None``
    fall back to flattening the tree.  The returned matrix is pool scratch
    (see :class:`MatrixPool`): reduce it before stacking again.
    """
    if not trees:
        raise ValueError("no trees to stack")
    sizes = [int(np.asarray(a).size) for a in trees[0]]
    p = sum(sizes)
    pool = pool if pool is not None else _default_pool()
    mat = pool.take(len(trees), p)
    for i, tree in enumerate(trees):
        flat = flats[i] if flats is not None else None
        if flat is not None and flat.size == p:
            mat[i] = flat
        else:
            if len(tree) != len(sizes):
                raise ValueError("tree structure mismatch")
            flatten_into(mat[i], tree)
    return mat
