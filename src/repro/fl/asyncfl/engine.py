"""The event-driven federation engine: async and semi-sync server modes.

:class:`AsyncFLEngine` subclasses :class:`~repro.api.engine.Engine` and
replaces the synchronous barrier of ``run_round`` with a virtual-clock
event loop.  Everything else is inherited: construction, callbacks,
``run()``'s early-stop loop, evaluation, and the record/cost bookkeeping
phases — so async histories read exactly like sync ones, plus
``virtual_time_s`` and ``update_staleness``.

How one "round" (= one aggregation = one ``RoundRecord``) happens:

1. **dispatch** — idle clients are handed the *current* global model and
   trained eagerly through the inherited executor; the finished result is
   filed in the event queue at ``now + duration`` where duration is priced
   by the :class:`~repro.fl.asyncfl.timing.ClientTimingModel` from the
   update's measured FLOPs/bytes.  Semi-sync dispatches the sampler's
   selection (minus still-running stragglers — over-selection happens by
   configuring ``clients_per_round > buffer_size``); async keeps
   ``clients_per_round`` clients training at all times, refilling idle
   slots with a seeded uniform draw.
2. **arrivals** — events pop in ``(time, client_id)`` order; each arrival
   records its *measured staleness* (server versions elapsed since its
   dispatch) and lands in the aggregation buffer.
3. **aggregate** — when the buffer holds ``buffer_size`` updates (FedBuff)
   or the semi-sync deadline expires with at least one arrival, the batch
   is applied.  Semi-sync reuses the strategy's own
   ``aggregate``/``post_aggregate`` via the inherited aggregate phase;
   async mixes each update into the global model with the FedAsync-style
   polynomially decayed weight ``alpha * (1 + staleness)^(-poly)``.
   Batches are applied in client-id order so cross-mode runs are
   bit-reproducible.

Determinism: durations are deterministic per client (device profiles +
seeded heterogeneity), event ties break by client id, and the async
dispatcher draws from a seeded :class:`~repro.utils.rng.RngStream` child
keyed by dispatch index — a fixed seed therefore yields byte-identical
histories on repeated runs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.algorithms.base import Strategy
from repro.data.federated import FederatedData
from repro.fl.aggregation import weighted_average_trees
from repro.fl.robust.aggregators import robust_aggregate
from repro.fl.asyncfl.clock import Event, EventQueue, VirtualClock
from repro.fl.asyncfl.timing import ClientTimingModel
from repro.fl.executor import ClientTaskSpec, TaskResult
from repro.fl.sampling import UniformSampler
from repro.fl.types import ClientUpdate, FLConfig, RoundRecord
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

from repro.api.callbacks import Callback
from repro.api.engine import RETRY_BACKOFF_BASE_S, Engine

__all__ = ["AsyncFLEngine"]

_log = get_logger("fl.asyncfl")


@dataclass
class _InFlight:
    """What rides an event from dispatch to arrival."""

    result: TaskResult
    version: int          # server version the client trained from
    dispatched_s: float


@dataclass
class _Arrival:
    """A buffered update awaiting aggregation."""

    update: ClientUpdate
    staleness: int        # server versions elapsed between dispatch and arrival
    arrived_s: float


class AsyncFLEngine(Engine):
    """Event-driven engine running the ``"async"`` or ``"semisync"`` mode.

    Parameters (beyond :class:`~repro.api.engine.Engine`'s)
    ----------
    timing:
        Per-client task durations (device profiles + heterogeneity).
    mode:
        ``"semisync"`` — deadline-bounded buffered rounds aggregated with
        the strategy's own aggregation (FedAvg weighting etc.);
        ``"async"`` — staleness-decayed mixing per arriving update.
    buffer_size:
        Aggregate once this many updates arrived (FedBuff's K).  Defaults
        to 1 in async mode and ``clients_per_round`` in semi-sync; must
        not exceed ``clients_per_round`` or the loop could starve.
    deadline_s:
        Semi-sync only: aggregate whatever arrived this many simulated
        seconds after the round's dispatches, even if the buffer is short
        (at least one update is always waited for).  ``None`` waits for
        the full buffer.
    async_alpha / async_poly:
        Async mixing weight ``alpha * (1 + staleness)^(-poly)``.
    """

    def __init__(
        self,
        data: FederatedData,
        strategy: Strategy,
        config: FLConfig,
        timing: ClientTimingModel,
        mode: str = "semisync",
        buffer_size: Optional[int] = None,
        deadline_s: Optional[float] = None,
        async_alpha: float = 0.6,
        async_poly: float = 0.5,
        model_name: str = "cnn",
        model_fn: Optional[Callable] = None,
        sampler=None,
        n_workers: int = 1,
        executor: str = "auto",
        callbacks: Iterable[Callback] = (),
        aggregator=None,
        adversary=None,
        agg_block_size: Optional[int] = None,
        recorder=None,
        fault_injector=None,
        task_retries: int = 0,
        task_timeout_s: Optional[float] = None,
        quorum_fraction: float = 0.0,
        retry_backoff_base_s: float = RETRY_BACKOFF_BASE_S,
    ) -> None:
        # All validation happens before super().__init__ builds the
        # executor — raising afterwards would leak a spawned worker pool.
        if mode not in ("async", "semisync"):
            raise ValueError(f"unknown AsyncFLEngine mode {mode!r}")
        if strategy.needs_preamble:
            raise ValueError(
                f"{strategy.name} uses a preamble phase (full-batch gradients "
                "at a synchronized global model), which has no analogue in the "
                "event-driven modes; run it with mode='sync'"
            )
        if mode == "async":
            # Async mixing replaces server aggregation entirely: strategies
            # that maintain server state through aggregate/post_aggregate
            # (SCAFFOLD's c, SlowMo's momentum, FedDyn's h, FedNova, FedBN's
            # masked averaging) would silently train a different algorithm.
            overrides_server = (
                type(strategy).aggregate is not Strategy.aggregate
                or type(strategy).post_aggregate is not Strategy.post_aggregate
            )
            if overrides_server:
                raise ValueError(
                    f"{strategy.name} relies on server-side aggregation hooks, "
                    "which mode='async' replaces with staleness-decayed "
                    "mixing; run it with mode='sync' or mode='semisync'"
                )
            if sampler is not None and not isinstance(sampler, UniformSampler):
                raise ValueError(
                    "mode='async' refills idle clients with a seeded uniform "
                    f"draw and would silently ignore the {type(sampler).__name__}; "
                    "sampler policies apply to mode='sync'/'semisync'"
                )
        if timing.n_clients != config.n_clients:
            raise ValueError(
                f"timing model covers {timing.n_clients} clients, "
                f"config has {config.n_clients}"
            )
        if buffer_size is None:
            buffer_size = 1 if mode == "async" else config.clients_per_round
        if not 1 <= buffer_size <= config.clients_per_round:
            raise ValueError(
                "need 1 <= buffer_size <= clients_per_round (the round could "
                f"otherwise starve): got K={buffer_size} with "
                f"{config.clients_per_round} concurrent clients"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if deadline_s is not None and mode == "async":
            raise ValueError("deadline_s applies to semisync rounds only")
        if not 0 < async_alpha <= 1:
            raise ValueError("async_alpha must be in (0, 1]")
        if async_poly < 0:
            raise ValueError("async_poly must be non-negative")
        super().__init__(
            data, strategy, config, model_name=model_name, model_fn=model_fn,
            sampler=sampler, n_workers=n_workers, executor=executor,
            callbacks=callbacks, aggregator=aggregator, adversary=adversary,
            agg_block_size=agg_block_size, recorder=recorder,
            fault_injector=fault_injector, task_retries=task_retries,
            task_timeout_s=task_timeout_s, quorum_fraction=quorum_fraction,
            retry_backoff_base_s=retry_backoff_base_s,
        )
        self.timing = timing
        self.mode = mode
        self.buffer_size = int(buffer_size)
        self.deadline_s = deadline_s
        self.async_alpha = float(async_alpha)
        self.async_poly = float(async_poly)
        self.clock = VirtualClock()
        self.events = EventQueue()
        self._busy: set = set()
        self._buffer: List[_Arrival] = []
        self._dispatch_seq = 0
        self._dispatch_root = RngStream(config.seed).child("asyncfl", "dispatch")
        #: server version the executor last received a broadcast for —
        #: weights are immutable between aggregations, so one broadcast per
        #: version suffices (the process backend's shared-memory copy is
        #: not free).
        self._broadcast_version: Optional[int] = None
        #: server version at each client's most recent dispatch — the
        #: scheduler-side truth behind the measured xi handed to FedTrip.
        self._last_dispatch_version: dict = {}

    # ------------------------------------------------------------------
    # dispatch / arrival
    # ------------------------------------------------------------------
    def _dispatch_wave(self, client_ids: List[int]) -> None:
        """Train a wave of clients on the current global model now (eagerly,
        as one executor batch so pooled backends overlap them) and file each
        finish event at ``now + simulated duration``."""
        if not client_ids:
            return
        version = self.server.round_idx
        if self._broadcast_version != version:
            payload = self.server.broadcast_payload()
            self.executor.broadcast(self.server.plane, payload)
            self._broadcast_version = version
            if self.obs.enabled:
                from repro.obs import payload_nbytes

                self._obs_payload_nbytes = payload_nbytes(payload)
        if self.obs.enabled:
            # Downlink accounting: every dispatched client adopts the
            # current global model (the executor broadcast is per version,
            # but each client logically downloads it once per dispatch).
            self.obs.broadcast_bytes(
                self.server.plane.layout.total_bytes,
                getattr(self, "_obs_payload_nbytes", 0),
                len(client_ids),
            )
        tasks = []
        for client_id in client_ids:
            previous = self._last_dispatch_version.get(client_id)
            xi_measured = None if previous is None else float(version - previous)
            self._last_dispatch_version[client_id] = version
            tasks.append(
                ClientTaskSpec(
                    client_id=client_id,
                    round_idx=version,
                    state=self.clients[client_id].state,
                    xi_measured=xi_measured,
                )
            )
            self._busy.add(client_id)
        for task, result in zip(tasks, self.executor.run(tasks)):
            self._file_result(task, result, version)

    def _file_result(self, task: ClientTaskSpec, result: TaskResult,
                     version: int) -> None:
        """Screen one dispatch result under the failure policy, retrying
        eagerly (each retry re-runs the single task through the executor,
        with exponential backoff accumulated onto the client's simulated
        finish time), then file the finish event.

        A terminal failure files a *failure marker* — an event whose
        in-flight result still carries the failure: when it pops, the
        client is freed at the failure's virtual time but nothing is
        buffered, so stragglers/crashes delay only themselves, never the
        server.  Event-time bookkeeping is all virtual; no wall sleeping.
        """
        if result.obs is not None:
            # Process-pool worker shard, merged in task order.
            self.obs.absorb(result.obs)
        backoff_s = 0.0
        failure = self._screen_result(task, result)
        while failure is not None and failure.retryable and task.attempt < self.task_retries:
            if result.state is not None:
                # Timeout: the device trained; keep its state for the retry.
                self._adopt_state(task.client_id, result.state)
            self._round_retried.append(task.client_id)
            backoff_s += self.retry_backoff_base_s * (2.0 ** task.attempt)
            task = replace(
                task,
                state=self.clients[task.client_id].state,
                attempt=task.attempt + 1,
            )
            result = self.executor.run([task])[0]
            if result.obs is not None:
                self.obs.absorb(result.obs)
            failure = self._screen_result(task, result)
        if failure is not None:
            self._round_failed.append(task.client_id)
            if result.state is not None:
                self._adopt_state(task.client_id, result.state)
            # The worker slot is held for the failed attempt's base latency
            # (no compute/transfer made it) plus any backoff already spent.
            duration = self.timing.duration_s(task.client_id, 0.0, 0.0)
        else:
            duration = (
                self.timing.duration_s(
                    task.client_id, result.update.flops, result.update.comm_bytes
                )
                + result.fault_delay_s
            )
        self.events.push(
            Event(
                self.clock.now + duration + backoff_s,
                task.client_id,
                payload=_InFlight(result, version, self.clock.now),
            )
        )

    def _arrive(self, event: Event) -> bool:
        """Advance the clock to the event and process it: a success adopts
        the client's new strategy state and buffers the update with its
        measured staleness (returns True); a failure marker only frees the
        client (returns False)."""
        self.clock.advance_to(event.time_s)
        inflight: _InFlight = event.payload
        client_id = event.client_id
        self._busy.discard(client_id)
        if inflight.result.failure is not None:
            return False
        self._adopt_state(client_id, inflight.result.state)
        self._fire("on_client_update", self.server.round_idx, inflight.result.update)
        self._buffer.append(
            _Arrival(
                update=inflight.result.update,
                staleness=self.server.round_idx - inflight.version,
                arrived_s=event.time_s,
            )
        )
        return True

    def _refill_async(self) -> List[int]:
        """Keep ``clients_per_round`` clients training: fill idle slots with
        a seeded uniform draw over idle clients (sorted; draws keyed by the
        global dispatch index, so replays are exact), then dispatch the
        picks as one wave."""
        picks: List[int] = []
        while len(self._busy) + len(picks) < self.config.clients_per_round:
            idle = sorted(set(range(self.config.n_clients)) - self._busy - set(picks))
            if not idle:
                break
            rng = self._dispatch_root.child(self._dispatch_seq).generator
            picks.append(int(idle[int(rng.integers(len(idle)))]))
            self._dispatch_seq += 1
        self._dispatch_wave(picks)
        return picks

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _take_batch(self) -> List[_Arrival]:
        """Drain the buffer in client-id order (cross-mode reproducibility;
        arrival order is preserved on the record via ``arrived_s``)."""
        batch = sorted(self._buffer, key=lambda a: a.update.client_id)
        self._buffer.clear()
        return batch

    def _apply_async(self, round_idx: int, batch: List[_Arrival]) -> None:
        """FedAsync-style mixing: sequentially fold each update into the
        global model with weight ``alpha * (1 + staleness)^(-poly)``.

        Runs on the flat parameter vectors — one float64 accumulator folds
        the whole batch, written back to the server's plane once — with the
        tree-pair average kept as the mixed-dtype fallback.

        With a robust aggregator attached the per-update fold is replaced by
        *reduce-then-mix*: the robust rule reduces the healthy batch to one
        vector (coordinate medians and Krum selection have no sequential
        formulation), and a single mix lands it with the alpha of the
        freshest accepted update — screened clients therefore contribute
        neither values nor mixing weight.
        """
        updates = [a.update for a in batch]
        self._fire("on_aggregate", round_idx, updates, self.server.weights)
        for observer in self.update_observers:
            observer(updates, self.server.weights)
        self.server.reset_report()
        # A client is never in flight twice, so client ids are unique per batch.
        healthy_ids = {u.client_id for u in self.server.partition_finite(updates)}
        healthy = [a for a in batch if a.update.client_id in healthy_ids]
        if not healthy:
            self.server.skip_round()
            return
        if self.server.aggregator is not None:
            self._apply_async_robust(healthy)
            return
        flat = self.server.plane.flat
        if flat is not None and all(a.update.flat_vector() is not None for a in healthy):
            acc = flat.astype(np.float64)
            for a in healthy:
                alpha = self.async_alpha * (1.0 + a.staleness) ** (-self.async_poly)
                acc *= 1.0 - alpha
                # cast before scaling so the product is formed in float64,
                # matching the tree fallback's precision
                acc += alpha * a.update.flat_vector().astype(np.float64)
            self.server.plane.copy_from_flat(acc)
        else:  # pragma: no cover - models are uniformly float32
            weights = self.server.weights
            for a in healthy:
                alpha = self.async_alpha * (1.0 + a.staleness) ** (-self.async_poly)
                weights = weighted_average_trees(
                    [weights, a.update.weights], [1.0 - alpha, alpha]
                )
            self.server.weights = weights
        self.server.round_idx += 1

    def _apply_async_robust(self, healthy: List[_Arrival]) -> None:
        """Reduce-then-mix for robust rules in the async mode (see
        :meth:`_apply_async`); ``healthy`` is non-empty and finite."""
        server = self.server
        new_tree, screened = robust_aggregate(
            server.aggregator,
            [a.update for a in healthy],
            server.weights,
            global_flat=server.plane.flat,
        )
        if screened:
            server.last_screened = screened
            _log.info("round %d: %s screened client(s): %s",
                      server.round_idx, server.aggregator.name, screened)
        accepted = [a for a in healthy if a.update.client_id not in set(screened)]
        # Screening rules always keep >= 1 row (enforced at reduce time),
        # so `accepted` is never empty here.
        stale = min(a.staleness for a in accepted)
        alpha = self.async_alpha * (1.0 + stale) ** (-self.async_poly)
        flat = server.plane.flat
        if flat is not None:
            reduced = np.concatenate(
                [np.asarray(a, np.float64).ravel() for a in new_tree]
            )
            server.plane.copy_from_flat(
                (1.0 - alpha) * flat.astype(np.float64) + alpha * reduced
            )
        else:  # pragma: no cover - models are uniformly float32
            server.weights = weighted_average_trees(
                [server.weights, new_tree], [1.0 - alpha, alpha]
            )
        server.round_idx += 1

    # ------------------------------------------------------------------
    # crash-safe resume: unsupported here
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        raise ValueError(
            "crash-safe snapshot/resume supports mode='sync' only: the "
            "event-driven modes hold in-flight results and virtual-clock "
            "events that a crash necessarily loses"
        )

    def restore(self, snapshot: Dict[str, Any]) -> None:
        raise ValueError(
            "crash-safe snapshot/resume supports mode='sync' only: the "
            "event-driven modes hold in-flight results and virtual-clock "
            "events that a crash necessarily loses"
        )

    # ------------------------------------------------------------------
    # the event-driven round
    # ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        t0 = time.perf_counter()
        round_idx = self.server.round_idx
        self.obs.begin_round(round_idx)
        self._reset_fault_round()
        timings: Dict[str, float] = {}
        t = t0

        if self.mode == "semisync":
            self.obs.begin_phase("sample")
            selected = self._phase_sample(round_idx)
            t = self._end_phase("sample", timings, t, cohort=len(selected))
            self._fire("on_round_start", round_idx, selected)
            t = time.perf_counter()  # callbacks don't bill to any phase
            self.obs.begin_phase("local_train")
            self._dispatch_wave([k for k in selected if k not in self._busy])
            deadline = (
                self.clock.now + self.deadline_s
                if self.deadline_s is not None else math.inf
            )
            while len(self._buffer) < self.buffer_size:
                event = self.events.pop_until(deadline)
                if event is None:
                    break
                self._arrive(event)
            while not self._buffer and len(self.events):
                # Deadline expired with zero arrivals: production servers
                # extend the round to the first report rather than abort.
                # (Failure markers free clients but don't report, hence the
                # loop; a fully drained queue means every in-flight task
                # failed terminally and the round degrades to a skip.)
                self._arrive(self.events.pop())
            if (self._buffer and len(self._buffer) < self.buffer_size
                    and math.isfinite(deadline) and self.clock.now < deadline):
                # A real deadline cut the round short: the server waited it
                # out.  (Without a deadline a short buffer means the sampler
                # offered fewer clients than K — e.g. heavy dropout — and the
                # clock stays at the last arrival; after an extended round
                # the first report already landed past the deadline and the
                # clock must not rewind to it.)
                self.clock.advance_to(deadline)
            batch = self._take_batch()
            t = self._end_phase(
                "local_train", timings, t,
                arrived=len(batch), virtual_s=self.clock.now,
            )
            self.obs.begin_phase("aggregate")
            skip_reason = self._quorum_skip_reason(
                selected, [a.update for a in batch]
            )
            if skip_reason is None:
                self._phase_aggregate(round_idx, [a.update for a in batch])
            else:
                self.server.reset_report()
                self.server.skip_round(reason=skip_reason)
            t = self._end_phase(
                "aggregate", timings, t,
                n_updates=len(batch), virtual_s=self.clock.now,
            )
        else:  # async
            self.obs.begin_phase("sample")
            selected = self._refill_async()
            t = self._end_phase("sample", timings, t, cohort=len(selected))
            self._fire("on_round_start", round_idx, selected)
            t = time.perf_counter()  # callbacks don't bill to any phase
            self.obs.begin_phase("local_train")
            while len(self._buffer) < self.buffer_size and len(self.events):
                # Failure markers pop without buffering; a drained queue
                # (every in-flight task failed terminally) ends the wait —
                # the freed slots refill with fresh fault draws next round.
                self._arrive(self.events.pop())
            batch = self._take_batch()
            t = self._end_phase(
                "local_train", timings, t,
                arrived=len(batch), virtual_s=self.clock.now,
            )
            self.obs.begin_phase("aggregate")
            skip_reason = None
            if self._policy_active:
                if not batch:
                    skip_reason = "no_updates"
                elif len(batch) < math.ceil(self.quorum_fraction * self.buffer_size):
                    skip_reason = "quorum"
            if skip_reason is None:
                self._apply_async(round_idx, batch)
            else:
                self.server.reset_report()
                self.server.skip_round(reason=skip_reason)
            t = self._end_phase(
                "aggregate", timings, t,
                n_updates=len(batch), virtual_s=self.clock.now,
            )

        self._virtual_time_s = self.clock.now
        self.obs.begin_phase("evaluate")
        acc, loss = self._phase_evaluate(round_idx)
        t = self._end_phase("evaluate", timings, t)
        return self._phase_record(
            round_idx,
            [a.update.client_id for a in batch],
            [a.update for a in batch],
            acc, loss, t0,
            update_staleness=[a.staleness for a in batch],
            phase_seconds=timings,
        )
