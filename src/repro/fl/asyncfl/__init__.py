"""Virtual-clock asynchronous / semi-synchronous federation.

The synchronous engine measures progress in *rounds*; real federations run
on *time*.  This subpackage simulates that time deterministically:

* :mod:`repro.fl.asyncfl.clock` — a virtual clock plus an event queue of
  client-finish events, ordered by ``(time, client_id, seq)`` so replays
  are exact (ties broken by client id, never by heap internals);
* :mod:`repro.fl.asyncfl.timing` — per-client task durations derived from
  :class:`~repro.fl.systems.SystemModel` device profiles (wifi / 4g / iot
  presets, deterministic heterogeneity spread), so "which client is slow"
  is physical, not scripted;
* :mod:`repro.fl.asyncfl.engine` — :class:`AsyncFLEngine`, an
  :class:`~repro.api.engine.Engine` whose ``run_round`` drains the event
  queue instead of a barrier.  Two server modes ride on it:

  - ``"async"`` — every arriving update is mixed into the global model with
    a staleness-decayed weight (FedAsync-style polynomial decay);
  - ``"semisync"`` — deadline-bounded rounds with over-selection: the
    server aggregates whatever arrived by the deadline (or as soon as
    ``buffer_size`` updates arrived, FedBuff-style); stragglers keep
    training and land in a later round with measured staleness.

Staleness here is *measured* (server versions elapsed between dispatch and
arrival), which is exactly the quantity FedTrip's ``xi`` approximates by
round arithmetic in the synchronous loop.
"""

from repro.fl.asyncfl.clock import Event, EventQueue, VirtualClock
from repro.fl.asyncfl.engine import AsyncFLEngine
from repro.fl.asyncfl.timing import ClientTimingModel

__all__ = [
    "Event",
    "EventQueue",
    "VirtualClock",
    "ClientTimingModel",
    "AsyncFLEngine",
]
