"""Deterministic virtual clock and client-finish event queue.

The scheduler never sleeps: time is a number that only moves forward when
an event is popped.  Determinism is the load-bearing property — a fixed
seed must produce byte-identical histories — so the queue's ordering is
fully specified: events pop by ``(time_s, client_id, seq)``.  Two clients
finishing at exactly the same virtual instant pop in client-id order, and
two events of one client (impossible today, cheap to guarantee anyway)
pop in insertion order.  Nothing about ordering is left to ``heapq``
internals or dict iteration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "VirtualClock"]


@dataclass(frozen=True)
class Event:
    """A client-finish event: at ``time_s`` client ``client_id`` reports in.

    ``payload`` carries whatever the scheduler attached at dispatch time
    (for the async engines: the eagerly computed ``TaskResult`` plus the
    server version the client trained from).
    """

    time_s: float
    client_id: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("event time must be non-negative")
        if self.client_id < 0:
            raise ValueError("client_id must be non-negative")


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time_s: float) -> float:
        """Move the clock forward to ``time_s``; moving backward is a bug."""
        if time_s < self._now - 1e-12:
            raise ValueError(
                f"virtual clock cannot run backward: at {self._now:.6f}s, "
                f"asked for {time_s:.6f}s"
            )
        self._now = max(self._now, float(time_s))
        return self._now


@dataclass(order=True)
class _Entry:
    sort_key: Tuple[float, int, int]
    event: Event = field(compare=False)


class EventQueue:
    """Priority queue of :class:`Event` with fully specified ordering."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap, _Entry((event.time_s, event.client_id, self._seq), event)
        )

    def peek(self) -> Optional[Event]:
        """The next event without removing it, or None when empty."""
        return self._heap[0].event if self._heap else None

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap).event

    def pop_until(self, deadline_s: float) -> Optional[Event]:
        """Pop the next event iff it fires at or before ``deadline_s``."""
        nxt = self.peek()
        if nxt is None or nxt.time_s > deadline_s:
            return None
        return self.pop()
