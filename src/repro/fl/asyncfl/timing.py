"""Per-client task durations drawn from the device/network model.

One :class:`ClientTimingModel` wraps a :class:`~repro.fl.systems.SystemModel`
— the same presets (wifi / 4g / iot) and deterministic heterogeneity spread
the synchronous path uses for its per-round wall-clock — and prices one
client task as ``compute(flops) + transfer(bytes)`` on that client's
:class:`~repro.fl.systems.DeviceProfile`.  Because the simulation trains a
client *eagerly* at dispatch, durations are computed from the **measured**
FLOPs/bytes of the finished update, not a prediction; the event scheduler
then just files the result at ``dispatch_time + duration``.

Using one model for both paths is what makes the sync-vs-async benchmark
fair: a straggler takes the same simulated seconds whether the server waits
for it (sync) or aggregates without it (semisync/async).
"""

from __future__ import annotations

from typing import Union

from repro.fl.systems import DeviceProfile, SystemModel

__all__ = ["ClientTimingModel"]


class ClientTimingModel:
    """Deterministic task durations for each client of one federation."""

    def __init__(self, system: SystemModel) -> None:
        self.system = system

    @classmethod
    def from_preset(
        cls,
        profiles: Union[str, DeviceProfile],
        n_clients: int,
        heterogeneity: float = 1.0,
        seed: int = 0,
    ) -> "ClientTimingModel":
        """Build from a preset name / single profile (see NETWORK_PRESETS)."""
        return cls(SystemModel(profiles, n_clients, heterogeneity=heterogeneity, seed=seed))

    @property
    def n_clients(self) -> int:
        return len(self.system.profiles)

    def profile(self, client_id: int) -> DeviceProfile:
        return self.system.profiles[client_id]

    def duration_s(self, client_id: int, flops: float, comm_bytes: float) -> float:
        """Simulated seconds for one client task (local training + up/down
        transfer), strictly positive so event times always advance."""
        prof = self.profile(client_id)
        return max(
            prof.compute_time(float(flops)) + prof.transfer_time(float(comm_bytes)),
            1e-9,
        )
