"""Population-scale federation: millions of clients without client objects.

The eager engine materializes one :class:`~repro.fl.client.Client` per
participant at construction — an object, a dataset shard and a strategy
state dict each, i.e. O(N) memory and O(N) startup work even though only a
K-client cohort trains per round.  That is fine at the paper's N=64 and
impossible at the ROADMAP's N=10⁶.  This module replaces the eager roster
with three pieces, all O(K)-per-round:

* :class:`Population` — the virtual id space.  ``population.size`` client
  ids exist; each maps onto one of ``n_shards`` concrete data shards
  (``shard_of = id % n_shards``), so a bounded dataset emulates an
  unbounded fleet the way production traffic replays a finite corpus.
* :class:`PopulationSampler` — samples a K-cohort of distinct ids per
  round in O(K) work and memory.  ``numpy``'s ``choice(N, K,
  replace=False)`` may build an O(N) permutation, which would make
  rounds/sec *grow* with population size; rejection sampling keeps the
  cost a function of K only (collisions are vanishingly rare at K ≪ N,
  and small populations fall back to ``choice``).
* :class:`ClientDirectory` — a lazy, thread-safe drop-in for the engine's
  client list: ``directory[client_id]`` materializes the client on first
  touch (dataset shard cached per shard, strategy state from the
  strategy's factory) and never iterates the population.  Determinism
  does not depend on materialization order: a client's RNG is keyed by
  ``(seed, client_id)`` (see :class:`~repro.fl.client.Client`), so the
  lazy roster is byte-identical to the eager one.

Per-client strategy state (SCAFFOLD's ``c_k``, FedDyn's ``h_k`` — one
(P,) flat each) is the other O(N x P) hazard.  :class:`FlatStateArena`
interns those flats: small totals stay on the heap; past a configurable
threshold new state lands in bump-allocated ``np.memmap`` temp-file
arenas, so a long-running simulation's touched-client state is disk-backed
and evictable instead of pinned RSS.  The directory routes every state
adoption through a stable per-``(client, key)`` slot — round N+1's values
are copied *into* round N's buffer — so state storage is allocated once
per touched client no matter how many rounds run, and strategies that
rebind fresh arrays each round (SCAFFOLD) cannot leak slots.  Arena slots
are plain ``np.ndarray`` views (not ``np.memmap`` instances), so they
pickle by value and survive process-pool round trips unchanged.
"""

from __future__ import annotations

import copy
import os
import tempfile
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.data.federated import FederatedData
from repro.fl.client import Client
from repro.utils.rng import RngStream

__all__ = [
    "ClientDirectory",
    "FlatStateArena",
    "Population",
    "PopulationSampler",
]


class Population:
    """A virtual client id space of ``size`` ids over ``n_shards`` data shards.

    Ids are ``[0, size)``; id ``i`` reads data shard ``i % n_shards``.
    The population carries no per-id storage — it is pure arithmetic, which
    is what makes ``size = 10**6`` free.
    """

    def __init__(self, size: int, n_shards: int) -> None:
        size = int(size)
        n_shards = int(n_shards)
        if size < 1:
            raise ValueError(f"population size must be >= 1, got {size}")
        if not 1 <= n_shards <= size:
            raise ValueError(
                f"need 1 <= n_shards <= population size, got n_shards={n_shards} "
                f"for size={size}"
            )
        self.size = size
        self.n_shards = n_shards

    def shard_of(self, client_id: int) -> int:
        """The concrete data shard behind a virtual client id."""
        if not 0 <= client_id < self.size:
            raise ValueError(
                f"client id {client_id} outside population [0, {self.size})"
            )
        return int(client_id) % self.n_shards

    def describe(self) -> Dict[str, int]:
        return {"size": self.size, "n_shards": self.n_shards}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Population(size={self.size}, n_shards={self.n_shards})"


class PopulationSampler:
    """K distinct ids per round from a :class:`Population`, in O(K).

    Rejection sampling: draw K ids uniformly with replacement, keep the
    distinct ones in draw order, redraw for the shortfall.  Expected extra
    draws are ~K²/N, i.e. negligible in the K ≪ N regime this sampler
    exists for.  Dense populations (K more than half of N) fall back to
    ``choice`` — rejection would thrash exactly where the permutation is
    cheap anyway.  Selection is seeded per round and independent of any
    engine state, so every executor sees the same cohorts.
    """

    def __init__(self, population: Population, clients_per_round: int, seed: int = 0) -> None:
        if not 1 <= clients_per_round <= population.size:
            raise ValueError(
                f"need 1 <= clients_per_round <= population size, got "
                f"{clients_per_round} of {population.size}"
            )
        self.population = population
        self.n_clients = population.size
        self.clients_per_round = int(clients_per_round)
        self._root = RngStream(seed).child("population-sampler")

    def select(self, round_idx: int) -> List[int]:
        rng = self._root.child(round_idx).generator
        n, k = self.n_clients, self.clients_per_round
        if k * 2 >= n:
            picks = rng.choice(n, size=k, replace=False)
            return sorted(int(p) for p in picks)
        chosen: set = set()
        while len(chosen) < k:
            for v in rng.integers(0, n, size=k - len(chosen)):
                chosen.add(int(v))
        return sorted(chosen)

    @property
    def participation_rate(self) -> float:
        """p = K/N over the *population*, the quantity driving E[xi]."""
        return self.clients_per_round / self.n_clients


class FlatStateArena:
    """Interning store for per-client flat strategy state.

    ``intern`` accepts any value; 1-D arrays of at least
    ``min_intern_elems`` elements are *interned*: counted against the heap
    budget while total interned bytes stay below ``threshold_bytes``, and
    copied into bump-allocated ``np.memmap`` temp-file chunks above it.
    Everything else passes through untouched.  ``threshold_bytes=0`` maps
    from the first intern (tests force the mmap path this way); ``None``
    never maps.

    Chunk files are unlinked immediately after mapping — the pages live as
    long as the mapping does, and nothing is left behind if the process
    dies.  Returned slots are ``np.ndarray`` views of the mapping (not
    ``np.memmap`` instances), writable in place and pickled by value.
    """

    #: flats below this many elements are not worth a slot
    DEFAULT_MIN_ELEMS = 256

    def __init__(
        self,
        threshold_bytes: Optional[int] = 64 << 20,
        chunk_bytes: int = 8 << 20,
        min_intern_elems: int = DEFAULT_MIN_ELEMS,
        dir: Optional[str] = None,
    ) -> None:
        if threshold_bytes is not None and threshold_bytes < 0:
            raise ValueError("threshold_bytes must be >= 0 or None")
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        self._threshold = threshold_bytes
        self._chunk_bytes = int(chunk_bytes)
        self._min_elems = int(min_intern_elems)
        self._dir = dir
        self._chunks: List[np.memmap] = []
        self._offset = 0  # bump pointer into the newest chunk
        self._heap_bytes = 0
        self._mapped_bytes = 0
        self._n_slots = 0

    # -- allocation ----------------------------------------------------
    def _alloc(self, nbytes: int, dtype: np.dtype) -> np.ndarray:
        # 64-byte slot alignment: keeps every dtype's natural alignment and
        # cache-line-aligns the folds that read these slots.
        offset = (self._offset + 63) & ~63
        if not self._chunks or offset + nbytes > self._chunks[-1].shape[0]:
            size = max(self._chunk_bytes, nbytes)
            fd, path = tempfile.mkstemp(prefix="repro-state-arena-", suffix=".bin",
                                        dir=self._dir)
            os.close(fd)
            chunk = np.memmap(path, dtype=np.uint8, mode="w+", shape=(size,))
            os.unlink(path)
            self._chunks.append(chunk)
            self._mapped_bytes += size
            offset = 0
        raw = self._chunks[-1][offset : offset + nbytes]
        self._offset = offset + nbytes
        return raw.view(dtype=dtype, type=np.ndarray)

    # -- public API ----------------------------------------------------
    def intern(self, value: Any) -> Any:
        """Adopt ``value`` into the arena; returns the stored (or original)
        object.  Only 1-D ndarrays of >= ``min_intern_elems`` elements are
        interned; the returned array always holds the same bytes as the
        input."""
        if not isinstance(value, np.ndarray) or value.ndim != 1:
            return value
        if value.size < self._min_elems:
            return value
        if self._threshold is None or self._heap_bytes + value.nbytes <= self._threshold:
            self._heap_bytes += value.nbytes
            self._n_slots += 1
            return np.ascontiguousarray(value)
        slot = self._alloc(value.nbytes, value.dtype)
        slot[:] = value
        self._n_slots += 1
        return slot

    def stats(self) -> Dict[str, int]:
        return {
            "heap_bytes": self._heap_bytes,
            "mapped_bytes": self._mapped_bytes,
            "n_slots": self._n_slots,
            "n_chunks": len(self._chunks),
        }

    def close(self) -> None:
        """Drop every mapping (the unlinked backing files disappear with
        them) and reset the accounting."""
        self._chunks.clear()
        self._offset = 0
        self._heap_bytes = 0
        self._mapped_bytes = 0
        self._n_slots = 0


class ClientDirectory:
    """Lazy client roster over a :class:`Population` — a drop-in for the
    engine's client list that only supports what the round loop uses:
    ``directory[client_id]`` and per-client state adoption.

    Clients materialize on first index, under a lock (the threaded executor
    touches the roster from worker threads); each data shard is built once
    and shared by every virtual client mapped onto it.  Strategy state
    comes from ``state_factory(client_id)`` at materialization and is
    routed through the :class:`FlatStateArena`; :meth:`adopt_state` is the
    write path the engine uses after each round — it copies new values into
    the client's existing per-key slots, so state memory is stable across
    rounds and identical across executors (the process pool returns value
    copies; copying them into the slot preserves the bytes).
    """

    def __init__(
        self,
        population: Population,
        data: FederatedData,
        seed: int = 0,
        state_factory=None,
        arena: Optional[FlatStateArena] = None,
    ) -> None:
        if population.n_shards != data.n_clients:
            raise ValueError(
                f"population maps onto {population.n_shards} shards but data "
                f"has {data.n_clients}"
            )
        self.population = population
        self.data = data
        self.seed = seed
        self.arena = arena if arena is not None else FlatStateArena()
        self._state_factory = state_factory
        self._clients: Dict[int, Client] = {}
        self._shards: Dict[int, Any] = {}
        self._slots: Dict[tuple, np.ndarray] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self.population.size

    def __getitem__(self, client_id: int) -> Client:
        client = self._clients.get(client_id)
        if client is not None:
            return client
        with self._lock:
            client = self._clients.get(client_id)
            if client is not None:  # pragma: no cover - double-checked race
                return client
            shard_id = self.population.shard_of(client_id)
            shard = self._shards.get(shard_id)
            if shard is None:
                shard = self._shards[shard_id] = self.data.client_dataset(shard_id)
            client = Client(client_id, shard, seed=self.seed)
            if self._state_factory is not None:
                client.state = {
                    key: self._adopt_value(client_id, key, value)
                    for key, value in self._state_factory(client_id).items()
                }
            self._clients[client_id] = client
            return client

    def _adopt_value(self, client_id: int, key: str, value: Any) -> Any:
        if not isinstance(value, np.ndarray):
            return value
        slot = self._slots.get((client_id, key))
        if slot is not None and slot.shape == value.shape and slot.dtype == value.dtype:
            if slot is not value:
                slot[...] = value
            return slot
        stored = self.arena.intern(value)
        if isinstance(stored, np.ndarray):
            self._slots[(client_id, key)] = stored
        return stored

    def adopt_state(self, client_id: int, state: Dict[str, Any]) -> None:
        """Adopt a post-round state dict for ``client_id``, reusing the
        client's existing arena slots wherever shapes/dtypes match."""
        client = self[client_id]
        with self._lock:
            client.state = {
                key: self._adopt_value(client_id, key, value)
                for key, value in state.items()
            }

    @property
    def materialized(self) -> int:
        """How many clients have actually been built — the number the
        memory ceiling scales with (O(touched), never O(population))."""
        return len(self._clients)

    def state_snapshot(self) -> Dict[int, Dict[str, Any]]:
        """Deep copies of every materialized client's state dict, keyed by
        client id — the directory's contribution to an engine snapshot.
        Untouched clients have no state yet (their factory state is
        deterministic), so O(touched) is also the full resume payload."""
        with self._lock:
            return {
                cid: copy.deepcopy(client.state)
                for cid, client in sorted(self._clients.items())
            }

    def close(self) -> None:
        self._clients.clear()
        self._shards.clear()
        self._slots.clear()
        self.arena.close()
