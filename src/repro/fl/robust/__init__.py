"""Byzantine-robust aggregation and deterministic adversary injection.

Two registry-pluggable subsystems (see the module docstrings for the
theory and determinism contracts):

* :mod:`repro.fl.robust.aggregators` — robust reductions over the stacked
  ``(K, P)`` client matrix (coordinate median, trimmed mean, norm
  clip/screen, Krum/multi-Krum), resolved by ``Server.apply_updates`` from
  ``ExperimentSpec.aggregator``.
* :mod:`repro.fl.robust.adversaries` — seeded attack models (sign flip,
  scaling, Gaussian noise, label flip, collusion) applied at upload time in
  the executor path, selected by ``ExperimentSpec.adversary`` /
  ``adversary_fraction``.
"""

from repro.fl.robust.adversaries import (
    Adversary,
    Collude,
    GaussNoise,
    LabelFlip,
    Scale,
    SignFlip,
    available_adversaries,
    build_adversary,
    register_adversary,
)
from repro.fl.robust.aggregators import (
    CoordinateMedian,
    MeanAggregator,
    MultiKrum,
    NormClip,
    NormScreen,
    RobustAggregator,
    TrimmedMean,
    available_aggregators,
    build_aggregator,
    register_aggregator,
    robust_aggregate,
)

__all__ = [
    "Adversary",
    "Collude",
    "GaussNoise",
    "LabelFlip",
    "Scale",
    "SignFlip",
    "available_adversaries",
    "build_adversary",
    "register_adversary",
    "CoordinateMedian",
    "MeanAggregator",
    "MultiKrum",
    "NormClip",
    "NormScreen",
    "RobustAggregator",
    "TrimmedMean",
    "available_aggregators",
    "build_aggregator",
    "register_aggregator",
    "robust_aggregate",
]
