"""Deterministic Byzantine adversary models for accuracy-under-attack runs.

An :class:`Adversary` owns a *roster* — the subset of clients that behave
maliciously, drawn once from the experiment seed — and two hooks:

* :meth:`Adversary.poison_clients` corrupts a client's *data* before
  training starts (``label_flip``).
* :meth:`Adversary.corrupt_update` rewrites a client's *update* at upload
  time.  It is called from :func:`repro.fl.executor.execute_task`, the one
  code path every backend shares, so the same corruption lands whether the
  round ran on the serial, threaded or process executor and whether the
  server is sync, semisync or async — a precondition for the byte-identity
  contract.

Determinism: the roster and every noise draw come from named
:class:`~repro.utils.rng.RngStream` children of ``(seed, "adversary", ...)``
keyed by client id and round index — never from call order — so results are
identical across executors, and an adversary object crossing the process
boundary (inside ``ProcessWorkerSpec``) only carries plain ints/floats.

Built-in models (``w`` = the honest local model, ``g`` = the global model
the round started from, ``d = w - g`` the honest delta):

================  ==========================================================
``sign_flip``     submit ``g - gamma * d`` — walk *against* the honest
                  direction, ``gamma`` scaling the reversed step
``scale``         submit ``g + gamma * d`` — the honest direction amplified
                  (a model-replacement / boosting attack)
``gauss_noise``   submit ``w + sigma * z``, fresh ``z ~ N(0, I)`` per
                  client per round
``label_flip``    train honestly on a poisoned shard with labels mapped to
                  ``num_classes - 1 - y`` (data poisoning; the update
                  itself is untouched)
``collude``       all adversaries submit one *identical* crafted vector
                  ``g + gamma * z / ||z||`` (fresh ``z`` per round) —
                  defeats distance-based rules that assume outliers are
                  isolated, the stress case for Krum's ``f`` bound
================  ==========================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.types import ClientUpdate
from repro.utils.rng import RngStream

__all__ = [
    "Adversary",
    "SignFlip",
    "Scale",
    "GaussNoise",
    "LabelFlip",
    "Collude",
    "available_adversaries",
    "build_adversary",
    "register_adversary",
]


def adversary_roster(n_clients: int, fraction: float, seed: int) -> Tuple[int, ...]:
    """The sorted client ids acting maliciously for ``(n_clients, fraction,
    seed)`` — a deterministic function of exactly those three values."""
    count = int(fraction * n_clients + 1e-9)
    if count == 0:
        return ()
    rng = RngStream(seed).child("adversary", "roster").generator
    ids = rng.choice(n_clients, size=count, replace=False)
    return tuple(sorted(int(i) for i in ids))


class Adversary:
    """Base adversary: roster bookkeeping plus identity hooks.

    Instances are shipped inside ``ProcessWorkerSpec`` and must stay
    picklable: hold plain numbers, derive generators fresh per call.
    """

    name: str = "base"

    def __init__(self, *, n_clients: int, fraction: float, seed: int) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"adversary fraction must be in (0, 1], got {fraction}")
        self.n_clients = int(n_clients)
        self.fraction = float(fraction)
        self.seed = int(seed)
        self.ids: Tuple[int, ...] = adversary_roster(n_clients, fraction, seed)

    def is_adversary(self, client_id: int) -> bool:
        return client_id in self.ids

    def _rng(self, *path) -> np.random.Generator:
        """Fresh generator keyed by ``(seed, "adversary", name, *path)``."""
        return RngStream(self.seed).child("adversary", self.name, *path).generator

    def poison_clients(self, clients: Sequence, num_classes: int) -> None:
        """Corrupt adversarial clients' datasets in place (default: no-op).

        Called once at engine construction *and* once per worker process
        (``_init_worker`` rebuilds clients from the dataset), so it must be
        a pure function of the client's shard — not of call count.
        """

    def corrupt_update(
        self,
        update: ClientUpdate,
        round_idx: int,
        global_flat: Optional[np.ndarray],
        global_weights: Sequence[np.ndarray],
    ) -> ClientUpdate:
        """Rewrite an adversarial client's update at upload time.

        Only called for clients in the roster.  Default: identity (data
        poisoners train honestly on poisoned shards).
        """
        return update

    # -- shared machinery for update-rewriting attacks ---------------------

    def _rewrite(
        self,
        update: ClientUpdate,
        global_flat: Optional[np.ndarray],
        global_weights: Sequence[np.ndarray],
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> ClientUpdate:
        """Apply ``fn(w_f64, g_f64) -> crafted_f64`` and rebuild the update.

        Computes in float64, casts back to the model dtype, and preserves
        all metadata (sample count, loss, extras, cost counters) so the
        crafted update is indistinguishable from an honest one everywhere
        except its parameter values.  Falls back to the per-layer tree path
        when the update has no flat vector (mixed-dtype models).
        """
        flat = update.flat_vector()
        if flat is not None:
            w = flat.astype(np.float64)
            if global_flat is not None:
                g = global_flat.astype(np.float64)
            else:
                g = np.concatenate(
                    [np.asarray(a, np.float64).ravel() for a in global_weights]
                )
            crafted = fn(w, g).astype(flat.dtype)
            return ClientUpdate.from_flat(
                crafted,
                [tuple(np.shape(a)) for a in update.weights],
                client_id=update.client_id,
                num_samples=update.num_samples,
                train_loss=update.train_loss,
                extras=update.extras,
                flops=update.flops,
                comm_bytes=update.comm_bytes,
            )
        # Tree fallback: per-layer, same arithmetic.
        out: List[np.ndarray] = []
        for w_layer, g_layer in zip(update.weights, global_weights):
            w64 = np.asarray(w_layer, np.float64)
            g64 = np.asarray(g_layer, np.float64)
            out.append(fn(w64, g64).astype(np.asarray(w_layer).dtype))
        return ClientUpdate(
            client_id=update.client_id,
            weights=out,
            num_samples=update.num_samples,
            train_loss=update.train_loss,
            extras=update.extras,
            flops=update.flops,
            comm_bytes=update.comm_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n_clients={self.n_clients}, "
            f"fraction={self.fraction}, seed={self.seed}, ids={self.ids})"
        )


class SignFlip(Adversary):
    """Submit ``g - gamma * (w - g)``: the honest delta reversed (and, for
    ``gamma > 1``, amplified).  At ``gamma = 1`` the plain mean still creeps
    forward when adversaries are a minority; larger ``gamma`` lets a small
    roster stall or reverse FedAvg outright."""

    name = "sign_flip"

    def __init__(self, *, n_clients: int, fraction: float, seed: int, gamma: float = 1.0) -> None:
        super().__init__(n_clients=n_clients, fraction=fraction, seed=seed)
        if gamma <= 0:
            raise ValueError("sign_flip gamma must be positive")
        self.gamma = float(gamma)

    def corrupt_update(self, update, round_idx, global_flat, global_weights):
        return self._rewrite(
            update, global_flat, global_weights,
            lambda w, g: g - self.gamma * (w - g),
        )


class Scale(Adversary):
    """Submit ``g + gamma * (w - g)``: the honest delta boosted by ``gamma``
    (model replacement).  Norm-based defences (clip/screen) are the natural
    counter; coordinate-wise rules also resist it."""

    name = "scale"

    def __init__(self, *, n_clients: int, fraction: float, seed: int, gamma: float = 10.0) -> None:
        super().__init__(n_clients=n_clients, fraction=fraction, seed=seed)
        if gamma <= 0:
            raise ValueError("scale gamma must be positive")
        self.gamma = float(gamma)

    def corrupt_update(self, update, round_idx, global_flat, global_weights):
        return self._rewrite(
            update, global_flat, global_weights,
            lambda w, g: g + self.gamma * (w - g),
        )


class GaussNoise(Adversary):
    """Submit ``w + sigma * z`` with a fresh standard-normal ``z`` per
    client per round, keyed by ``(client_id, round_idx)`` so the draw is
    independent of executor scheduling."""

    name = "gauss_noise"

    def __init__(self, *, n_clients: int, fraction: float, seed: int, sigma: float = 1.0) -> None:
        super().__init__(n_clients=n_clients, fraction=fraction, seed=seed)
        if sigma <= 0:
            raise ValueError("gauss_noise sigma must be positive")
        self.sigma = float(sigma)

    def corrupt_update(self, update, round_idx, global_flat, global_weights):
        rng = self._rng(update.client_id, round_idx)
        return self._rewrite(
            update, global_flat, global_weights,
            lambda w, g: w + self.sigma * rng.standard_normal(w.shape),
        )


class LabelFlip(Adversary):
    """Data poisoning: adversarial clients train honestly on shards whose
    labels are remapped to ``num_classes - 1 - y``.  The update itself is
    untouched — this is the attack that norm screening *cannot* see and
    coordinate-wise rules merely outvote."""

    name = "label_flip"

    def poison_clients(self, clients, num_classes):
        from repro.data.dataset import ArrayDataset

        for client in clients:
            if self.is_adversary(client.id):
                ds = client.dataset
                client.dataset = ArrayDataset(ds.x, (num_classes - 1 - ds.y).astype(ds.y.dtype))


class Collude(Adversary):
    """All adversaries submit one *identical* crafted vector per round:
    ``g + gamma * z / ||z||`` with ``z`` drawn once per round.  A colluding
    cluster of ``f`` identical vectors has zero mutual distance, so
    Krum-style rules stay safe only while ``f`` is within their assumed
    bound — the canonical stress test for ``multi_krum(f)``."""

    name = "collude"

    def __init__(self, *, n_clients: int, fraction: float, seed: int, gamma: float = 1.0) -> None:
        super().__init__(n_clients=n_clients, fraction=fraction, seed=seed)
        if gamma <= 0:
            raise ValueError("collude gamma must be positive")
        self.gamma = float(gamma)

    def corrupt_update(self, update, round_idx, global_flat, global_weights):
        def craft(w: np.ndarray, g: np.ndarray) -> np.ndarray:
            # Keyed by round only: every colluder computes the same vector.
            z = self._rng(round_idx).standard_normal(g.shape)
            norm = float(np.sqrt((z * z).sum()))
            return g + self.gamma * z / max(norm, np.finfo(np.float64).tiny)

        return self._rewrite(update, global_flat, global_weights, craft)


# ---------------------------------------------------------------------------
# Registry (mirrors the aggregator/sampler/executor/mode registries).
# ---------------------------------------------------------------------------

#: factory(n_clients=..., fraction=..., seed=..., **kwargs) -> Adversary
AdversaryFactory = Callable[..., Adversary]

_ADVERSARIES: Dict[str, AdversaryFactory] = {}


def register_adversary(name: str, factory: AdversaryFactory) -> None:
    """Register (or replace) an adversary factory under ``name``."""
    _ADVERSARIES[name.lower()] = factory


def available_adversaries() -> List[str]:
    return sorted(_ADVERSARIES)


def build_adversary(
    name: str, *, n_clients: int, fraction: float, seed: int, **kwargs: Any
) -> Adversary:
    """Instantiate the adversary model registered under ``name``.

    ``kwargs`` are model-specific (``gamma=``, ``sigma=``); an unknown name
    or an argument the model does not accept raises ``ValueError``.
    """
    try:
        factory = _ADVERSARIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown adversary {name!r}; available: {available_adversaries()}"
        ) from None
    try:
        return factory(n_clients=n_clients, fraction=fraction, seed=seed, **kwargs)
    except TypeError as exc:
        raise ValueError(f"bad arguments for adversary {name!r}: {exc}") from None


register_adversary("sign_flip", SignFlip)
register_adversary("scale", Scale)
register_adversary("gauss_noise", GaussNoise)
register_adversary("label_flip", LabelFlip)
register_adversary("collude", Collude)
