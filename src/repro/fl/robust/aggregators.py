"""Byzantine-robust aggregation rules over the stacked ``(K, P)`` matrix.

``Server.apply_updates`` only screens *non-finite* updates: a single
adversarial-but-finite client (a sign-flipped or scaled model) poisons the
weighted mean unchecked.  This module supplies drop-in replacements for that
mean with bounded *breakdown points* — the fraction ``f/K`` of colluding
clients each rule tolerates before an adversary can move the aggregate
arbitrarily:

=====================  =====================================  ==============
rule                   idea                                   breakdown
=====================  =====================================  ==============
``mean``               weighted mean (Eq. 2, the default)     0
``coordinate_median``  per-coordinate median                  < K/2
``trimmed_mean``       drop ``floor(beta*K)`` extremes per    < beta*K
                       coordinate, average the rest
``norm_clip``          rescale update deltas to a norm cap    attenuates
                       (default: the cohort's median norm)    (no screening)
``norm_screen``        drop the ``f`` largest-norm deltas     f
``krum`` /             select the ``m`` vectors closest to    f  (needs
``multi_krum``         their ``K - f - 2`` nearest            K >= f + 3)
                       neighbours, average them
=====================  =====================================  ==============

Every rule consumes the same input as the GEMM hot path — the pooled
``(K, P)`` float64 matrix from :func:`~repro.fl.params.stack_updates` — so a
robust round costs one extra pass over memory the server already touches
(plus one ``K x K`` Gram GEMM for the Krum family).  Mixed-dtype trees take
the same code path: stacking flattens each layer into the float64 row and
:func:`robust_aggregate` casts the reduced vector back per layer.

Rules are *deterministic* (sorts are stable, ties break by row index), so
the repository's byte-identity contract — fixed seed => identical History
across serial/threaded/process executors and sync/semisync/async modes —
extends to robust runs (asserted in ``tests/test_params.py``).

Registry mirrors the sampler/executor/mode registries in
:mod:`repro.api.registry`::

    agg = build_aggregator("trimmed_mean", beta=0.25)
    new_tree, screened_ids = robust_aggregate(agg, updates, global_weights)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.aggregation import weighted_average_flat
from repro.fl.params import MatrixPool, stack_updates
from repro.fl.types import ClientUpdate

__all__ = [
    "RobustAggregator",
    "MeanAggregator",
    "CoordinateMedian",
    "TrimmedMean",
    "NormClip",
    "NormScreen",
    "MultiKrum",
    "available_aggregators",
    "build_aggregator",
    "register_aggregator",
    "robust_aggregate",
]


class RobustAggregator:
    """One aggregation rule over the stacked client matrix.

    Subclasses implement :meth:`reduce`; everything else (stacking,
    screening bookkeeping, tree reshaping) lives in
    :func:`robust_aggregate` so rules stay pure matrix math.
    """

    #: registry name, e.g. "coordinate_median"
    name: str = "base"

    #: Whether the rule needs all K rows at once.  Coordinate order
    #: statistics (median, trimmed mean) and pairwise-distance selection
    #: (Krum) have no streaming formulation, so they always stack the dense
    #: ``(K, P)`` matrix regardless of any aggregation block size — an
    #: ambient block default (the test suite's ``--agg-block-size``) is a
    #: documented no-op for them, while an *explicit* per-experiment
    #: ``agg_block_size`` combined with such a rule is rejected at
    #: spec-build time (see :class:`repro.fl.server.Server`).  Rules that
    #: reduce to a weighted mean set this False and stream.
    requires_full_matrix: bool = True

    def reduce(
        self, mat: np.ndarray, weights: np.ndarray, global_flat: np.ndarray
    ) -> Tuple[np.ndarray, List[int]]:
        """Reduce the ``(K, P)`` float64 matrix to one ``(P,)`` vector.

        ``mat`` is pool scratch and may be modified in place; ``weights``
        are the raw (unnormalized) client sample counts; ``global_flat`` is
        the current global model as float64.  Returns the new flat model and
        the row indices that contributed (screening rules return a strict
        subset — the complement is reported as the round's screened ids).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class MeanAggregator(RobustAggregator):
    """The existing weighted mean (Eq. 2, the pinned row fold) behind the
    registry name ``"mean"`` — zero robustness, kept as the explicit
    baseline leg of the accuracy-under-attack bench."""

    name = "mean"
    requires_full_matrix = False

    def reduce(self, mat, weights, global_flat):
        return weighted_average_flat(mat, weights), list(range(mat.shape[0]))


class CoordinateMedian(RobustAggregator):
    """Coordinate-wise median: breakdown point just under K/2.

    Unweighted by design — a weighted median would let an adversary with a
    large declared sample count recover the very leverage the median
    removes.
    """

    name = "coordinate_median"

    def reduce(self, mat, weights, global_flat):
        return np.median(mat, axis=0), list(range(mat.shape[0]))


class TrimmedMean(RobustAggregator):
    """Coordinate-wise ``beta``-trimmed mean: sort each coordinate, drop the
    ``floor(beta*K)`` smallest and largest entries, average the rest.
    Robust while the adversarial fraction stays below ``beta``."""

    name = "trimmed_mean"

    def __init__(self, beta: float = 0.1) -> None:
        if not 0.0 <= beta < 0.5:
            raise ValueError(f"trimmed_mean needs 0 <= beta < 0.5, got {beta}")
        self.beta = float(beta)

    def reduce(self, mat, weights, global_flat):
        k = mat.shape[0]
        cut = int(self.beta * k)
        if cut == 0:
            return mat.mean(axis=0), list(range(k))
        mat.sort(axis=0, kind="stable")  # scratch: sorting in place is fine
        return mat[cut : k - cut].mean(axis=0), list(range(k))


class NormClip(RobustAggregator):
    """Norm clipping: rescale each client's *delta* from the global model to
    at most ``tau`` before the weighted mean.  ``tau=None`` (default) uses
    the cohort's median delta norm, making the cap self-tuning: a scaled-up
    update is attenuated to honest magnitude instead of dropped."""

    name = "norm_clip"

    def __init__(self, tau: Optional[float] = None) -> None:
        if tau is not None and tau <= 0:
            raise ValueError("norm_clip tau must be positive when set")
        self.tau = tau

    def reduce(self, mat, weights, global_flat):
        mat -= global_flat  # scratch: work on deltas in place
        norms = np.sqrt(np.einsum("kp,kp->k", mat, mat))
        tau = float(np.median(norms)) if self.tau is None else self.tau
        scale = np.minimum(1.0, tau / np.maximum(norms, np.finfo(np.float64).tiny))
        mat *= scale[:, None]
        return global_flat + weighted_average_flat(mat, weights), list(range(mat.shape[0]))


class NormScreen(RobustAggregator):
    """Norm screening: drop the ``f`` clients whose deltas from the global
    model have the largest L2 norm, then take the weighted mean of the
    survivors.  Ties break by row index (stable sort) for determinism."""

    name = "norm_screen"

    def __init__(self, f: int = 1) -> None:
        if f < 1:
            raise ValueError("norm_screen needs f >= 1 (clients to drop)")
        self.f = int(f)

    def reduce(self, mat, weights, global_flat):
        k = mat.shape[0]
        if self.f >= k:
            raise ValueError(
                f"norm_screen(f={self.f}) would drop every one of {k} clients"
            )
        deltas = mat - global_flat
        norms = np.sqrt(np.einsum("kp,kp->k", deltas, deltas))
        kept = sorted(np.argsort(norms, kind="stable")[: k - self.f].tolist())
        return (
            weighted_average_flat(mat[kept], weights[kept]),
            [int(i) for i in kept],
        )


class MultiKrum(RobustAggregator):
    """Krum / multi-Krum selection (Blanchard et al., NeurIPS 2017).

    Each client is scored by the sum of squared distances to its
    ``K - f - 2`` nearest neighbours; the ``m`` lowest-scoring vectors are
    averaged (weighted by sample count).  ``m=1`` is classical Krum — the
    aggregate *is* the single most-central client.  Requires ``K >= f + 3``
    so every score has at least one neighbour; tolerates ``f`` Byzantine
    clients provided they cannot form the majority cluster.  ``m=None``
    defaults to ``K - f`` at reduce time (average every presumed-honest
    client).
    """

    name = "multi_krum"

    def __init__(self, f: int = 1, m: Optional[int] = None) -> None:
        if f < 1:
            raise ValueError("multi_krum needs f >= 1 (faulty clients tolerated)")
        if m is not None and m < 1:
            raise ValueError("multi_krum needs m >= 1 when set")
        self.f = int(f)
        self.m = m

    def reduce(self, mat, weights, global_flat):
        k = mat.shape[0]
        n_neighbors = k - self.f - 2
        if n_neighbors < 1:
            raise ValueError(
                f"multi_krum(f={self.f}) needs at least f + 3 = {self.f + 3} "
                f"clients per round, got {k}"
            )
        m = min(k - self.f, k) if self.m is None else self.m
        if m > k:
            raise ValueError(f"multi_krum(m={m}) exceeds the {k} clients present")
        # Pairwise squared distances via one Gram GEMM: ||xi - xj||^2 =
        # ||xi||^2 + ||xj||^2 - 2 xi.xj.  K x K at K = cohort size.
        gram = mat @ mat.T
        sq = np.diag(gram)
        dist = np.maximum(sq[:, None] + sq[None, :] - 2.0 * gram, 0.0)
        np.fill_diagonal(dist, np.inf)
        dist.sort(axis=1, kind="stable")
        scores = dist[:, :n_neighbors].sum(axis=1)
        kept = sorted(np.argsort(scores, kind="stable")[:m].tolist())
        return (
            weighted_average_flat(mat[kept], weights[kept]),
            [int(i) for i in kept],
        )


def robust_aggregate(
    aggregator: RobustAggregator,
    updates: Sequence[ClientUpdate],
    global_weights: Sequence[np.ndarray],
    global_flat: Optional[np.ndarray] = None,
    pool: Optional[MatrixPool] = None,
) -> Tuple[List[np.ndarray], List[int]]:
    """Run one robust rule over a batch of client updates.

    Stacks the updates into the pooled ``(K, P)`` float64 matrix (flat
    vectors feed rows directly; mixed-dtype trees flatten per layer — the
    tree-path fallback), hands it to ``aggregator.reduce`` together with the
    current global model, and reshapes the reduced vector back onto the
    first update's tree structure.  Returns ``(new_weights, screened_ids)``
    where ``screened_ids`` are the client ids the rule excluded, sorted.
    """
    if not updates:
        raise ValueError("no client updates to aggregate")
    trees = [u.weights for u in updates]
    shapes = [np.shape(a) for a in trees[0]]
    for tree in trees[1:]:
        if len(tree) != len(shapes) or any(
            np.shape(a) != s for a, s in zip(tree, shapes)
        ):
            raise ValueError("tree structure mismatch")
    mat = stack_updates(trees, flats=[u.flat_vector() for u in updates], pool=pool)
    if global_flat is not None:
        g = global_flat.astype(np.float64)
    else:
        g = np.concatenate(
            [np.asarray(w, dtype=np.float64).ravel() for w in global_weights]
        )
    if g.size != mat.shape[1]:
        raise ValueError(
            f"global model has {g.size} parameters, updates have {mat.shape[1]}"
        )
    sample_weights = np.asarray([float(u.num_samples) for u in updates], np.float64)
    new_flat, kept = aggregator.reduce(mat, sample_weights, g)
    kept_set = {int(i) for i in kept}
    screened = sorted(
        updates[i].client_id for i in range(len(updates)) if i not in kept_set
    )
    out: List[np.ndarray] = []
    cursor = 0
    for a in trees[0]:
        a = np.asarray(a)
        out.append(new_flat[cursor : cursor + a.size].reshape(a.shape).astype(a.dtype))
        cursor += a.size
    return out, screened


# ---------------------------------------------------------------------------
# Registry (mirrors the sampler/executor/mode registries).
# ---------------------------------------------------------------------------

#: factory(**kwargs) -> RobustAggregator
AggregatorFactory = Callable[..., RobustAggregator]

_AGGREGATORS: Dict[str, AggregatorFactory] = {}


def register_aggregator(name: str, factory: AggregatorFactory) -> None:
    """Register (or replace) an aggregator factory under ``name``."""
    _AGGREGATORS[name.lower()] = factory


def available_aggregators() -> List[str]:
    return sorted(_AGGREGATORS)


def build_aggregator(name: str, **kwargs: Any) -> RobustAggregator:
    """Instantiate the aggregation rule registered under ``name``.

    ``kwargs`` are rule-specific (``beta=``, ``f=``, ``m=``, ``tau=``) and
    forwarded to the factory; an unknown name or a kwarg the rule does not
    accept raises ``ValueError``.
    """
    try:
        factory = _AGGREGATORS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown aggregator {name!r}; available: {available_aggregators()}"
        ) from None
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad arguments for aggregator {name!r}: {exc}") from None


register_aggregator("mean", MeanAggregator)
register_aggregator("coordinate_median", CoordinateMedian)
register_aggregator("trimmed_mean", TrimmedMean)
register_aggregator("norm_clip", NormClip)
register_aggregator("norm_screen", NormScreen)
register_aggregator("krum", lambda f=1: MultiKrum(f=f, m=1))
register_aggregator("multi_krum", MultiKrum)
