"""Client-level differential privacy for federated updates (extension).

DP-FedAvg-style (McMahan et al., ICLR 2018): each client's model *update*
``w_k - w_g`` is L2-clipped to ``clip_norm`` and Gaussian noise is added
before (or, equivalently under secure aggregation, after) averaging:

``update' = update * min(1, C / ||update||) + N(0, (sigma C)^2 / K)``

* :class:`GaussianMechanism` — clip + noise on a weight tree;
* :class:`PrivacyAccountant` — (epsilon, delta) tracking under basic and
  advanced composition (no moments accountant; documented as the coarser
  bound it is);
* :class:`PrivateAggregationWrapper` — wraps any Strategy so its aggregate
  sees privatized updates, composing with FedAvg/FedProx/FedTrip etc.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import Strategy
from repro.fl.params import as_flat
from repro.fl.types import ClientUpdate, FLConfig
from repro.utils.rng import RngStream
from repro.utils.vectorize import tree_copy, tree_sq_norm, unflatten_like

__all__ = ["GaussianMechanism", "PrivacyAccountant", "PrivateAggregationWrapper"]


class GaussianMechanism:
    """Clip an update to ``clip_norm`` and add Gaussian noise.

    ``noise_multiplier`` is sigma in units of the clip norm (the standard
    parameterization): per-coordinate noise std = ``noise_multiplier *
    clip_norm``.  Noise is drawn from a dedicated stream keyed by
    ``(round, client)`` for reproducibility.

    The mechanism natively operates on one flat vector
    (:meth:`clip_flat` / :meth:`privatize_flat` — two vectorized
    expressions, no per-layer loops); the tree API wraps the flat path,
    falling back to per-layer arithmetic only for mixed-dtype trees.  Both
    produce identical values: a generator draws the same normal stream
    whether requested per layer or in one flat call.
    """

    def __init__(self, clip_norm: float, noise_multiplier: float, seed: int = 0) -> None:
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.clip_norm = float(clip_norm)
        self.noise_multiplier = float(noise_multiplier)
        self._root = RngStream(seed).child("dp")

    # ---- flat fast path --------------------------------------------------
    def clip_flat(self, update: np.ndarray, copy: bool = True) -> np.ndarray:
        """Scale a flat update so its L2 norm is at most ``clip_norm``.

        ``copy=False`` clips in place — for callers that own the vector
        (a fresh flatten or a delta temporary) and want to skip the
        defensive allocation.
        """
        v64 = update.astype(np.float64, copy=False)
        norm = math.sqrt(float(np.dot(v64, v64)))
        out = update.copy() if copy else update
        if norm > self.clip_norm:
            out *= self.clip_norm / norm
        return out

    def privatize_flat(
        self, update: np.ndarray, round_idx: int, client_id: int, copy: bool = True
    ) -> np.ndarray:
        """Clip then add N(0, (sigma C)^2) per coordinate, on the vector."""
        out = self.clip_flat(update, copy=copy)
        if self.noise_multiplier > 0:
            rng = self._root.child(round_idx, client_id).generator
            std = self.noise_multiplier * self.clip_norm
            out += std * rng.standard_normal(out.size).astype(out.dtype)
        return out

    # ---- tree compatibility API ------------------------------------------
    def clip(self, update: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Scale the tree so its global L2 norm is at most ``clip_norm``."""
        flat = as_flat(update)
        if flat is not None:  # as_flat returned fresh memory: clip in place
            return unflatten_like(self.clip_flat(flat, copy=False), update)
        norm = math.sqrt(tree_sq_norm(update))
        out = tree_copy(update)
        if norm > self.clip_norm:
            scale = self.clip_norm / norm
            for arr in out:
                arr *= scale
        return out

    def privatize(
        self, update: Sequence[np.ndarray], round_idx: int, client_id: int
    ) -> List[np.ndarray]:
        """Clip then add N(0, (sigma C)^2) per coordinate."""
        flat = as_flat(update)
        if flat is not None:
            return unflatten_like(
                self.privatize_flat(flat, round_idx, client_id, copy=False), update)
        out = self.clip(update)
        if self.noise_multiplier > 0:
            rng = self._root.child(round_idx, client_id).generator
            std = self.noise_multiplier * self.clip_norm
            for arr in out:
                arr += std * rng.standard_normal(arr.shape).astype(arr.dtype)
        return out


class PrivacyAccountant:
    """(epsilon, delta) budget tracking for the Gaussian mechanism.

    Uses the classical single-release bound
    ``epsilon_step = sqrt(2 ln(1.25/delta)) / sigma`` (valid for sigma >=
    ~1) and composes it across rounds with either basic (linear) or
    advanced (Kairouz et al.) composition.  This is intentionally the
    textbook accountant — coarser than RDP/moments — and the docstring is
    the contract: bounds are *upper* bounds.
    """

    def __init__(self, noise_multiplier: float, delta: float = 1e-5) -> None:
        if noise_multiplier <= 0:
            raise ValueError("accounting requires positive noise")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self.noise_multiplier = float(noise_multiplier)
        self.delta = float(delta)
        self.steps = 0

    @property
    def epsilon_per_step(self) -> float:
        return math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.noise_multiplier

    def record_round(self, n_rounds: int = 1) -> None:
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        self.steps += n_rounds

    def epsilon(self, advanced: bool = True) -> float:
        """Total epsilon after the recorded rounds (delta' = delta overall)."""
        k = self.steps
        if k == 0:
            return 0.0
        eps = self.epsilon_per_step
        if not advanced:
            return k * eps
        # Advanced composition with delta_slack = delta:
        # eps_total = eps sqrt(2k ln(1/delta)) + k eps (e^eps - 1)
        return eps * math.sqrt(2.0 * k * math.log(1.0 / self.delta)) + k * eps * (
            math.expm1(eps)
        )


class PrivateAggregationWrapper(Strategy):
    """Decorate a base strategy with update clipping + noising.

    Client updates arriving at ``aggregate`` are replaced by privatized
    versions ``w_g + privatize(w_k - w_g)``; everything else (client hooks,
    broadcasts, post-aggregation) is forwarded to the base strategy.  The
    per-round privacy cost is tracked in :attr:`accountant`.
    """

    def __init__(
        self,
        base: Strategy,
        clip_norm: float = 1.0,
        noise_multiplier: float = 1.0,
        delta: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self.base = base
        self.name = f"dp({base.name})"
        self.local_optimizer = base.local_optimizer
        self.needs_preamble = base.needs_preamble
        self.mechanism = GaussianMechanism(clip_norm, noise_multiplier, seed=seed)
        self.accountant = (
            PrivacyAccountant(noise_multiplier, delta) if noise_multiplier > 0 else None
        )

    # ---- forwarded hooks -------------------------------------------------
    def server_init(self, global_weights, config: FLConfig) -> Dict[str, Any]:
        return self.base.server_init(global_weights, config)

    def server_broadcast(self, server_state, round_idx):
        return self.base.server_broadcast(server_state, round_idx)

    def server_preamble(self, server_state, preambles, global_weights, round_idx):
        return self.base.server_preamble(server_state, preambles, global_weights, round_idx)

    def client_preamble(self, ctx, full_grad):
        return self.base.client_preamble(ctx, full_grad)

    def init_client_state(self, client_id: int) -> Dict[str, Any]:
        return self.base.init_client_state(client_id)

    def on_round_start(self, ctx) -> None:
        self.base.on_round_start(ctx)

    def local_step(self, ctx, xb, yb) -> float:
        return self.base.local_step(ctx, xb, yb)

    def modify_gradients(self, ctx) -> None:
        self.base.modify_gradients(ctx)

    def on_round_end(self, ctx) -> None:
        self.base.on_round_end(ctx)

    def extra_comm_units(self) -> float:
        return self.base.extra_comm_units()

    def attach_flops_per_iteration(self, n_params, batch_size, fp_flops) -> float:
        return self.base.attach_flops_per_iteration(n_params, batch_size, fp_flops)

    # ---- the privacy boundary ---------------------------------------------
    def aggregate(self, updates: Sequence[ClientUpdate], global_weights, server_state, config):
        round_idx = server_state.get("_dp_round", 0)
        # Flatten the global model once per round; each update is then three
        # vector expressions (delta, privatize, reassemble) instead of
        # 3 x L per-layer loops.
        g_flat = as_flat(global_weights)
        shapes = [np.shape(g) for g in global_weights]
        private_updates = []
        for u in updates:
            u_flat = u.flat_vector()
            if g_flat is not None and u_flat is not None:
                # the delta is a fresh temporary; privatize it in place
                noised = self.mechanism.privatize_flat(
                    u_flat - g_flat, round_idx, u.client_id, copy=False
                )
                noised += g_flat
                private_updates.append(
                    ClientUpdate.from_flat(
                        noised,
                        shapes,
                        client_id=u.client_id,
                        num_samples=u.num_samples,
                        train_loss=u.train_loss,
                        extras=u.extras,
                        flops=u.flops,
                        comm_bytes=u.comm_bytes,
                    )
                )
                continue
            delta = [w - g for w, g in zip(u.weights, global_weights)]
            noised = self.mechanism.privatize(delta, round_idx, u.client_id)
            private_updates.append(
                ClientUpdate(
                    client_id=u.client_id,
                    weights=[g + d for g, d in zip(global_weights, noised)],
                    num_samples=u.num_samples,
                    train_loss=u.train_loss,
                    extras=u.extras,
                    flops=u.flops,
                    comm_bytes=u.comm_bytes,
                )
            )
        server_state["_dp_round"] = round_idx + 1
        if self.accountant is not None:
            self.accountant.record_round()
        return self.base.aggregate(private_updates, global_weights, server_state, config)

    def post_aggregate(self, new_weights, old_weights, updates, server_state, config):
        return self.base.post_aggregate(new_weights, old_weights, updates, server_state, config)

    def describe(self) -> Dict[str, Any]:
        d = self.base.describe()
        d["name"] = self.name
        d["privacy"] = (
            f"clip={self.mechanism.clip_norm}, sigma={self.mechanism.noise_multiplier}"
        )
        return d
