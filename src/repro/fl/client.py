"""Client abstraction and the local-training round routine."""

from __future__ import annotations

import math
from typing import Any, Dict

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.fl.types import ClientUpdate, FLConfig
from repro.models.fedmodel import FedModel
from repro.nn.losses import CrossEntropyLoss
from repro.optim.base import Optimizer
from repro.utils.rng import RngStream

__all__ = ["Client", "run_client_round"]


class Client:
    """One participant: a data shard plus persistent per-strategy state.

    The client object itself is lightweight; models/optimizers are owned by
    the simulation's worker contexts so that shards can be trained in
    parallel without duplicating weights per client.
    """

    def __init__(self, client_id: int, dataset: ArrayDataset, seed: int = 0) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} has an empty shard")
        self.id = int(client_id)
        self.dataset = dataset
        self.state: Dict[str, Any] = {}
        self._rng_root = RngStream(seed).child("client", client_id)

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def round_rng(self, round_idx: int) -> np.random.Generator:
        """Independent generator for this client's round (batch order etc.)."""
        return self._rng_root.child("round", round_idx).generator

    def loader(self, batch_size: int, round_idx: int) -> DataLoader:
        return DataLoader(
            self.dataset,
            batch_size=batch_size,
            rng=self._rng_root.child("batches", round_idx).generator,
            shuffle=True,
        )

    def iterations_per_round(self, config: FLConfig) -> int:
        per_epoch = math.ceil(self.num_samples / config.batch_size)
        return per_epoch * config.local_epochs


def run_client_round(
    client: Client,
    strategy,
    ctx,
) -> ClientUpdate:
    """Execute one client's local training (Algorithm 1 lines 4-9).

    ``ctx`` is a fully prepared :class:`~repro.algorithms.base.ClientRoundContext`
    whose model already holds the global weights.  Returns the client update
    with measured FLOPs and communication charged per the cost model.
    """
    config: FLConfig = ctx.config
    model: FedModel = ctx.model
    model.train()
    ctx.optimizer.reset_state()
    strategy.on_round_start(ctx)

    # Running (count, sum) instead of a per-step list: long local epochs
    # must not accumulate unbounded Python floats just to take a mean.
    loss_sum = 0.0
    n_steps = 0
    for _ in range(config.local_epochs):
        loader = client.loader(config.batch_size, ctx.round_idx)
        for xb, yb in loader:
            loss_sum += strategy.local_step(ctx, xb, yb)
            n_steps += 1
    strategy.on_round_end(ctx)

    n_params = ctx.n_params
    # Base local computation: forward + backward (~2x forward) per sample
    # per epoch — the same convention as the paper's GFLOPs accounting.
    samples_processed = client.num_samples * config.local_epochs
    base_flops = samples_processed * 3.0 * ctx.fp_flops_per_sample
    # Optimizer arithmetic on |w| is negligible but we charge SGDm's 2|w|
    # per iteration for exactness.
    iterations = client.iterations_per_round(config)
    opt_flops = 2.0 * n_params * iterations
    total_flops = base_flops + opt_flops + ctx.extra_flops

    bytes_per_w = 4.0  # float32
    comm = (2.0 + strategy.extra_comm_units()) * n_params * bytes_per_w

    # Snapshot the trained model as one flat vector: on plane-backed
    # workers this is a single memcpy of the weight plane (no concatenate,
    # no per-layer ravel), the update's tree becomes zero-copy views of it,
    # and the server-side hot path (finite check, GEMM aggregation,
    # privacy/compression wrappers) consumes the vector directly.
    flat, shapes = model.get_weights_flat()
    return ClientUpdate.from_flat(
        flat,
        shapes,
        client_id=client.id,
        num_samples=client.num_samples,
        train_loss=loss_sum / n_steps if n_steps else float("nan"),
        extras=dict(ctx.upload_extras),
        flops=total_flops,
        comm_bytes=comm,
    )
