"""Shared FL value types: configuration, client updates, round records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FLConfig", "ClientUpdate", "RoundRecord"]


@dataclass
class FLConfig:
    """Experiment configuration (defaults follow Sec. V-A of the paper).

    The paper's defaults: 100 rounds, batch size 50, 1 local epoch, SGD with
    momentum 0.9 at lr 0.01, 4 clients sampled from 10 each round.
    """

    rounds: int = 100
    n_clients: int = 10
    clients_per_round: int = 4
    batch_size: int = 50
    local_epochs: int = 1
    lr: float = 0.01
    momentum: float = 0.9
    optimizer: str = "sgdm"          # "sgdm" | "sgd" | "adam"
    eval_every: int = 1              # evaluate global model every N rounds
    eval_batch_size: int = 256
    seed: int = 0
    #: stop training once the evaluated test accuracy reaches this value
    #: (percent); enforced by the engine's EarlyStopping callback, which
    #: records the reason on History.stop_reason.  None = run all rounds.
    target_accuracy: Optional[float] = None
    track_costs: bool = True
    #: optional global L2 gradient clipping applied after each strategy's
    #: gradient modification — a stability lever for aggressive mu/xi/lr
    #: combinations (see the Fig. 7 degradation regime); None disables it.
    max_grad_norm: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 1 <= self.clients_per_round <= self.n_clients:
            raise ValueError("need 1 <= clients_per_round <= n_clients")
        if self.batch_size <= 0 or self.local_epochs <= 0:
            raise ValueError("batch_size and local_epochs must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.optimizer not in ("sgdm", "sgd", "adam"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive when set")


@dataclass
class ClientUpdate:
    """What one client sends back to the server after local training.

    ``weights`` (the per-layer tree) remains the compatibility surface every
    strategy reads.  The server-side hot path additionally works on ``flat``
    — one contiguous vector of the same values — which updates built via
    :meth:`from_flat` carry natively (``weights`` are then reshaped *views*
    into it, no copies) and any other update derives lazily through
    :meth:`flat_vector`.  Updates with a flat vector also pickle it instead
    of the per-layer arrays, halving the process-pool result payload.
    """

    client_id: int
    weights: List[np.ndarray]
    num_samples: int
    train_loss: float
    # Extra payloads (e.g. SCAFFOLD control-variate deltas, MimeLite full
    # gradients).  Counted against communication in the cost model.
    extras: Dict[str, Any] = field(default_factory=dict)
    # Local cost bookkeeping for Table V.
    flops: float = 0.0
    comm_bytes: float = 0.0
    #: cached flat view of ``weights``; value-identical by construction and
    #: treated as stale if ``weights`` is mutated in place (nothing in the
    #: round loop does — updates are replaced, never edited).
    flat: Optional[np.ndarray] = field(default=None, repr=False)

    @classmethod
    def from_flat(
        cls,
        flat: np.ndarray,
        shapes: Sequence[Tuple[int, ...]],
        *,
        client_id: int,
        num_samples: int,
        train_loss: float,
        extras: Optional[Dict[str, Any]] = None,
        flops: float = 0.0,
        comm_bytes: float = 0.0,
    ) -> "ClientUpdate":
        """Build an update whose tree is a zero-copy view of ``flat``."""
        return cls(
            client_id=client_id,
            weights=_tree_views(flat, shapes),
            num_samples=num_samples,
            train_loss=train_loss,
            extras=extras if extras is not None else {},
            flops=flops,
            comm_bytes=comm_bytes,
            flat=flat,
        )

    def flat_vector(self) -> Optional[np.ndarray]:
        """The update as one flat vector (cached; ``None`` on mixed dtypes)."""
        if self.flat is None:
            arrays = [np.asarray(w) for w in self.weights]
            if arrays and len({a.dtype for a in arrays}) == 1:
                self.flat = (
                    np.concatenate([a.ravel() for a in arrays])
                    if len(arrays) > 1
                    else arrays[0].reshape(-1).copy()
                )
        return self.flat

    # -- pickling: ship the flat buffer once, not flat + L layer copies ----
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        if self.flat is not None:
            state["weights"] = [tuple(np.shape(w)) for w in self.weights]
            state["_flat_shapes"] = True
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        if state.pop("_flat_shapes", False):
            state = dict(state)
            state["weights"] = _tree_views(state["flat"], state["weights"])
        self.__dict__.update(state)


def _tree_views(flat: np.ndarray, shapes: Sequence[Tuple[int, ...]]) -> List[np.ndarray]:
    """Reshaped per-layer views of one flat vector (no copies)."""
    out: List[np.ndarray] = []
    cursor = 0
    for shape in shapes:
        size = int(np.prod(shape, dtype=np.int64))
        out.append(flat[cursor : cursor + size].reshape(shape))
        cursor += size
    if cursor != flat.size:
        raise ValueError(f"shapes cover {cursor} elements, flat has {flat.size}")
    return out


@dataclass
class RoundRecord:
    """Per-round metrics captured by the simulation.

    ``wall_seconds`` is the *host* time the round took to simulate;
    ``virtual_time_s`` is the *simulated* clock when the round's
    aggregation landed, under the experiment's device/network model
    (``None`` when no model is attached).  ``update_staleness`` holds the
    measured per-aggregated-update staleness — server versions elapsed
    between each update's dispatch and its arrival; always all-zero in the
    synchronous mode, and the quantity the async modes' decayed mixing and
    FedTrip's xi consume.

    Aggregation-health fields: ``dropped_clients`` are the ids the server's
    finite-check shed this round (previously log-only, so a run summary
    could not tell a clean run from one that silently lost clients);
    ``round_skipped`` marks a round where *every* update was bad and the
    global model was kept.  With the robust subsystem active,
    ``screened_clients`` are the ids the robust aggregation rule excluded
    and ``adversary_clients`` labels which of this round's participants sat
    on the adversary roster (``None`` when no adversary is attached —
    distinct from "an adversary attacked but none were sampled", which is
    ``[]``).

    Fault-tolerance fields: ``failed_clients`` are the ids whose task
    failed *terminally* this round (crash/corrupt/timeout/worker-death
    after the retry budget, non-retryable failures immediately);
    ``retried_clients`` records one id per retry dispatch, so a client
    retried twice appears twice.  ``skip_reason`` says why a skipped round
    was skipped (``"quorum"``, ``"no_updates"``, ``"non_finite"``); always
    ``None`` on aggregated rounds.

    ``phase_seconds`` breaks ``wall_seconds`` down by engine phase
    (``sample``/``broadcast``/``preamble``/``local_train``/``aggregate``/
    ``evaluate`` in sync mode; the event-driven modes record the phases
    they have).  Like ``wall_seconds`` it is host time — excluded from
    byte-identity comparisons — and always recorded; the opt-in
    :mod:`repro.obs` tracer adds spans and metrics on top of it.
    """

    round_idx: int
    selected: List[int]
    test_accuracy: Optional[float]
    test_loss: Optional[float]
    mean_train_loss: float
    cumulative_flops: float
    cumulative_comm_bytes: float
    wall_seconds: float
    virtual_time_s: Optional[float] = None
    update_staleness: Optional[List[int]] = None
    dropped_clients: List[int] = field(default_factory=list)
    screened_clients: List[int] = field(default_factory=list)
    adversary_clients: Optional[List[int]] = None
    round_skipped: bool = False
    phase_seconds: Optional[Dict[str, float]] = None
    failed_clients: List[int] = field(default_factory=list)
    retried_clients: List[int] = field(default_factory=list)
    skip_reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round_idx,
            "selected": list(self.selected),
            "test_accuracy": self.test_accuracy,
            "test_loss": self.test_loss,
            "mean_train_loss": self.mean_train_loss,
            "cumulative_flops": self.cumulative_flops,
            "cumulative_comm_bytes": self.cumulative_comm_bytes,
            "wall_seconds": self.wall_seconds,
            "virtual_time_s": self.virtual_time_s,
            "update_staleness": (
                list(self.update_staleness)
                if self.update_staleness is not None else None
            ),
            "dropped_clients": list(self.dropped_clients),
            "screened_clients": list(self.screened_clients),
            "adversary_clients": (
                list(self.adversary_clients)
                if self.adversary_clients is not None else None
            ),
            "round_skipped": self.round_skipped,
            "phase_seconds": (
                dict(self.phase_seconds)
                if self.phase_seconds is not None else None
            ),
            "failed_clients": list(self.failed_clients),
            "retried_clients": list(self.retried_clients),
            "skip_reason": self.skip_reason,
        }
