"""Secure aggregation simulation (Bonawitz et al., CCS 2017, simplified).

The paper's introduction motivates FL with privacy: raw data never leaves
the client.  Secure aggregation strengthens this so the *server* only sees
the sum of client updates, never an individual one.  This module simulates
the pairwise-masking protocol:

* every pair of clients (i < j) derives a shared mask ``m_ij`` from a
  common seed; client i adds ``+m_ij``, client j adds ``-m_ij``;
* each client uploads ``w_k + sum_j s_kj * m_kj`` (masked, individually
  useless);
* the server sums the uploads; all masks cancel exactly, recovering
  ``sum_k w_k``.

The simulation checks the two properties that matter — masked uploads are
(statistically) uninformative, and the aggregate is exact up to float
error — without implementing the key-agreement/dropout-recovery machinery
of the full protocol (out of scope; no adversary model here).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fl.params import as_flat
from repro.utils.rng import RngStream
from repro.utils.vectorize import tree_copy, unflatten_like

__all__ = ["PairwiseMasker", "secure_sum"]


class PairwiseMasker:
    """Derives cancelling pairwise masks for a fixed client cohort.

    Masks are regenerated per round from ``(seed, round, i, j)``, so both
    members of a pair derive identical masks without communication (the
    stand-in for the Diffie-Hellman agreement of the real protocol).

    ``scale`` sets the mask standard deviation; it should dominate the
    update magnitude for the masking to hide anything (asserted in tests,
    not enforced here).
    """

    def __init__(self, seed: int = 0, scale: float = 100.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self._root = RngStream(seed).child("secure-agg")
        self.scale = float(scale)

    def _pair_rng(self, round_idx: int, i: int, j: int) -> np.random.Generator:
        lo, hi = (i, j) if i < j else (j, i)
        return self._root.child(round_idx, lo, hi).generator

    def mask_update(
        self,
        client_id: int,
        cohort: Sequence[int],
        round_idx: int,
        update: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """Return the client's masked upload.

        Flat fast path: one mask draw + one fused axpy per pair on the whole
        parameter vector (a generator yields the same normal stream whether
        drawn per layer or in one flat call, so values match the historical
        per-layer loop exactly); per-layer fallback for mixed-dtype trees.
        """
        if client_id not in cohort:
            raise ValueError(f"client {client_id} not in cohort {list(cohort)}")
        flat = as_flat(update)
        if flat is not None:
            for other in cohort:
                if other == client_id:
                    continue
                rng = self._pair_rng(round_idx, client_id, other)
                sign = 1.0 if client_id < other else -1.0
                flat += (sign * self.scale) * rng.standard_normal(flat.size).astype(flat.dtype)
            return unflatten_like(flat, update)
        masked = tree_copy(update)
        for other in cohort:
            if other == client_id:
                continue
            rng = self._pair_rng(round_idx, client_id, other)
            sign = 1.0 if client_id < other else -1.0
            for arr in masked:
                arr += sign * self.scale * rng.standard_normal(arr.shape).astype(arr.dtype)
        return masked

    def unmask_sum(
        self, masked_uploads: Dict[int, Sequence[np.ndarray]], round_idx: int
    ) -> List[np.ndarray]:
        """Sum the uploads; pairwise masks cancel, no unmasking key needed.

        (Named for symmetry with the real protocol, where dropout recovery
        would reconstruct missing masks here.)
        """
        if not masked_uploads:
            raise ValueError("no uploads")
        uploads = list(masked_uploads.values())
        flats = [as_flat(u) for u in uploads]
        if all(f is not None for f in flats):
            total = flats[0]
            for f in flats[1:]:
                total += f
            return unflatten_like(total, uploads[0])
        it = iter(uploads)
        total = tree_copy(next(it))
        for upload in it:
            for acc, arr in zip(total, upload):
                acc += arr
        return total


def secure_sum(
    updates: Dict[int, Sequence[np.ndarray]],
    round_idx: int = 0,
    seed: int = 0,
    scale: float = 100.0,
) -> Tuple[List[np.ndarray], Dict[int, List[np.ndarray]]]:
    """One-shot helper: mask every client's update and return
    ``(exact_sum, masked_uploads)``.

    The returned sum equals ``sum(updates.values())`` up to float32
    cancellation error (~``scale * sqrt(pairs) * 1e-7`` per element).
    """
    cohort = sorted(updates)
    masker = PairwiseMasker(seed=seed, scale=scale)
    masked = {
        cid: masker.mask_update(cid, cohort, round_idx, upd)
        for cid, upd in updates.items()
    }
    return masker.unmask_sum(masked, round_idx), masked
