"""Deterministic, seeded fault injection for client tasks.

Where :mod:`repro.fl.robust.adversaries` models *malicious values*, this
module models *missing or broken participation*: clients that crash before
uploading, payloads that arrive corrupted, stragglers that blow past the
round deadline, and worker processes that die mid-task.  A
:class:`FaultInjector` is applied inside
:func:`repro.fl.executor.execute_task` — the one code path every backend
shares — so the identical fault lands whether the round ran on the serial,
threaded or process executor and whether the server is sync, semisync or
async (a precondition for the byte-identity contract).

Determinism: every fault decision is a pure function of ``(seed, fault
name, client_id, round_idx, attempt)`` through the named
:class:`~repro.utils.rng.RngStream` tree — never of call order or wall
time.  Keying by *attempt* means a retried task re-draws its fault coin,
so bounded retry actually recovers at sub-certain fault rates while a
replayed run reproduces every failure exactly.  Injectors cross the
process boundary inside ``ProcessWorkerSpec`` and therefore hold only
plain numbers, like adversaries.

Built-in fault kinds (``rate`` is the per-(client, round, attempt) firing
probability):

==================  ======================================================
``crash``           the client never uploads: no training happens, the
                    task fails with kind ``"crash"`` (client state is
                    untouched, so a retry restarts from the same state on
                    every backend)
``crash_mid_train`` same observable outcome, but half the client's usual
                    FLOPs are charged as wasted work on the failure
``corrupt``         the upload arrives mangled: a fabricated payload — a
                    NaN-filled flat vector (``mode="nan"``) or a truncated
                    one (``mode="truncate"``) — rides the failed result so
                    tests and tools can inspect what the wire saw; the
                    engine's failure policy, not the aggregator's finite
                    screen, decides what happens next
``straggler``       the client trains *honestly* but its (virtual-clock)
                    report time is inflated by a seeded delay in
                    ``[min_delay_s, max_delay_s]``; with
                    ``task_timeout_s`` set, delays past the deadline turn
                    into ``"timeout"`` failures whose update is discarded
                    (the trained state is still adopted — it reached the
                    device, not the server)
``worker_death``    the process executing the task dies: on the process
                    backend the worker literally ``os._exit``\\ s (the
                    executor detects the death, lets the pool respawn, and
                    synthesizes the failure); in-process backends
                    synthesize the identical failure directly, keeping
                    histories byte-identical across backends
==================  ======================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.fl.types import ClientUpdate
from repro.utils.rng import RngStream

__all__ = [
    "TaskFailure",
    "FaultInjector",
    "CrashFault",
    "CrashMidTrainFault",
    "CorruptFault",
    "StragglerFault",
    "WorkerDeathFault",
    "available_faults",
    "build_fault",
    "register_fault",
]


@dataclass
class TaskFailure:
    """Why a client task produced no usable update — plain data, picklable.

    ``retryable`` separates transient failures (a crash re-drawn on the
    next attempt may not recur) from deterministic ones (re-training a
    client whose loss diverged to NaN reproduces the NaN bit-for-bit, so
    the retry budget is not spent on it).
    """

    kind: str
    client_id: int
    round_idx: int
    attempt: int = 0
    retryable: bool = True
    detail: str = ""


class FaultInjector:
    """Base injector: the seeded fault coin plus the two backend hooks.

    Subclasses implement at most two behaviours: :meth:`pre_train` (return
    a failed result *instead of* training — crash-style faults) and
    :meth:`delay_s` (extra simulated seconds appended to an honestly
    trained task — straggler-style faults).  Instances ship inside
    ``ProcessWorkerSpec`` and must stay picklable: hold plain numbers,
    derive generators fresh per call.
    """

    name: str = "base"

    def __init__(self, *, rate: float, seed: int) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)

    def _rng(self, *path) -> np.random.Generator:
        """Fresh generator keyed by ``(seed, "fault", name, *path)``."""
        return RngStream(self.seed).child("fault", self.name, *path).generator

    def fires(self, client_id: int, round_idx: int, attempt: int = 0) -> bool:
        """The fault coin for one task attempt — a deterministic function
        of exactly ``(seed, name, client_id, round_idx, attempt)``."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        coin = self._rng(client_id, round_idx, attempt).random()
        return bool(coin < self.rate)

    def _failure(self, task, kind: str, detail: str = "",
                 retryable: bool = True) -> TaskFailure:
        return TaskFailure(
            kind=kind,
            client_id=task.client_id,
            round_idx=task.round_idx,
            attempt=task.attempt,
            retryable=retryable,
            detail=detail,
        )

    def pre_train(self, task, runtime) -> Optional["TaskResultLike"]:
        """Fail the task before any training happens, or return ``None``
        to let training proceed (stragglers).  The returned object is a
        :class:`~repro.fl.executor.TaskResult` with ``failure`` set and
        ``state=None`` — client state is untouched, which is what keeps
        retries byte-identical across in-place (serial) and copy-shipping
        (process) backends."""
        return None

    def delay_s(self, task) -> float:
        """Extra simulated seconds this (fired) task's report takes."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate={self.rate}, seed={self.seed})"


#: duck type only — avoids importing the executor module (cycle).
TaskResultLike = Any


def _failed_result(failure: TaskFailure, update: Optional[ClientUpdate] = None,
                   flops_wasted: float = 0.0):
    from repro.fl.executor import TaskResult

    return TaskResult(update=update, state=None, failure=failure,
                      flops_wasted=flops_wasted)


class CrashFault(FaultInjector):
    """Crash before upload: the device went away and the server never hears
    from it this attempt.  No work is billed (the crash is modelled at
    dispatch time)."""

    name = "crash"

    def pre_train(self, task, runtime):
        return _failed_result(self._failure(task, "crash"))


class CrashMidTrainFault(FaultInjector):
    """Crash halfway through local training: same observable outcome as
    :class:`CrashFault`, but half the client's usual local FLOPs are
    recorded as wasted work (surfaced through the obs layer, never through
    the cost model — a crashed client uploads nothing)."""

    name = "crash_mid_train"

    def pre_train(self, task, runtime):
        client = runtime.clients[task.client_id]
        wasted = 0.5 * (
            client.num_samples * runtime.config.local_epochs
            * 3.0 * runtime.fp_flops
        )
        return _failed_result(
            self._failure(task, "crash_mid_train"), flops_wasted=wasted
        )


class CorruptFault(FaultInjector):
    """The upload arrives mangled.  ``mode="nan"`` fabricates a NaN-filled
    flat vector of the model's true size; ``mode="truncate"`` ships only
    the first half of it.  The corrupted payload rides the failed result
    (inspectable, never aggregated); training is skipped so client state
    stays untouched on every backend."""

    name = "corrupt"

    def __init__(self, *, rate: float, seed: int, mode: str = "nan") -> None:
        super().__init__(rate=rate, seed=seed)
        if mode not in ("nan", "truncate"):
            raise ValueError(f"corrupt mode must be 'nan' or 'truncate', got {mode!r}")
        self.mode = mode

    def _corrupt_payload(self, task, runtime) -> ClientUpdate:
        flat = runtime.global_flat
        if flat is not None:
            n_params = int(flat.size)
            dtype = flat.dtype
        else:  # pragma: no cover - models in this codebase are uniform f32
            n_params = int(sum(np.asarray(w).size for w in runtime.global_weights))
            dtype = np.asarray(runtime.global_weights[0]).dtype
        if self.mode == "truncate":
            payload = np.zeros(max(1, n_params // 2), dtype=dtype)
        else:
            payload = np.full(n_params, np.nan, dtype=dtype)
        client = runtime.clients[task.client_id]
        return ClientUpdate(
            client_id=task.client_id,
            weights=[payload],
            num_samples=client.num_samples,
            train_loss=float("nan"),
            flat=payload,
        )

    def pre_train(self, task, runtime):
        return _failed_result(
            self._failure(task, "corrupt", detail=self.mode),
            update=self._corrupt_payload(task, runtime),
        )


class StragglerFault(FaultInjector):
    """Train honestly, report late: a seeded uniform delay in
    ``[min_delay_s, max_delay_s]`` is appended to the task's simulated
    report time.  On its own this only stretches the virtual clock (and, in
    the event-driven modes, interacts with deadlines/buffers); combined
    with ``task_timeout_s`` it becomes the ``"timeout"`` failure source."""

    name = "straggler"

    def __init__(self, *, rate: float, seed: int,
                 min_delay_s: float = 1.0, max_delay_s: float = 10.0) -> None:
        super().__init__(rate=rate, seed=seed)
        if not 0.0 <= min_delay_s <= max_delay_s:
            raise ValueError(
                f"need 0 <= min_delay_s <= max_delay_s, got "
                f"[{min_delay_s}, {max_delay_s}]"
            )
        self.min_delay_s = float(min_delay_s)
        self.max_delay_s = float(max_delay_s)

    def delay_s(self, task) -> float:
        rng = self._rng("delay", task.client_id, task.round_idx, task.attempt)
        return float(rng.uniform(self.min_delay_s, self.max_delay_s))


class WorkerDeathFault(FaultInjector):
    """The *worker* (not the modelled device) dies mid-task.  In a process
    pool the worker really exits — exercising the executor's dead-worker
    detection and the pool's respawn path; in-process backends synthesize
    the same ``"worker_death"`` failure, so a fixed seed yields the same
    History on every backend."""

    name = "worker_death"

    def pre_train(self, task, runtime):
        if getattr(runtime, "in_pool_worker", False):
            # Actually die.  The parent's ProcessExecutor notices the pid
            # set change, waits out its grace window for unrelated in-flight
            # tasks, and synthesizes this task's failure itself.
            os._exit(1)
        return _failed_result(self._failure(task, "worker_death"))


# ---------------------------------------------------------------------------
# Registry (mirrors the adversary/aggregator/sampler registries).
# ---------------------------------------------------------------------------

#: factory(rate=..., seed=..., **kwargs) -> FaultInjector
FaultFactory = Callable[..., FaultInjector]

_FAULTS: Dict[str, FaultFactory] = {}


def register_fault(name: str, factory: FaultFactory) -> None:
    """Register (or replace) a fault injector factory under ``name``."""
    _FAULTS[name.lower()] = factory


def available_faults() -> List[str]:
    return sorted(_FAULTS)


def build_fault(name: str, *, rate: float, seed: int, **kwargs: Any) -> FaultInjector:
    """Instantiate the fault injector registered under ``name``.

    ``kwargs`` are fault-specific (``mode=``, ``max_delay_s=``); an unknown
    name or an argument the injector does not accept raises ``ValueError``.
    """
    try:
        factory = _FAULTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown fault {name!r}; available: {available_faults()}"
        ) from None
    try:
        return factory(rate=rate, seed=seed, **kwargs)
    except TypeError as exc:
        raise ValueError(f"bad arguments for fault {name!r}: {exc}") from None


register_fault("crash", CrashFault)
register_fault("crash_mid_train", CrashMidTrainFault)
register_fault("corrupt", CorruptFault)
register_fault("straggler", StragglerFault)
register_fault("worker_death", WorkerDeathFault)
