"""Minimal logging facade used across the library.

Wraps :mod:`logging` so that library code never configures the root logger
(an anti-pattern for importable libraries) while examples and benchmarks can
opt into console output with :func:`set_verbosity`.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"
_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    full = _ROOT_NAME if not name else f"{_ROOT_NAME}.{name}"
    logger = logging.getLogger(full)
    logger.addHandler(logging.NullHandler())
    return logger


def set_verbosity(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the ``repro`` logger (idempotent)."""
    global _configured
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
        _configured = True
