"""Wall-clock timers for benchmarks and the simulation round loop."""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict

__all__ = ["Timer", "StageTimer"]


class Timer:
    """A context-manager stopwatch.

    >>> with Timer() as t:
    ...     do_work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


class StageTimer:
    """Accumulates elapsed time per named stage across many iterations.

    Used by :class:`repro.fl.simulation.Simulation` to attribute time to
    client training vs aggregation vs evaluation.
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = defaultdict(float)
        self.counts: Dict[str, int] = defaultdict(int)
        self._starts: Dict[str, float] = {}

    def start(self, stage: str) -> None:
        self._starts[stage] = time.perf_counter()

    def stop(self, stage: str) -> float:
        if stage not in self._starts:
            raise KeyError(f"stage {stage!r} was never started")
        dt = time.perf_counter() - self._starts.pop(stage)
        self.totals[stage] += dt
        self.counts[stage] += 1
        return dt

    def stage(self, name: str):
        """Context manager for one timed stage."""
        timer = self

        class _Stage:
            def __enter__(self_inner):
                timer.start(name)
                return self_inner

            def __exit__(self_inner, *exc):
                timer.stop(name)

        return _Stage()

    def mean(self, stage: str) -> float:
        """Mean duration of one occurrence of ``stage``."""
        n = self.counts.get(stage, 0)
        return self.totals[stage] / n if n else 0.0

    def summary(self) -> Dict[str, float]:
        return dict(self.totals)
