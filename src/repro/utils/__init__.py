"""Shared utilities: seeded RNG management, parameter-vector ops, logging, timing.

These are the lowest-level building blocks of the reproduction; everything in
:mod:`repro.nn`, :mod:`repro.fl` and :mod:`repro.algorithms` builds on the
deterministic RNG streams and the flat-parameter-vector representation defined
here.
"""

from repro.utils.rng import RngStream, spawn_rngs, seed_everything
from repro.utils.vectorize import (
    flatten_arrays,
    unflatten_like,
    zeros_like_flat,
    tree_axpy,
    tree_scale,
    tree_sub,
    tree_add,
    tree_copy,
    tree_dot,
    tree_sq_norm,
)
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.timer import Timer, StageTimer

__all__ = [
    "RngStream",
    "spawn_rngs",
    "seed_everything",
    "flatten_arrays",
    "unflatten_like",
    "zeros_like_flat",
    "tree_axpy",
    "tree_scale",
    "tree_sub",
    "tree_add",
    "tree_copy",
    "tree_dot",
    "tree_sq_norm",
    "get_logger",
    "set_verbosity",
    "Timer",
    "StageTimer",
]
