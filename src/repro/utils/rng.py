"""Deterministic random-number-generator management.

Federated-learning experiments are notoriously sensitive to seeding: client
selection, data partitioning, weight initialisation and batch shuffling each
need an *independent* stream so that, e.g., changing the number of rounds does
not perturb the data partition.  We use :class:`numpy.random.Generator`
instances spawned from named child seeds of one root ``SeedSequence``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["RngStream", "spawn_rngs", "seed_everything"]


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 64-bit integer via blake2b."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngStream:
    """A named tree of independent :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> root = RngStream(seed=0)
    >>> init_rng = root.child("init")
    >>> data_rng = root.child("data")
    >>> client3 = root.child("client", 3)

    Children are derived from ``(seed, name, *indices)`` only, so two
    ``RngStream(0).child("data")`` calls always yield identical streams,
    regardless of what else was drawn in between.
    """

    def __init__(self, seed: int = 0, _path: tuple = ()) -> None:
        self.seed = int(seed)
        self._path = _path
        entropy: List[int] = [self.seed]
        entropy.extend(_name_to_entropy(str(p)) for p in _path)
        self._seed_seq = np.random.SeedSequence(entropy)
        self._generator: np.random.Generator | None = None

    @property
    def generator(self) -> np.random.Generator:
        """The lazily created generator for this node."""
        if self._generator is None:
            self._generator = np.random.default_rng(self._seed_seq)
        return self._generator

    def child(self, *path) -> "RngStream":
        """Derive an independent child stream keyed by ``path``."""
        if not path:
            raise ValueError("child() requires at least one path element")
        return RngStream(self.seed, self._path + tuple(path))

    # Convenience passthroughs ------------------------------------------------
    def integers(self, *args, **kwargs):
        return self.generator.integers(*args, **kwargs)

    def random(self, *args, **kwargs):
        return self.generator.random(*args, **kwargs)

    def normal(self, *args, **kwargs):
        return self.generator.normal(*args, **kwargs)

    def standard_normal(self, *args, **kwargs):
        return self.generator.standard_normal(*args, **kwargs)

    def permutation(self, *args, **kwargs):
        return self.generator.permutation(*args, **kwargs)

    def choice(self, *args, **kwargs):
        return self.generator.choice(*args, **kwargs)

    def dirichlet(self, *args, **kwargs):
        return self.generator.dirichlet(*args, **kwargs)

    def shuffle(self, *args, **kwargs):
        return self.generator.shuffle(*args, **kwargs)

    def uniform(self, *args, **kwargs):
        return self.generator.uniform(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, path={self._path})"


def spawn_rngs(seed: int, names: Iterable[str]) -> Dict[str, np.random.Generator]:
    """Spawn one independent generator per name from a single seed."""
    root = RngStream(seed)
    return {name: root.child(name).generator for name in names}


def seed_everything(seed: int) -> RngStream:
    """Create the root stream for an experiment.

    NumPy's legacy global RNG is also seeded for any third-party code that
    still uses ``np.random.*`` directly; library code in this repo never does.
    """
    np.random.seed(seed % (2**32))
    return RngStream(seed)
