"""Flat-vector and list-of-arrays ("tree") operations over model parameters.

All FL regularizers in this reproduction (FedProx's proximal term, FedTrip's
triplet term, FedDyn's linear correction, SCAFFOLD's control variates, ...)
are *parameter-space* operations.  Representing a model state as either a
single flat ``float64``/``float32`` vector or a list of per-layer arrays makes
those regularizers one or two vectorized NumPy expressions — no Python loops
over individual weights, per the HPC guide's "vectorize everything" idiom.

The "tree" here is simply ``list[np.ndarray]`` in a fixed layer order; it
avoids repeated concatenation when algorithms only need elementwise updates.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "flatten_arrays",
    "flatten_into",
    "unflatten_like",
    "zeros_like_flat",
    "tree_axpy",
    "tree_scale",
    "tree_sub",
    "tree_add",
    "tree_copy",
    "tree_dot",
    "tree_sq_norm",
]


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate a sequence of arrays into one flat 1-D vector."""
    if not arrays:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate([np.ravel(a) for a in arrays])


def flatten_into(out: np.ndarray, arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Write ``arrays`` into a preallocated 1-D vector, casting to its dtype.

    The zero-allocation sibling of :func:`flatten_arrays`: the aggregation
    hot path uses it to fill rows of a round-persistent ``(K, P)`` matrix
    without per-round concatenation temporaries.  Returns ``out``.
    """
    cursor = 0
    for a in arrays:
        a = np.asarray(a)
        out[cursor : cursor + a.size] = a.ravel()
        cursor += a.size
    if cursor != out.size:
        raise ValueError(f"arrays hold {cursor} elements, out holds {out.size}")
    return out


def unflatten_like(flat: np.ndarray, template: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Split ``flat`` back into arrays shaped like ``template``.

    The returned arrays are reshaped *views* into ``flat`` whenever possible,
    avoiding copies (see the guide's "use views, not copies").
    """
    flat = np.asarray(flat)
    total = sum(a.size for a in template)
    if flat.size != total:
        raise ValueError(f"flat vector has {flat.size} elements, template needs {total}")
    out: List[np.ndarray] = []
    offset = 0
    for a in template:
        chunk = flat[offset : offset + a.size]
        out.append(chunk.reshape(a.shape))
        offset += a.size
    return out


def zeros_like_flat(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """A flat zero vector sized to hold every array in ``arrays``."""
    total = sum(a.size for a in arrays)
    dtype = arrays[0].dtype if arrays else np.float32
    return np.zeros(total, dtype=dtype)


# ---------------------------------------------------------------------------
# Tree (list-of-arrays) arithmetic.  These mutate or allocate explicitly and
# never loop over elements — each op is a handful of BLAS/ufunc calls.
# ---------------------------------------------------------------------------

def _check_match(xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> None:
    if len(xs) != len(ys):
        raise ValueError(f"tree length mismatch: {len(xs)} vs {len(ys)}")


def tree_axpy(alpha: float, xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> None:
    """In-place ``ys += alpha * xs`` (BLAS axpy semantics, per layer)."""
    _check_match(xs, ys)
    for x, y in zip(xs, ys):
        y += alpha * x


def tree_scale(alpha: float, xs: Sequence[np.ndarray]) -> None:
    """In-place ``xs *= alpha``."""
    for x in xs:
        x *= alpha


def tree_sub(xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Allocating ``xs - ys``."""
    _check_match(xs, ys)
    return [x - y for x, y in zip(xs, ys)]


def tree_add(xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Allocating ``xs + ys``."""
    _check_match(xs, ys)
    return [x + y for x, y in zip(xs, ys)]


def tree_copy(xs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Deep copy of a parameter tree."""
    return [np.array(x, copy=True) for x in xs]


def tree_dot(xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> float:
    """Inner product over the whole tree."""
    _check_match(xs, ys)
    total = 0.0
    for x, y in zip(xs, ys):
        total += float(np.dot(np.ravel(x), np.ravel(y)))
    return total


def tree_sq_norm(xs: Sequence[np.ndarray]) -> float:
    """Squared L2 norm over the whole tree."""
    total = 0.0
    for x in xs:
        xr = np.ravel(x)
        total += float(np.dot(xr, xr))
    return total
