"""Span exporters for the ``repro.obs`` tracer.

A span is a plain dict (see :mod:`repro.obs.recorder` for the schema); an
exporter is anything with ``export(record: dict)``,
``write_lines(lines)`` (a batch of pre-encoded JSON lines — the recorder
encodes completed spans in bursts to keep per-round overhead down, so
spans land on the exporter at batch boundaries and on recorder close,
not per call) and ``close()``.  Two built-ins:

* :class:`JsonlExporter` — one JSON object per line, append-ordered by
  span *completion* time (children may precede their parent; the
  ``parent`` ids carry the tree).  Thread-safe: the threaded executor
  completes client spans concurrently.
* :class:`ListExporter` — in-memory capture for tests and the profiler.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Any, Dict, List, Optional

__all__ = ["JsonlExporter", "ListExporter"]


def encode_items(record: Dict[str, Any]) -> Optional[str]:
    """``"k":v`` JSON pairs for a flat dict of primitives, or ``None``.

    ``json.dumps`` costs ~5µs per small dict — paid several times per
    round, that alone eats a big slice of the tracing-overhead budget —
    so flat dicts of primitives take this hand-rolled path (~3x faster,
    identical output for the span schema: keys are fixed identifiers,
    never escaped).  Returns ``None`` when a value needs the real encoder
    (nested containers, strings with escapes, non-finite floats).
    """
    parts = []
    for key, value in record.items():
        t = type(value)
        if t is str:
            if '"' in value or "\\" in value:
                return None  # needs real escaping
            parts.append(f'"{key}":"{value}"')
        elif t is int:
            parts.append(f'"{key}":{value}')
        elif t is float:
            if not math.isfinite(value):
                return None  # json.dumps spells these NaN/Infinity
            parts.append(f'"{key}":{value!r}')
        elif value is None:
            parts.append(f'"{key}":null')
        elif value is True:
            parts.append(f'"{key}":true')
        elif value is False:
            parts.append(f'"{key}":false')
        else:
            return None  # nested value: not a flat span
    return ",".join(parts)


def _encode_line(record: Dict[str, Any]) -> str:
    """One JSON line for a span dict (fast path via :func:`encode_items`)."""
    inner = encode_items(record)
    if inner is None:
        return json.dumps(record, separators=(",", ":"))
    return "{" + inner + "}"


class ListExporter:
    """Collect span records in memory (tests, ad-hoc inspection)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def export(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)

    def export_line(self, line: str) -> None:
        """Accept a pre-encoded span line."""
        self.export(json.loads(line))

    def write_lines(self, lines: List[str]) -> None:
        for line in lines:
            self.export_line(line)

    def close(self) -> None:
        pass


class JsonlExporter:
    """Write span records as JSON Lines to ``path`` (parents auto-created).

    The recorder batches spans and lands them through :meth:`write_lines`
    (one write call per batch); :meth:`export` / :meth:`export_line` write
    single records for direct use.

    Crash-safe: lines stream into a ``*.tmp`` sibling and :meth:`close`
    publishes it with fsync + ``os.replace`` (the same primitive as
    :func:`repro.io.persistence.atomic_write_bytes`).  A process killed
    mid-write leaves only the ``.tmp`` — the trace path itself is either
    absent or a complete, fully-flushed trace, never torn.
    """

    def __init__(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.path = path
        self._tmp = path + ".tmp"
        self._fh: Optional[Any] = open(self._tmp, "w")
        self._lock = threading.Lock()

    def export(self, record: Dict[str, Any]) -> None:
        self.export_line(_encode_line(record))

    def export_line(self, line: str) -> None:
        """Write one pre-encoded span line."""
        self.write_lines([line])

    def write_lines(self, lines: List[str]) -> None:
        """Write a batch of pre-encoded span lines (the recorder's path)."""
        if not lines:
            return
        with self._lock:
            if self._fh is None:  # pragma: no cover - write after close
                raise ValueError(f"exporter for {self.path} is closed")
            self._fh.write("\n".join(lines) + "\n")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
                self._fh = None
                os.replace(self._tmp, self.path)
