"""The run recorder: nested spans + the metrics registry, engine-facing.

One :class:`Recorder` instance accompanies one engine run.  The engine (and
its executors, through ``TaskRuntime.recorder``) drive it through a small
imperative surface:

* ``begin_round(idx)`` / ``end_round(record)`` — the outermost span, one
  per :class:`~repro.fl.types.RoundRecord`;
* ``begin_phase(name)`` / ``end_phase(dur_s, **attrs)`` — one span per
  engine phase (sample/broadcast/preamble/local_train/aggregate/evaluate),
  parented under the current round;
* ``client_task(...)`` — one span per executed client task, parented under
  the current phase, called from :func:`~repro.fl.executor.execute_task`
  (the choke point every backend shares);
* ``absorb(payload)`` — fold a process-pool worker shard
  (:class:`WorkerShardRecorder` output that pickled home on a
  :class:`~repro.fl.executor.TaskResult`) into this recorder.  The engine
  absorbs in task order, so merged metrics are deterministic.

Span records are plain dicts::

    {"span": 7, "parent": 3, "kind": "client_task", "name": "client",
     "round": 2, "client": 5, "t_start": 0.41, "dur_s": 0.013,
     "n_samples": 120, "flops": 3.1e8, "bytes_up": 35496}

``t_start`` is seconds since the recorder was created (worker-shard spans
carry their worker's origin and are marked ``"shard": true``); event-driven
engines attach the virtual clock as ``virtual_s`` attrs.  Exported via
:mod:`repro.obs.trace`.

**The disabled path is the module-level** :data:`NULL_RECORDER` **—
every method a no-op and ``enabled`` false, so hot-path call sites guard
with one attribute read and allocate nothing.**  Determinism contract:
nothing in this module touches RNG state or reorders reductions; enabling
tracing must (and does — see the trace-on/off grid test) leave histories
byte-identical.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import JsonlExporter, _encode_line

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "WorkerShardRecorder",
    "payload_nbytes",
]

#: bucket bounds for cohort-size and staleness histograms (counts).
COHORT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
STALENESS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def payload_nbytes(payload: Mapping[str, Any]) -> int:
    """Bytes of ndarray content in a server broadcast payload dict."""
    total = 0
    for value in payload.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, (list, tuple)):
            total += sum(v.nbytes for v in value if isinstance(v, np.ndarray))
    return int(total)


def _record_task_metrics(metrics: MetricsRegistry, dur_s: float, n_samples: int,
                         flops: float, bytes_up: int) -> None:
    """The per-client-task instrument updates, shared by the engine-side
    recorder and the worker shard so both paths count identically."""
    metrics.counter("fl_client_tasks_total", "client tasks executed").inc()
    metrics.counter("fl_train_samples_total", "local training samples consumed").inc(n_samples)
    metrics.counter("fl_client_flops_total", "client training FLOPs").inc(flops)
    metrics.counter("fl_bytes_uploaded_total",
                    "update bytes uploaded (flat weights + extras)").inc(bytes_up)
    metrics.histogram("fl_client_task_seconds",
                      "wall seconds per client task").observe(dur_s)


class NullRecorder:
    """The disabled path: every hook a no-op, ``enabled`` false.

    Call sites on the hot path guard with ``if recorder.enabled:`` so the
    disabled run allocates nothing — no span dicts, no kwargs, no metric
    objects (verified by the overhead benchmark).
    """

    enabled = False
    metrics: Optional[MetricsRegistry] = None
    exporter = None
    __slots__ = ()

    def begin_round(self, round_idx: int) -> None:
        pass

    def begin_phase(self, name: str) -> None:
        pass

    def end_phase(self, dur_s: float, **attrs) -> None:
        pass

    def client_task(self, **attrs) -> None:
        pass

    def absorb(self, payload: Mapping[str, Any]) -> None:
        pass

    def end_round(self, record) -> None:
        pass

    def close(self) -> None:
        pass


#: the shared disabled recorder — engines and runtimes default to this.
NULL_RECORDER = NullRecorder()


class Recorder:
    """Engine-side spans + metrics for one run (see module docstring)."""

    enabled = True

    def __init__(
        self,
        exporter=None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_path: Optional[str] = None,
    ) -> None:
        self.exporter = exporter
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics_path = metrics_path
        self._seq = itertools.count(1)
        self._origin = time.perf_counter()
        self._round_id: Optional[int] = None
        self._round_idx: Optional[int] = None
        self._round_t0 = 0.0
        self._phase_id: Optional[int] = None
        self._phase: Optional[str] = None
        self._phase_t0 = 0.0
        self._wall_total = 0.0
        self._closed = False
        # Cached per-round instrument handles: end_round fires ~a dozen
        # instrument updates every round, and paying the registry's
        # get-or-create (name render + lock + dict probe) for each blows
        # the tracing-overhead budget.  Rebuilt when the registry's
        # generation moves (drain() detaches live instruments).
        self._round_instruments: Optional[Dict[str, Any]] = None
        self._cache_generation = -1
        # Completed spans wait here and JSON-encode in bursts (at the end
        # of a round once the batch is large enough, and on close): after
        # the round's real work has churned the caches, per-span encoding
        # pays a cold-miss tax that batch encoding amortizes away.  A
        # deque because appends and poplefts are GIL-atomic — the threaded
        # executor completes client spans concurrently with no lock.
        self._pending: deque = deque()
        # Downlink bytes accumulate in a plain attribute and fold into the
        # counter in end_round, where the instrument cache is already hot.
        self._bcast_pending = 0.0

    @classmethod
    def create(cls, trace_path: Optional[str] = None,
               metrics_path: Optional[str] = None) -> "Recorder":
        """The spec/CLI entry point: a JSONL tracer when ``trace_path`` is
        set, metrics exposition written to ``metrics_path`` on close."""
        exporter = JsonlExporter(trace_path) if trace_path else None
        return cls(exporter=exporter, metrics_path=metrics_path)

    # -- span plumbing -------------------------------------------------------
    def _next_id(self) -> int:
        # itertools.count.__next__ is atomic under the GIL — no lock needed
        # for the threaded executor's concurrent client spans.
        return next(self._seq)

    def _emit(self, record: Dict[str, Any]) -> None:
        if self.exporter is not None:
            self._pending.append(record)

    def _flush_spans(self) -> None:
        """Encode and write every pending span (ordered by completion)."""
        if self.exporter is None or not self._pending:
            return
        spans: List[Dict[str, Any]] = []
        try:
            while True:
                spans.append(self._pending.popleft())
        except IndexError:
            pass
        self.exporter.write_lines([_encode_line(s) for s in spans])

    def begin_round(self, round_idx: int) -> None:
        self._round_id = self._next_id()
        self._round_idx = round_idx
        self._round_t0 = time.perf_counter()

    def begin_phase(self, name: str) -> None:
        self._phase_id = self._next_id()
        self._phase = name
        self._phase_t0 = time.perf_counter()

    def end_phase(self, dur_s: float, **attrs) -> None:
        if self.exporter is not None:
            span: Dict[str, Any] = {
                "span": self._phase_id,
                "parent": self._round_id,
                "kind": "phase",
                "name": self._phase,
                "round": self._round_idx,
                "t_start": self._phase_t0 - self._origin,
                "dur_s": dur_s,
            }
            if attrs:
                span.update(attrs)
            self._pending.append(span)
        self._phase_id = None
        self._phase = None

    def client_task(self, *, client_id: int, round_idx: int, dur_s: float,
                    n_samples: int, flops: float, bytes_up: int,
                    staleness: Optional[float] = None) -> None:
        _record_task_metrics(self.metrics, dur_s, n_samples, flops, bytes_up)
        if self.exporter is None:
            return
        span: Dict[str, Any] = {
            "span": self._next_id(),
            "parent": self._phase_id if self._phase_id is not None else self._round_id,
            "kind": "client_task",
            "name": "client",
            "round": round_idx,
            "client": client_id,
            "t_start": time.perf_counter() - dur_s - self._origin,
            "dur_s": dur_s,
            "n_samples": n_samples,
            "flops": flops,
            "bytes_up": bytes_up,
        }
        if staleness is not None:
            span["staleness"] = staleness
        self._emit(span)

    def broadcast_bytes(self, model_bytes: int, extra_bytes: int, n_clients: int) -> None:
        """Account one downlink broadcast: model + payload bytes to each of
        ``n_clients`` (the process backend's shm copy ships the same bytes
        once — we count the logical per-client downlink, matching uplink)."""
        self._bcast_pending += float(model_bytes + extra_bytes) * n_clients

    def absorb(self, payload: Mapping[str, Any]) -> None:
        """Fold a worker shard home: re-parent its spans under the current
        phase (ids are assigned here, at absorb time, so span ids stay
        sequential and deterministic in task order) and merge its metrics."""
        for span in payload.get("spans", ()):
            span = dict(span)
            span["span"] = self._next_id()
            span["parent"] = (
                self._phase_id if self._phase_id is not None else self._round_id
            )
            self._emit(span)
        metrics = payload.get("metrics")
        if metrics:
            self.metrics.merge(metrics)

    def _instruments(self) -> Dict[str, Any]:
        """The cached per-round instrument handles (see ``__init__``)."""
        m = self.metrics
        if self._round_instruments is None or self._cache_generation != m.generation:
            self._cache_generation = m.generation
            self._round_instruments = {
                "rounds": m.counter("fl_rounds_total", "rounds completed"),
                "evals": m.counter("fl_evaluations_total",
                                   "rounds with a global evaluation"),
                "aggregated": m.counter("fl_updates_aggregated_total",
                                        "client updates aggregated"),
                "cohort": m.histogram("fl_cohort_size",
                                      "aggregated cohort size per round",
                                      buckets=COHORT_BUCKETS),
                "round_s": m.histogram("fl_round_seconds", "wall seconds per round"),
                "comm": m.gauge("fl_cumulative_comm_bytes",
                                "cost-model communication bytes (Table V accounting)"),
                "bcast": m.counter("fl_bytes_broadcast_total",
                                   "global model + payload bytes broadcast to clients"),
                "phase_s": {},  # phase name -> labeled counter, filled lazily
            }
        return self._round_instruments

    def end_round(self, record) -> None:
        """Round bookkeeping from the freshly built RoundRecord: the round
        span plus every per-round instrument."""
        m = self.metrics
        i = self._instruments()
        i["rounds"].inc()
        if record.test_accuracy is not None:
            i["evals"].inc()
        if record.round_skipped:
            m.counter("fl_rounds_skipped_total",
                      "rounds abandoned (non-finite updates or quorum not met)").inc()
        i["aggregated"].inc(len(record.selected))
        i["cohort"].observe(len(record.selected))
        i["round_s"].observe(record.wall_seconds)
        if record.update_staleness:
            stale = m.histogram("fl_update_staleness",
                                "measured staleness per aggregated update",
                                buckets=STALENESS_BUCKETS)
            for s in record.update_staleness:
                stale.observe(s)
        if record.dropped_clients:
            m.counter("fl_clients_dropped_total",
                      "clients shed by the finite check").inc(len(record.dropped_clients))
        if record.failed_clients:
            m.counter("fl_clients_failed_total",
                      "clients whose task failed terminally (fault policy)").inc(
                len(record.failed_clients))
        if record.retried_clients:
            m.counter("fl_clients_retried_total",
                      "client task retry dispatches (fault policy)").inc(
                len(record.retried_clients))
            m.histogram("fl_task_retries_per_round",
                        "retry dispatches per round").observe(
                len(record.retried_clients))
        if record.screened_clients:
            m.counter("fl_clients_screened_total",
                      "clients excluded by a robust rule").inc(len(record.screened_clients))
        if record.adversary_clients:
            m.counter("fl_adversary_updates_total",
                      "aggregating cohort members on the adversary roster").inc(
                len(record.adversary_clients))
        if record.phase_seconds:
            phase_counters = i["phase_s"]
            for phase, seconds in record.phase_seconds.items():
                counter = phase_counters.get(phase)
                if counter is None:
                    counter = phase_counters[phase] = m.counter(
                        "fl_phase_seconds_total",
                        "cumulative wall seconds per phase",
                        labels={"phase": phase})
                counter.inc(seconds)
        i["comm"].set(record.cumulative_comm_bytes)
        if record.virtual_time_s is not None:
            m.gauge("fl_virtual_time_s", "simulated clock at last aggregation").set(
                record.virtual_time_s)
        if self._bcast_pending:
            i["bcast"].inc(self._bcast_pending)
            self._bcast_pending = 0.0
        self._wall_total += record.wall_seconds
        if self.exporter is not None:
            self._pending.append({
                "span": self._round_id,
                "parent": None,
                "kind": "round",
                "name": "round",
                "round": record.round_idx,
                "t_start": self._round_t0 - self._origin,
                "dur_s": record.wall_seconds,
                "cohort": len(record.selected),
                "virtual_s": record.virtual_time_s,
                "acc": record.test_accuracy,
            })
            if len(self._pending) >= 64:
                self._flush_spans()
        self._round_id = None
        self._round_idx = None

    def summary_table(self) -> str:
        return self.metrics.summary_table()

    def close(self) -> None:
        """Finalize derived gauges, flush the tracer, write the metrics
        exposition file (idempotent; the engine calls this from close())."""
        if self._closed:
            return
        self._closed = True
        self._flush_spans()
        if self._bcast_pending:  # broadcast with no end_round after it
            self._instruments()["bcast"].inc(self._bcast_pending)
            self._bcast_pending = 0.0
        rounds = self.metrics.get("fl_rounds_total")
        if rounds is not None and self._wall_total > 0:
            self.metrics.gauge("fl_rounds_per_sec",
                               "completed rounds per wall second").set(
                rounds.value / self._wall_total)
        if self.exporter is not None:
            self.exporter.close()
        if self.metrics_path:
            # Lazy import: repro.obs must stay importable without repro.io.
            from repro.io.persistence import atomic_write_bytes

            table = self.metrics.summary_table()
            parts = [self.metrics.prometheus_text(),
                     "\n# ---- end-of-run summary ----\n"]
            parts += [f"# {line}\n" for line in table.splitlines()]
            atomic_write_bytes(self.metrics_path, "".join(parts).encode("utf-8"))


class WorkerShardRecorder(NullRecorder):
    """The per-process-worker shard: counts tasks locally, pickles home.

    Lives in a pool worker's ``TaskRuntime.recorder``.  It has no exporter
    and no round/phase state — workers only see client tasks.  After each
    task :func:`~repro.fl.process_executor._run_task` calls :meth:`drain`
    and attaches the plain-dict payload to the result; the engine absorbs
    it in task order (deterministic merge at round end).
    """

    enabled = True
    __slots__ = ("metrics", "_spans", "_with_spans", "_origin")

    def __init__(self, with_spans: bool = False) -> None:
        self.metrics = MetricsRegistry()
        self._spans: List[Dict[str, Any]] = []
        self._with_spans = with_spans
        self._origin = time.perf_counter()

    def client_task(self, *, client_id: int, round_idx: int, dur_s: float,
                    n_samples: int, flops: float, bytes_up: int,
                    staleness: Optional[float] = None) -> None:
        _record_task_metrics(self.metrics, dur_s, n_samples, flops, bytes_up)
        if not self._with_spans:
            return
        span: Dict[str, Any] = {
            "kind": "client_task",
            "name": "client",
            "round": round_idx,
            "client": client_id,
            "t_start": time.perf_counter() - dur_s - self._origin,
            "dur_s": dur_s,
            "n_samples": n_samples,
            "flops": flops,
            "bytes_up": bytes_up,
            "shard": True,
        }
        if staleness is not None:
            span["staleness"] = staleness
        self._spans.append(span)

    def drain(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"metrics": self.metrics.drain()}
        if self._spans:
            out["spans"] = self._spans
            self._spans = []
        return out
