"""Counters, gauges, histograms and the mergeable registry behind ``repro.obs``.

Three instrument kinds, Prometheus-flavoured:

* :class:`Counter` — monotonically increasing float (bytes uploaded, rounds
  run); merge = sum.
* :class:`Gauge` — last-written value (arena heap bytes, rounds/sec);
  merge = last write wins.
* :class:`Histogram` — fixed upper-bound buckets plus count/sum/min/max
  (client task seconds, cohort size, staleness); merge = element-wise sum
  with min/max combined.  Bounds are part of the metric's identity: merging
  shards with different bounds raises.

A :class:`MetricsRegistry` is the process-local (or worker-shard) home for
instruments, keyed by name — get-or-create via :meth:`counter` /
:meth:`gauge` / :meth:`histogram`, thread-safe for the threaded executor's
concurrent task path.  Shards travel as the plain dict :meth:`drain`
returns (picklable by construction) and fold into the engine's registry via
:meth:`merge`, so process-pool metrics land deterministically in task
order.  Output formats: :meth:`prometheus_text` (text exposition) and
:meth:`summary_table` (the end-of-run table).

Labels ride inside the metric *name* (``fl_phase_seconds_total{phase="sample"}``
via :func:`label_suffix`) — counters and gauges only; histograms expand to
``_bucket``/``_sum``/``_count`` sample families and stay unlabelled.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "label_suffix",
    "DEFAULT_SECONDS_BUCKETS",
]

#: default histogram bounds, sized for sub-millisecond tasks up to
#: minute-scale rounds (seconds).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def label_suffix(labels: Mapping[str, Any]) -> str:
    """Render labels as the ``{k="v",...}`` suffix carried in a metric name."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing float."""

    kind = "counter"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "", lock: Optional[threading.RLock] = None) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "help": self.help, "value": self.value}

    def merge(self, payload: Mapping[str, Any]) -> None:
        with self._lock:
            self.value += float(payload["value"])


class Gauge:
    """A value that can go up and down; reads as the last write."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "", lock: Optional[threading.RLock] = None) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "help": self.help, "value": self.value}

    def merge(self, payload: Mapping[str, Any]) -> None:
        self.set(float(payload["value"]))


class Histogram:
    """Fixed-bound bucket histogram with count/sum/min/max."""

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "buckets", "count", "sum", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_SECONDS_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bucket bounds must be sorted")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.buckets: List[int] = [0] * (len(bounds) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.buckets[idx] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "help": self.help,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, payload: Mapping[str, Any]) -> None:
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name}: cannot merge shard with bounds "
                f"{payload['bounds']} into {list(self.bounds)}"
            )
        with self._lock:
            for i, n in enumerate(payload["buckets"]):
                self.buckets[i] += int(n)
            self.count += int(payload["count"])
            self.sum += float(payload["sum"])
            for key, pick in (("min", min), ("max", max)):
                other = payload.get(key)
                if other is None:
                    continue
                mine = getattr(self, key)
                setattr(self, key, other if mine is None else pick(mine, other))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named instruments with get-or-create access, shard merge and export."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Any] = {}
        #: bumped whenever instruments are detached (:meth:`drain`), so
        #: holders of cached instrument handles know to re-resolve them.
        self.generation = 0

    # -- get-or-create ------------------------------------------------------
    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help, lock=self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, Any]] = None) -> Counter:
        return self._get(Counter, name + label_suffix(labels or {}), help)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, Any]] = None) -> Gauge:
        return self._get(Gauge, name + label_suffix(labels or {}), help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    # -- shard plumbing -----------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data snapshot of every instrument (picklable, JSON-ready)."""
        with self._lock:
            return {name: m.snapshot() for name, m in self._metrics.items()}

    def drain(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot and reset — how a worker shard pickles home per task."""
        with self._lock:
            out = self.to_dict()
            self._metrics.clear()
            self.generation += 1
            return out

    def merge(self, payload: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a :meth:`to_dict`/:meth:`drain` snapshot into this registry,
        creating instruments that do not exist here yet."""
        for name, snap in payload.items():
            kind = snap["type"]
            cls = _KINDS.get(kind)
            if cls is None:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            kwargs = {"buckets": snap["bounds"]} if kind == "histogram" else {}
            self._get(cls, name, snap.get("help", ""), **kwargs).merge(snap)

    # -- output -------------------------------------------------------------
    def prometheus_text(self) -> str:
        """Prometheus text exposition (one ``# TYPE`` block per metric)."""
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            base = m.name.split("{", 1)[0]
            if m.help:
                lines.append(f"# HELP {base} {m.help}")
            lines.append(f"# TYPE {base} {m.kind}")
            if isinstance(m, Histogram):
                cumulative = 0
                for bound, n in zip(m.bounds, m.buckets[:-1]):
                    cumulative += n
                    lines.append(f'{m.name}_bucket{{le="{bound:g}"}} {cumulative}')
                lines.append(f'{m.name}_bucket{{le="+Inf"}} {m.count}')
                lines.append(f"{m.name}_sum {m.sum:g}")
                lines.append(f"{m.name}_count {m.count}")
            else:
                lines.append(f"{m.name} {m.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def summary_table(self) -> str:
        """Human-readable end-of-run table, one instrument per row."""
        rows: List[Tuple[str, str, str]] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            if isinstance(m, Histogram):
                if m.count:
                    detail = (f"count={m.count} mean={m.mean():.6g} "
                              f"min={m.min:.6g} max={m.max:.6g}")
                else:
                    detail = "count=0"
            else:
                detail = f"{m.value:g}"
            rows.append((m.name, m.kind, detail))
        if not rows:
            return "(no metrics recorded)"
        w_name = max(len(r[0]) for r in rows)
        w_kind = max(len(r[1]) for r in rows)
        header = f"{'metric'.ljust(w_name)}  {'kind'.ljust(w_kind)}  value"
        sep = "-" * len(header)
        body = [f"{n.ljust(w_name)}  {k.ljust(w_kind)}  {d}" for n, k, d in rows]
        return "\n".join([header, sep] + body)
