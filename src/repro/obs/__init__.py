"""``repro.obs`` — span tracing + metrics for the federation stack.

Two instruments behind one :class:`~repro.obs.recorder.Recorder`:

* **spans** (:mod:`repro.obs.trace`): nested round → phase → per-client
  task records with wall time, virtual-clock time and payload byte counts,
  exported as JSONL;
* **metrics** (:mod:`repro.obs.metrics`): counters/gauges/histograms with
  process-worker shards that pickle home and merge at round end,
  Prometheus text exposition and an end-of-run summary table.

Enabled per run through ``ExperimentSpec.trace`` / ``metrics_out`` (CLI:
``--trace`` / ``--metrics-out``).  The disabled path is the shared
:data:`NULL_RECORDER` no-op — zero allocations on the hot path — and
enabling tracing never touches RNG or reduction order, so histories stay
byte-identical with tracing on or off.  See ``docs/observability.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_suffix,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    WorkerShardRecorder,
    payload_nbytes,
)
from repro.obs.trace import JsonlExporter, ListExporter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "label_suffix",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "WorkerShardRecorder",
    "payload_nbytes",
    "JsonlExporter",
    "ListExporter",
]
