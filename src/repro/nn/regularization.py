"""Dropout and batch normalization."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Dropout", "BatchNorm1d", "BatchNorm2d"]


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    An explicit generator may be provided for reproducibility; otherwise a
    default one is created (sufficient for tests).
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = float(p)
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        self._mask = mask
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        dx = dout * self._mask
        self._mask = None
        return dx


class _BatchNormBase(Module):
    """Shared machinery for 1-D and 2-D batch norm."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32), "gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32), "beta")
        # Running statistics are state, not parameters: they are excluded from
        # parameter traversal (plain arrays) but still ride along in FL weight
        # exchange via state_dict-style helpers if needed.
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache = None

    def _axes(self, x: np.ndarray) -> Tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: np.ndarray) -> Tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._axes(x)
        bshape = self._shape(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(bshape)) * inv_std.reshape(bshape)
        out = self.gamma.data.reshape(bshape) * x_hat + self.beta.data.reshape(bshape)
        if self.training:
            self._cache = (x_hat, inv_std, axes, bshape)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a cached training forward")
        x_hat, inv_std, axes, bshape = self._cache
        m = dout.size / self.num_features
        self.gamma.grad += (dout * x_hat).sum(axis=axes)
        self.beta.grad += dout.sum(axis=axes)
        g = self.gamma.data.reshape(bshape)
        dxhat = dout * g
        dx = (
            dxhat
            - dxhat.mean(axis=axes, keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
        ) * inv_std.reshape(bshape)
        # note: mean over axes uses m elements per feature; keepdims broadcast
        self._cache = None
        return dx

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        return 4 * int(np.prod(input_shape))


class BatchNorm1d(_BatchNormBase):
    """Batch norm over ``(N, F)`` activations."""

    def _axes(self, x: np.ndarray) -> Tuple[int, ...]:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (n, f), got {x.shape}")
        return (0,)

    def _shape(self, x: np.ndarray) -> Tuple[int, ...]:
        return (1, self.num_features)


class BatchNorm2d(_BatchNormBase):
    """Batch norm over ``(N, C, H, W)`` activations, per channel."""

    def _axes(self, x: np.ndarray) -> Tuple[int, ...]:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (n, c, h, w), got {x.shape}")
        return (0, 2, 3)

    def _shape(self, x: np.ndarray) -> Tuple[int, ...]:
        return (1, self.num_features, 1, 1)
