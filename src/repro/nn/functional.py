"""Stateless numerical kernels shared by layers and losses.

Everything here is a pure function on NumPy arrays, fully vectorized; the
im2col/col2im pair is the workhorse that turns convolution into one large
GEMM (the standard CPU strategy — one big BLAS call instead of nested Python
loops, per the HPC optimization guide).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "cosine_similarity",
    "conv_output_size",
    "im2col",
    "col2im",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """One-hot encode integer ``labels`` into shape ``(n, num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label out of range for one_hot")
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Row-wise cosine similarity between ``(n, d)`` matrices."""
    an = np.linalg.norm(a, axis=1)
    bn = np.linalg.norm(b, axis=1)
    return np.einsum("nd,nd->n", a, b) / np.maximum(an * bn, eps)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a conv/pool dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into patch rows for GEMM-based convolution.

    Returns ``(cols, (oh, ow))`` where ``cols`` has shape
    ``(N * oh * ow, C * kh * kw)``.  Built from a zero-copy strided view of
    the padded input; the only copy is the final reshape into GEMM layout.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        xp = x
    sn, sc, sh, sw = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, oh, ow, C, kh, kw) -> rows ordered by sample then output pixel.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch-row gradients back into an input-shaped gradient.

    Inverse scatter-add of :func:`im2col`: overlapping windows accumulate.
    """
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    dx_pad = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Accumulate per kernel offset; kh*kw iterations of fully vectorized adds.
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            dx_pad[:, :, i:i_max:stride, j:j_max:stride] += patches[:, :, :, :, i, j]
    if padding > 0:
        return dx_pad[:, :, padding : padding + h, padding : padding + w]
    return dx_pad
