"""Structural layers: Flatten and Sequential."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["Flatten", "Sequential"]


class Flatten(Module):
    """Collapse all non-batch dimensions to one."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called without a cached training forward")
        dx = dout.reshape(self._shape)
        self._shape = None
        return dx

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Sequential(Module):
    """A chain of layers executed in order.

    ``backward`` runs the chain in reverse, so a full training step is::

        out = seq(x)
        loss, dout = criterion(out, y)
        seq.zero_grad()
        seq.backward(dout)
        optimizer.step()
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: List[Module] = list(layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        total = 0
        shape = input_shape
        for layer in self.layers:
            total += layer.forward_flops(shape)
            shape = layer.output_shape(shape)
        return total
