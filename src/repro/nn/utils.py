"""Gradient utilities."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["clip_grad_norm", "global_grad_norm"]


def global_grad_norm(params: Sequence[Parameter]) -> float:
    """L2 norm of all gradients concatenated."""
    total = 0.0
    for p in params:
        g = p.grad.ravel()
        total += float(np.dot(g, g))
    return math.sqrt(total)


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging/diagnostics).  The
    same semantics as ``torch.nn.utils.clip_grad_norm_``.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm
