"""Gradient utilities."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["clip_grad_norm", "clip_grad_norm_flat", "global_grad_norm"]


def global_grad_norm(params: Sequence[Parameter]) -> float:
    """L2 norm of all gradients concatenated."""
    total = 0.0
    for p in params:
        g = p.grad.ravel()
        total += float(np.dot(g, g))
    return math.sqrt(total)


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging/diagnostics).  The
    same semantics as ``torch.nn.utils.clip_grad_norm_``.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm


def clip_grad_norm_flat(grads: np.ndarray, max_norm: float) -> float:
    """:func:`clip_grad_norm` over a plane-backed model's ``(P,)`` gradient
    vector: one dot product for the norm, one in-place scale to clip.

    The single flat reduction replaces the per-layer sum-of-dots, so the
    clipped floats differ from the tree path in the last bits — the one
    place the client-side flat path changes reduction order (re-pinned once,
    uniformly across every executor and mode).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = math.sqrt(float(np.dot(grads, grads)))
    if norm > max_norm:
        grads *= max_norm / (norm + 1e-12)
    return norm
