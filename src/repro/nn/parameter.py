"""Trainable parameter container.

A :class:`Parameter` pairs a weight array with its gradient accumulator.  All
arrays are C-contiguous ``float32`` by default: federated averaging and the
regularizers stream over every parameter each round, so compact contiguous
storage matters for cache behaviour (see the HPC guide's cache-effects notes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Parameter", "DEFAULT_DTYPE"]

DEFAULT_DTYPE = np.float32


class Parameter:
    """A named trainable array with a same-shaped gradient buffer.

    Attributes
    ----------
    data:
        The weight values; mutated in place by optimizers.
    grad:
        Gradient accumulator, reset by :meth:`zero_grad`.  Kept allocated for
        the lifetime of the parameter so backward passes write in place.
    name:
        Dotted path assigned when the owning module tree is constructed;
        useful in error messages and profiling output.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.ascontiguousarray(data, dtype=DEFAULT_DTYPE)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient buffer in place (no reallocation)."""
        self.grad[...] = 0.0

    def rebind(self, data: np.ndarray, grad: np.ndarray) -> None:
        """Re-home this parameter onto external storage (plane views).

        Used by :func:`repro.fl.params.materialize_parameters` to back a
        whole model with two contiguous buffers; the caller is responsible
        for having copied the current values into ``data``/``grad`` first.
        Shapes and dtypes must match exactly so every downstream consumer
        (layers, optimizers, strategies) is oblivious to the move.
        """
        if data.shape != self.data.shape or data.dtype != self.data.dtype:
            raise ValueError(
                f"parameter {self.name!r}: rebind data mismatch "
                f"{data.shape}/{data.dtype} vs {self.data.shape}/{self.data.dtype}"
            )
        if grad.shape != self.grad.shape or grad.dtype != self.grad.dtype:
            raise ValueError(
                f"parameter {self.name!r}: rebind grad mismatch "
                f"{grad.shape}/{grad.dtype} vs {self.grad.shape}/{self.grad.dtype}"
            )
        self.data = data
        self.grad = grad

    def copy_(self, values: np.ndarray) -> None:
        """Copy ``values`` into :attr:`data` without changing identity."""
        if values.shape != self.data.shape:
            raise ValueError(
                f"parameter {self.name!r}: shape mismatch {values.shape} vs {self.data.shape}"
            )
        np.copyto(self.data, values.astype(DEFAULT_DTYPE, copy=False))

    def clone_data(self) -> np.ndarray:
        """Detached copy of the current weights."""
        return np.array(self.data, copy=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


def as_parameter(value, name: str = "") -> Optional[Parameter]:
    """Coerce arrays to :class:`Parameter`; pass through existing ones."""
    if value is None:
        return None
    if isinstance(value, Parameter):
        return value
    return Parameter(np.asarray(value), name=name)
