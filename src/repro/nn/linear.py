"""Fully connected layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init as nn_init
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W + b`` with ``W`` of shape ``(in, out)``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to include the additive bias term.
    rng:
        Generator for weight init; a fresh default generator is used when
        omitted (convenient in tests, but models pass an explicit stream).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(nn_init.kaiming_uniform(rng, (in_features, out_features)), "weight")
        self.bias = Parameter(nn_init.zeros((out_features,)), "bias") if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"Linear expects (n, {self.in_features}), got {x.shape}")
        self._x = x if self.training else None
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called without a cached training forward")
        x = self._x
        self.weight.grad += x.T @ dout
        if self.bias is not None:
            self.bias.grad += dout.sum(axis=0)
        dx = dout @ self.weight.data.T
        self._x = None
        return dx

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        flops = 2 * self.in_features * self.out_features
        if self.bias is not None:
            flops += self.out_features
        return flops
