"""Weight initializers.

Each initializer takes an explicit :class:`numpy.random.Generator` so model
construction is reproducible and independent of any global RNG state.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros", "fan_in_out"]


def fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv weight shapes.

    Dense weights are ``(in, out)``; conv weights are ``(out_c, in_c, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_uniform(rng: np.random.Generator, shape: Tuple[int, ...], gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform init, suited to ReLU networks."""
    fan_in, _ = fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init, suited to tanh/sigmoid networks."""
    fan_in, fan_out = fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)
