"""Base class for all layers and models.

The design is a deliberately small subset of ``torch.nn.Module``:

* ``forward(x)`` computes the output and caches whatever the backward pass
  needs on ``self`` (activations, masks, im2col buffers).
* ``backward(dout)`` consumes the cache, **accumulates** parameter gradients
  into ``Parameter.grad`` and returns the gradient w.r.t. the layer input.
* ``parameters()`` walks the attribute tree to collect every
  :class:`~repro.nn.parameter.Parameter` in a deterministic order — that order
  defines the layout of the flat parameter vector used throughout
  :mod:`repro.fl`.

There is no autograd tape; every layer implements its analytic backward.  For
the fixed architectures in this paper (MLP / CNN / AlexNet-lite) this is both
faster and easier to verify with numerical gradient checks than a general
tape would be.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base layer with parameter traversal, train/eval mode and weight I/O."""

    def __init__(self) -> None:
        self.training: bool = True

    # -- forward / backward --------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- tree traversal -------------------------------------------------------
    def children(self) -> Iterator[Tuple[str, "Module"]]:
        """Immediate child modules, in attribute-insertion order."""
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def modules(self) -> Iterator[Tuple[str, "Module"]]:
        """All modules in the subtree, depth-first, prefixed paths."""
        yield "", self
        for cname, child in self.children():
            for sub, mod in child.modules():
                yield (f"{cname}.{sub}" if sub else cname), mod

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Every parameter in the subtree with its dotted path."""
        for prefix, mod in self.modules():
            for name, value in vars(mod).items():
                if isinstance(value, Parameter):
                    yield (f"{prefix}.{name}" if prefix else name), value

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- gradients ------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def gradients(self) -> List[np.ndarray]:
        """References (not copies) to every gradient buffer, in order."""
        return [p.grad for p in self.parameters()]

    # -- train / eval ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for _, mod in self.modules():
            mod.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- weight I/O -------------------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        """Detached copies of every parameter array, in traversal order."""
        return [p.clone_data() for p in self.parameters()]

    def get_weights_flat(self) -> Tuple[np.ndarray, List[Tuple[int, ...]]]:
        """One detached flat copy of every parameter plus the per-layer
        shapes — the upload format of the flat-parameter hot path (see
        :mod:`repro.fl.params`).  Same bytes as :meth:`get_weights`, one
        allocation instead of one per layer."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=np.float32), []
        flat = np.concatenate([p.data.ravel() for p in params])
        return flat, [p.data.shape for p in params]

    def weight_refs(self) -> List[np.ndarray]:
        """Live references to the parameter arrays (no copies)."""
        return [p.data for p in self.parameters()]

    def set_weights(self, weights: List[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            p.copy_(np.asarray(w))

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.clone_data() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state dict mismatch; missing={sorted(missing)}, extra={sorted(extra)}")
        for name, p in own.items():
            p.copy_(np.asarray(state[name]))

    # -- FLOPs accounting --------------------------------------------------------
    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        """Multiply-add count (counted as 2 FLOPs each) of one forward pass
        for a single sample with the given per-sample ``input_shape``.

        Layers without arithmetic return 0.  Containers sum their children.
        """
        return 0

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for a per-sample ``input_shape``."""
        return input_shape
