"""Base class for all layers and models.

The design is a deliberately small subset of ``torch.nn.Module``:

* ``forward(x)`` computes the output and caches whatever the backward pass
  needs on ``self`` (activations, masks, im2col buffers).
* ``backward(dout)`` consumes the cache, **accumulates** parameter gradients
  into ``Parameter.grad`` and returns the gradient w.r.t. the layer input.
* ``parameters()`` walks the attribute tree to collect every
  :class:`~repro.nn.parameter.Parameter` in a deterministic order — that order
  defines the layout of the flat parameter vector used throughout
  :mod:`repro.fl`.

There is no autograd tape; every layer implements its analytic backward.  For
the fixed architectures in this paper (MLP / CNN / AlexNet-lite) this is both
faster and easier to verify with numerical gradient checks than a general
tape would be.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base layer with parameter traversal, train/eval mode and weight I/O."""

    def __init__(self) -> None:
        self.training: bool = True

    # -- forward / backward --------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- tree traversal -------------------------------------------------------
    def children(self) -> Iterator[Tuple[str, "Module"]]:
        """Immediate child modules, in attribute-insertion order."""
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def modules(self) -> Iterator[Tuple[str, "Module"]]:
        """All modules in the subtree, depth-first, prefixed paths."""
        yield "", self
        for cname, child in self.children():
            for sub, mod in child.modules():
                yield (f"{cname}.{sub}" if sub else cname), mod

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Every parameter in the subtree with its dotted path."""
        for prefix, mod in self.modules():
            for name, value in vars(mod).items():
                if isinstance(value, Parameter):
                    yield (f"{prefix}.{name}" if prefix else name), value

    def parameters(self) -> List[Parameter]:
        cached = getattr(self, "_flat_param_list", None)
        if cached is not None:
            return list(cached)
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        flat_w = self.flat_weights
        if flat_w is not None:
            return int(flat_w.size)
        return sum(p.size for p in self.parameters())

    # -- flat (plane-backed) storage -------------------------------------------
    def materialize_flat(self) -> "Module":
        """Re-home every parameter in the subtree onto one contiguous weight
        plane and one matching gradient plane (see
        :func:`repro.fl.params.materialize_parameters`).

        After this call ``Parameter.data``/``Parameter.grad`` are zero-copy
        views into two ``(P,)`` buffers exposed as :attr:`flat_weights` /
        :attr:`flat_grads`, and the hot per-batch operations (``zero_grad``,
        optimizer steps, gradient clipping, the strategies' attach ops)
        collapse to single vector expressions.  Traversal order, shapes and
        the current bytes are preserved exactly; parameter traversal is
        cached from here on, so the module tree must not grow new parameters
        afterwards.  Idempotent; a no-op on empty or mixed-dtype trees.
        """
        if getattr(self, "_flat_planes", None) is None:
            # Lazy import: nn is a lower layer than fl, and only plane-backed
            # training needs the dependency.
            from repro.fl.params import materialize_parameters

            params = self.parameters()
            planes = materialize_parameters(params)
            if planes is None:
                return self
            self._flat_planes = planes
            self._flat_param_list = tuple(params)
            self._flat_shapes = tuple(p.data.shape for p in params)
        return self

    @property
    def flat_weights(self) -> Optional[np.ndarray]:
        """Live ``(P,)`` view of every weight (None until materialized)."""
        planes = getattr(self, "_flat_planes", None)
        return planes[0].flat if planes is not None else None

    @property
    def flat_grads(self) -> Optional[np.ndarray]:
        """Live ``(P,)`` view of every gradient (None until materialized)."""
        planes = getattr(self, "_flat_planes", None)
        return planes[1].flat if planes is not None else None

    def flat_state(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The ``(flat_weights, flat_grads)`` pair, or None when not
        plane-backed — the handshake fused optimizers key their fast path on."""
        planes = getattr(self, "_flat_planes", None)
        if planes is None:
            return None
        return planes[0].flat, planes[1].flat

    # -- gradients ------------------------------------------------------------
    def zero_grad(self) -> None:
        grads = self.flat_grads
        if grads is not None:
            grads[...] = 0.0
            return
        for p in self.parameters():
            p.zero_grad()

    def gradients(self) -> List[np.ndarray]:
        """References (not copies) to every gradient buffer, in order."""
        return [p.grad for p in self.parameters()]

    # -- train / eval ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for _, mod in self.modules():
            mod.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- weight I/O -------------------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        """Detached copies of every parameter array, in traversal order."""
        return [p.clone_data() for p in self.parameters()]

    def get_weights_flat(self) -> Tuple[np.ndarray, List[Tuple[int, ...]]]:
        """One detached flat copy of every parameter plus the per-layer
        shapes — the upload format of the flat-parameter hot path (see
        :mod:`repro.fl.params`).  Same bytes as :meth:`get_weights`; on a
        plane-backed model this is a single memcpy of the weight plane (no
        concatenate, no per-layer ravel), otherwise one allocation total."""
        flat_w = self.flat_weights
        if flat_w is not None:
            return flat_w.copy(), list(self._flat_shapes)
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=np.float32), []
        flat = np.concatenate([p.data.ravel() for p in params])
        return flat, [p.data.shape for p in params]

    def weight_refs(self) -> List[np.ndarray]:
        """Live references to the parameter arrays (no copies)."""
        return [p.data for p in self.parameters()]

    def set_weights(self, weights: List[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            p.copy_(np.asarray(w))

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.clone_data() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state dict mismatch; missing={sorted(missing)}, extra={sorted(extra)}")
        for name, p in own.items():
            p.copy_(np.asarray(state[name]))

    # -- FLOPs accounting --------------------------------------------------------
    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        """Multiply-add count (counted as 2 FLOPs each) of one forward pass
        for a single sample with the given per-sample ``input_shape``.

        Layers without arithmetic return 0.  Containers sum their children.
        """
        return 0

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for a per-sample ``input_shape``."""
        return input_shape
