"""Elementwise activation layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid"]


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if self.training:
            self._mask = x > 0.0
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a cached training forward")
        dx = dout * self._mask
        self._mask = None
        return dx

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0.0
        out = np.where(mask, x, self.negative_slope * x)
        if self.training:
            self._mask = mask
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a cached training forward")
        dx = np.where(self._mask, dout, self.negative_slope * dout)
        self._mask = None
        return dx

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(x)
        if self.training:
            self._out = out
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called without a cached training forward")
        dx = dout * (1.0 - self._out * self._out)
        self._out = None
        return dx

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-x))
        if self.training:
            self._out = out
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called without a cached training forward")
        dx = dout * self._out * (1.0 - self._out)
        self._out = None
        return dx

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        return int(np.prod(input_shape))
