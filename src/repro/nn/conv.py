"""2-D convolution implemented as im2col + GEMM."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init as nn_init
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Cross-correlation over ``(N, C, H, W)`` inputs.

    Weight shape is ``(out_channels, in_channels, kh, kw)``.  The forward pass
    unfolds the input into patch rows (:func:`~repro.nn.functional.im2col`)
    and performs one matrix multiply — the single-big-BLAS-call strategy the
    HPC guide recommends over per-pixel Python loops.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size) <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid Conv2d geometry")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(nn_init.kaiming_uniform(rng, shape), "weight")
        self.bias = Parameter(nn_init.zeros((out_channels,)), "bias") if bias else None
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expects (n, {self.in_channels}, h, w), got {x.shape}"
            )
        n = x.shape[0]
        k = self.kernel_size
        cols, (oh, ow) = im2col(x, k, k, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.out_channels, -1).T  # (C*k*k, F)
        out = cols @ w_mat  # (N*oh*ow, F)
        if self.bias is not None:
            out += self.bias.data
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        if self.training:
            self._cols, self._x_shape, self._out_hw = cols, x.shape, (oh, ow)
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called without a cached training forward")
        n = self._x_shape[0]
        oh, ow = self._out_hw
        k = self.kernel_size
        dout_mat = dout.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        self.weight.grad += (self._cols.T @ dout_mat).T.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += dout_mat.sum(axis=0)
        dcols = dout_mat @ self.weight.data.reshape(self.out_channels, -1)
        dx = col2im(dcols, self._x_shape, k, k, self.stride, self.padding)
        self._cols = self._x_shape = self._out_hw = None
        return dx

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        k = self.kernel_size
        oh = conv_output_size(h, k, self.stride, self.padding)
        ow = conv_output_size(w, k, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        _, oh, ow = self.output_shape(input_shape)
        k = self.kernel_size
        macs = oh * ow * self.out_channels * self.in_channels * k * k
        flops = 2 * macs
        if self.bias is not None:
            flops += oh * ow * self.out_channels
        return flops
