"""Spatial pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import conv_output_size
from repro.nn.module import Module

__all__ = ["MaxPool2d", "AvgPool2d"]


def _windows(x: np.ndarray, k: int, stride: int) -> np.ndarray:
    """Strided zero-copy view ``(N, C, oh, ow, k, k)`` over pooling windows."""
    n, c, h, w = x.shape
    oh = conv_output_size(h, k, stride, 0)
    ow = conv_output_size(w, k, stride, 0)
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, k, k),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


class MaxPool2d(Module):
    """Max pooling with square windows.

    When windows overlap (stride < kernel) and several windows share the same
    argmax element the backward pass accumulates into it, matching the
    standard scatter-add semantics.
    """

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, s = self.kernel_size, self.stride
        win = _windows(x, k, s)
        n, c, oh, ow = win.shape[:4]
        flat = win.reshape(n, c, oh, ow, k * k)
        idx = np.argmax(flat, axis=-1)
        out = np.take_along_axis(flat, idx[..., None], axis=-1)[..., 0]
        if self.training:
            self._x_shape = x.shape
            self._argmax = idx
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called without a cached training forward")
        k, s = self.kernel_size, self.stride
        n, c, h, w = self._x_shape
        oh, ow = dout.shape[2], dout.shape[3]
        dx = np.zeros(self._x_shape, dtype=dout.dtype)
        # Convert flat window argmax to absolute coordinates, then scatter-add.
        ki = self._argmax // k
        kj = self._argmax % k
        oi = np.arange(oh)[None, None, :, None]
        oj = np.arange(ow)[None, None, None, :]
        rows = (oi * s + ki).reshape(-1)
        cols = (oj * s + kj).reshape(-1)
        ni = np.broadcast_to(np.arange(n)[:, None, None, None], self._argmax.shape).reshape(-1)
        ci = np.broadcast_to(np.arange(c)[None, :, None, None], self._argmax.shape).reshape(-1)
        np.add.at(dx, (ni, ci, rows, cols), dout.reshape(-1))
        self._argmax = self._x_shape = None
        return dx

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        oh = conv_output_size(h, self.kernel_size, self.stride, 0)
        ow = conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, oh, ow)

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        c, oh, ow = self.output_shape(input_shape)
        # One comparison per window element, counted as one FLOP.
        return c * oh * ow * self.kernel_size * self.kernel_size


class AvgPool2d(Module):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        win = _windows(x, self.kernel_size, self.stride)
        out = win.mean(axis=(-2, -1))
        if self.training:
            self._x_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called without a cached training forward")
        k, s = self.kernel_size, self.stride
        n, c, h, w = self._x_shape
        oh, ow = dout.shape[2], dout.shape[3]
        dx = np.zeros(self._x_shape, dtype=dout.dtype)
        share = dout / (k * k)
        for i in range(k):
            for j in range(k):
                dx[:, :, i : i + s * oh : s, j : j + s * ow : s] += share
        self._x_shape = None
        return dx

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        oh = conv_output_size(h, self.kernel_size, self.stride, 0)
        ow = conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, oh, ow)

    def forward_flops(self, input_shape: Tuple[int, ...]) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return c * oh * ow * self.kernel_size * self.kernel_size
