"""Loss functions.

Each criterion exposes ``forward(...) -> (loss, grad)`` where ``grad`` is the
gradient of the *mean* loss w.r.t. the first input — ready to feed into
``model.backward``.  This one-shot interface avoids hidden state and keeps a
training step to three explicit lines.

``ModelContrastiveLoss`` is MOON's model-level contrastive objective (Li et
al., CVPR 2021) used by :class:`repro.algorithms.moon.MOON`; it is the
expensive representation-based alternative that FedTrip's parameter-space
triplet term replaces.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax

__all__ = [
    "CrossEntropyLoss",
    "MSELoss",
    "KLDivLoss",
    "ModelContrastiveLoss",
    "TripletSampleLoss",
]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels."""

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (n, classes), got {logits.shape}")
        n = logits.shape[0]
        if labels.shape != (n,):
            raise ValueError(f"labels must be ({n},), got {labels.shape}")
        logp = log_softmax(logits, axis=1)
        loss = -float(np.mean(logp[np.arange(n), labels]))
        grad = softmax(logits, axis=1)
        grad[np.arange(n), labels] -= 1.0
        grad /= n
        return loss, grad

    __call__ = forward


class MSELoss:
    """Mean squared error."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
        diff = pred - target
        loss = float(np.mean(diff * diff))
        grad = (2.0 / diff.size) * diff
        return loss, grad

    __call__ = forward


class KLDivLoss:
    """Temperature-scaled KL divergence ``KL(teacher || student)``.

    Used for FedGKD-style global-knowledge distillation: the teacher is the
    frozen global model, the student the local model being trained.  Returns
    the gradient w.r.t. *student logits*; scaled by ``temperature**2`` as is
    conventional so gradient magnitudes stay comparable across temperatures.
    """

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = float(temperature)

    def forward(
        self, student_logits: np.ndarray, teacher_logits: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        if student_logits.shape != teacher_logits.shape:
            raise ValueError("student/teacher logit shapes differ")
        t = self.temperature
        n = student_logits.shape[0]
        p = softmax(teacher_logits / t, axis=1)
        logq = log_softmax(student_logits / t, axis=1)
        logp = log_softmax(teacher_logits / t, axis=1)
        loss = float(np.sum(p * (logp - logq)) / n) * t * t
        q = softmax(student_logits / t, axis=1)
        grad = (q - p) * (t / n)
        return loss, grad

    __call__ = forward


def _cosine_and_grad(z: np.ndarray, a: np.ndarray, eps: float = 1e-8):
    """Row-wise cosine similarity and its gradient w.r.t. ``z``."""
    zn = np.maximum(np.linalg.norm(z, axis=1, keepdims=True), eps)
    an = np.maximum(np.linalg.norm(a, axis=1, keepdims=True), eps)
    cos = np.sum(z * a, axis=1, keepdims=True) / (zn * an)
    dz = a / (zn * an) - cos * z / (zn * zn)
    return cos[:, 0], dz


class ModelContrastiveLoss:
    """MOON's contrastive loss over (current, global, previous) features.

    ``l = -log( exp(sim(z, z_glob)/tau) / (exp(sim(z, z_glob)/tau)
    + exp(sim(z, z_prev)/tau)) )`` averaged over the batch.  ``z_glob`` and
    ``z_prev`` are treated as constants (they come from frozen models).
    """

    def __init__(self, temperature: float = 0.5) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = float(temperature)

    def forward(
        self, z: np.ndarray, z_glob: np.ndarray, z_prev: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        if z.shape != z_glob.shape or z.shape != z_prev.shape:
            raise ValueError("feature shapes must match")
        tau = self.temperature
        n = z.shape[0]
        sg, dsg = _cosine_and_grad(z, z_glob)
        sp, dsp = _cosine_and_grad(z, z_prev)
        logits = np.stack([sg, sp], axis=1) / tau
        logp = log_softmax(logits, axis=1)
        loss = -float(np.mean(logp[:, 0]))
        p = softmax(logits, axis=1)
        # d loss / d sg = (p_g - 1)/ (n tau); d loss / d sp = p_p / (n tau)
        cg = (p[:, 0] - 1.0) / (n * tau)
        cp = p[:, 1] / (n * tau)
        grad = cg[:, None] * dsg + cp[:, None] * dsp
        return loss, grad

    __call__ = forward


class TripletSampleLoss:
    """Classic sample-level triplet loss (FaceNet), kept for reference.

    FedTrip lifts this anchor/positive/negative structure from embeddings to
    *model parameters*; this class exists so examples/tests can demonstrate
    the analogy.  ``max(||a-p||^2 - ||a-n||^2 + margin, 0)`` per row.
    """

    def __init__(self, margin: float = 1.0) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = float(margin)

    def forward(
        self, anchor: np.ndarray, positive: np.ndarray, negative: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        if anchor.shape != positive.shape or anchor.shape != negative.shape:
            raise ValueError("triplet shapes must match")
        n = anchor.shape[0]
        dp = anchor - positive
        dn = anchor - negative
        viol = np.sum(dp * dp, axis=1) - np.sum(dn * dn, axis=1) + self.margin
        active = viol > 0
        loss = float(np.mean(np.maximum(viol, 0.0)))
        grad = np.zeros_like(anchor)
        grad[active] = 2.0 * (dp[active] - dn[active]) / n
        return loss, grad

    __call__ = forward
