"""A from-scratch NumPy neural-network substrate.

This package replaces PyTorch in the reproduction: layer modules with exact
analytic backward passes, GEMM-based convolution, losses returning
``(value, grad)`` pairs, and deterministic initializers.  The public surface
mirrors a small slice of ``torch.nn`` so the FL code above it reads
familiarly.
"""

from repro.nn.parameter import Parameter, DEFAULT_DTYPE
from repro.nn.module import Module
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.pooling import MaxPool2d, AvgPool2d
from repro.nn.activations import ReLU, LeakyReLU, Tanh, Sigmoid
from repro.nn.regularization import Dropout, BatchNorm1d, BatchNorm2d
from repro.nn.containers import Flatten, Sequential
from repro.nn.losses import (
    CrossEntropyLoss,
    MSELoss,
    KLDivLoss,
    ModelContrastiveLoss,
    TripletSampleLoss,
)
from repro.nn import functional
from repro.nn import init
from repro.nn.utils import clip_grad_norm, clip_grad_norm_flat, global_grad_norm

__all__ = [
    "Parameter",
    "DEFAULT_DTYPE",
    "Module",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "BatchNorm1d",
    "BatchNorm2d",
    "Flatten",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "KLDivLoss",
    "ModelContrastiveLoss",
    "TripletSampleLoss",
    "functional",
    "init",
    "clip_grad_norm",
    "clip_grad_norm_flat",
    "global_grad_norm",
]
