"""Stochastic gradient descent with optional (heavy-ball) momentum."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """``v = m v + g; w -= lr v`` (PyTorch-style momentum).

    With ``momentum=0`` this is plain SGD.  ``weight_decay`` adds ``wd * w``
    to the gradient (decoupled L2, applied before momentum, folded into the
    gradient buffer in place), and ``nesterov=True`` uses the lookahead form.

    On a plane-backed model (``flat_state``) the whole update is a handful
    of fused vector expressions over the ``(P,)`` weight/grad planes — no
    per-layer loop; momentum keeps one flat velocity vector that is zeroed
    (not reallocated) on :meth:`reset_state`.  The arithmetic is elementwise
    and therefore byte-identical to the per-layer path.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        flat_state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        super().__init__(params, lr, flat_state=flat_state)
        if momentum < 0 or weight_decay < 0:
            raise ValueError("momentum and weight_decay must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: Optional[List[np.ndarray]] = None
        self._velocity_flat: Optional[np.ndarray] = None

    def reset_state(self) -> None:
        self._velocity = None
        if self._velocity_flat is not None:
            self._velocity_flat[...] = 0.0

    def _step_flat(self, w: np.ndarray, g: np.ndarray) -> None:
        if self.weight_decay:
            g += self.weight_decay * w
        if self.momentum == 0.0:
            w -= self.lr * g
            return
        if self._velocity_flat is None:
            self._velocity_flat = np.zeros_like(w)
        v = self._velocity_flat
        v *= self.momentum
        v += g
        if self.nesterov:
            w -= self.lr * (g + self.momentum * v)
        else:
            w -= self.lr * v

    def step(self) -> None:
        if self._flat is not None:
            self._step_flat(*self._flat)
            return
        if self.momentum == 0.0:
            for p in self.params:
                g = p.grad
                if self.weight_decay:
                    g += self.weight_decay * p.data
                p.data -= self.lr * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g += self.weight_decay * p.data
            v *= self.momentum
            v += g
            if self.nesterov:
                p.data -= self.lr * (g + self.momentum * v)
            else:
                p.data -= self.lr * v
