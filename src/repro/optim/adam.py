"""Adam optimizer (kept for completeness; the paper uses SGD variants)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015).

    On a plane-backed model (``flat_state``) the moment estimates are two
    flat ``(P,)`` vectors and the whole update is one fused expression per
    moment — no per-layer loop.  Both paths fold weight decay into the
    gradient buffer in place (no fresh ``g + wd * w`` array per layer per
    step), which is safe because gradients are re-zeroed before the next
    backward pass.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        flat_state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        super().__init__(params, lr, flat_state=flat_state)
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.b1, self.b2 = float(b1), float(b2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._m_flat: Optional[np.ndarray] = None
        self._v_flat: Optional[np.ndarray] = None
        self._t = 0

    def reset_state(self) -> None:
        self._m = self._v = None
        if self._m_flat is not None:
            self._m_flat[...] = 0.0
            self._v_flat[...] = 0.0
        self._t = 0

    def _step_flat(self, w: np.ndarray, g: np.ndarray, bc1: float, bc2: float) -> None:
        if self._m_flat is None:
            self._m_flat = np.zeros_like(w)
            self._v_flat = np.zeros_like(w)
        m, v = self._m_flat, self._v_flat
        if self.weight_decay:
            g += self.weight_decay * w
        m *= self.b1
        m += (1 - self.b1) * g
        v *= self.b2
        v += (1 - self.b2) * (g * g)
        w -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.b1**self._t
        bc2 = 1.0 - self.b2**self._t
        if self._flat is not None:
            self._step_flat(*self._flat, bc1, bc2)
            return
        if self._m is None:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g += self.weight_decay * p.data
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
