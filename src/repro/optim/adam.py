"""Adam optimizer (kept for completeness; the paper uses SGD variants)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.b1, self.b2 = float(b1), float(b2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._t = 0

    def reset_state(self) -> None:
        self._m = self._v = None
        self._t = 0

    def step(self) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
        self._t += 1
        bc1 = 1.0 - self.b1**self._t
        bc2 = 1.0 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
