"""Learning-rate schedules over communication rounds.

The paper uses a fixed lr of 0.01; schedules are provided as extensions so
the sensitivity benches can sweep decay policies.
"""

from __future__ import annotations

import math

__all__ = ["ConstantLR", "StepDecayLR", "CosineLR"]


class ConstantLR:
    """``lr(t) = lr0``."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = float(lr)

    def __call__(self, round_idx: int) -> float:
        return self.lr


class StepDecayLR:
    """``lr(t) = lr0 * gamma^(t // step)``."""

    def __init__(self, lr: float, step: int, gamma: float = 0.5) -> None:
        if lr <= 0 or step <= 0 or not 0 < gamma <= 1:
            raise ValueError("invalid StepDecayLR configuration")
        self.lr = float(lr)
        self.step = int(step)
        self.gamma = float(gamma)

    def __call__(self, round_idx: int) -> float:
        return self.lr * self.gamma ** (round_idx // self.step)


class CosineLR:
    """Cosine annealing from ``lr0`` to ``lr_min`` over ``total`` rounds."""

    def __init__(self, lr: float, total: int, lr_min: float = 0.0) -> None:
        if lr <= 0 or total <= 0 or lr_min < 0 or lr_min > lr:
            raise ValueError("invalid CosineLR configuration")
        self.lr = float(lr)
        self.total = int(total)
        self.lr_min = float(lr_min)

    def __call__(self, round_idx: int) -> float:
        t = min(round_idx, self.total)
        cos = 0.5 * (1 + math.cos(math.pi * t / self.total))
        return self.lr_min + (self.lr - self.lr_min) * cos
