"""Optimizers and learning-rate schedules.

The paper's default local optimizer is SGD with momentum 0.9 and lr 0.01
(SlowMo and FedDyn use plain SGD).  Algorithms inject their regularization
*into the gradient buffers* before ``step()`` — exactly Algorithm 1 line 7-8:
``h = grad F + mu((w - w_glob) + xi(w_hist - w))`` then ``w -= alpha U(h)``
where ``U`` is the optimizer update rule.
"""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.schedules import ConstantLR, StepDecayLR, CosineLR

__all__ = ["SGD", "Adam", "ConstantLR", "StepDecayLR", "CosineLR"]
