"""Optimizer base class."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Updates a fixed list of parameters from their ``grad`` buffers.

    State (momentum buffers etc.) is positional, so an optimizer stays valid
    as long as parameter *shapes* are unchanged — which FL guarantees, since
    every round replaces weights in place via ``Module.set_weights``.

    ``flat_state`` optionally hands the optimizer the ``(weights, grads)``
    ``(P,)`` vector pair of a plane-backed model (see
    :meth:`repro.nn.module.Module.flat_state`).  Subclasses then fuse the
    whole update into a handful of vector expressions over those buffers —
    the parameter ``data``/``grad`` arrays are views into them, so the two
    representations can never diverge.  Without it, the per-layer fallback
    paths run.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        flat_state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        if flat_state is not None:
            weights, grads = flat_state
            total = sum(p.size for p in self.params)
            if weights.size != total or grads.size != total:
                raise ValueError(
                    f"flat state holds {weights.size}/{grads.size} elements, "
                    f"parameters hold {total}"
                )
        self._flat = flat_state

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        if self._flat is not None:
            self._flat[1][...] = 0.0
            return
        for p in self.params:
            p.zero_grad()

    def reset_state(self) -> None:
        """Clear internal state (e.g. momentum) without touching weights.

        Called at the start of each FL round: local momentum must not leak
        across rounds because the client restarts from the global model.
        """
