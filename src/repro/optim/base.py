"""Optimizer base class."""

from __future__ import annotations

from typing import List, Sequence

from repro.nn.parameter import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Updates a fixed list of parameters from their ``grad`` buffers.

    State (momentum buffers etc.) is positional, so an optimizer stays valid
    as long as parameter *shapes* are unchanged — which FL guarantees, since
    every round replaces weights in place via ``Module.set_weights``.
    """

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def reset_state(self) -> None:
        """Clear internal state (e.g. momentum) without touching weights.

        Called at the start of each FL round: local momentum must not leak
        across rounds because the client restarts from the global model.
        """
