"""The three architectures evaluated in the paper (Sec. V-A, Table III).

* :func:`build_mlp` — 2 fully connected layers (100 hidden units), used on
  MNIST/FMNIST.
* :func:`build_cnn` — LeNet-5-style CNN: 3 conv layers with 5x5 filters
  followed by FC-84 and the classifier, used on MNIST/FMNIST/EMNIST.
* :func:`build_alexnet` — a channel-reduced AlexNet (5 conv + 3 FC) for
  CIFAR-10-like 3-channel inputs.

All builders adapt their geometry to the per-sample ``input_shape`` so the
same topology runs on the paper-scale 28x28/32x32 images *and* on the
scaled-down "mini" images the CPU benchmarks use (the kernel size shrinks and
pooling stages drop out when the spatial extent gets too small, preserving
layer count and the features/head split).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.models.fedmodel import FedModel

__all__ = ["build_mlp", "build_cnn", "build_alexnet"]


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


def _flat_dim(input_shape: Tuple[int, ...]) -> int:
    return int(np.prod(input_shape))


def build_mlp(
    input_shape: Tuple[int, ...],
    num_classes: int,
    hidden: int = 100,
    rng: Optional[np.random.Generator] = None,
) -> FedModel:
    """2-layer MLP: Flatten -> Linear(hidden) -> ReLU | Linear(classes)."""
    rng = _rng(rng)
    features = Sequential(
        Flatten(),
        Linear(_flat_dim(input_shape), hidden, rng=rng),
        ReLU(),
    )
    head = Sequential(Linear(hidden, num_classes, rng=rng))
    return FedModel(features, head, input_shape, name="mlp")


def _conv_block(
    layers: List[Module],
    in_c: int,
    out_c: int,
    spatial: int,
    rng: np.random.Generator,
    want_pool: bool,
    valid: bool = False,
) -> Tuple[int, int]:
    """Append conv(+ReLU, optional pool), returning (channels, spatial).

    Kernel prefers 5x5 (the paper's CNN) but shrinks to 3x3 or 1x1 when the
    remaining spatial extent is too small.  ``valid=False`` pads to preserve
    shape; ``valid=True`` uses no padding (LeNet's final conv collapses the
    spatial extent this way, which is what keeps the paper's CNN smaller
    than its MLP in Table III).
    """
    if spatial >= 5:
        k = 5
    elif spatial >= 3:
        k = 3
    else:
        k = 1
    pad = 0 if valid else k // 2
    layers.append(Conv2d(in_c, out_c, k, stride=1, padding=pad, rng=rng))
    layers.append(ReLU())
    spatial = spatial if not valid else spatial - k + 1
    if want_pool and spatial >= 4:
        layers.append(MaxPool2d(2))
        spatial //= 2
    return out_c, spatial


def build_cnn(
    input_shape: Tuple[int, ...],
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
    channels: Tuple[int, int, int] = (6, 16, 32),
    fc_width: int = 84,
    batch_norm: bool = False,
) -> FedModel:
    """LeNet-5-style CNN per Sec. V-A: 3 conv (5x5) + FC-84 + classifier.

    ``batch_norm=True`` inserts BatchNorm after every conv and the hidden
    FC layer — the variant FedBN (related work [24]) personalizes under
    feature-skewed federations.
    """
    from repro.nn import BatchNorm1d, BatchNorm2d

    rng = _rng(rng)
    if len(input_shape) != 3:
        raise ValueError(f"CNN needs (c, h, w) input, got {input_shape}")
    c, h, w = input_shape
    if h != w:
        raise ValueError("square inputs expected")
    layers: List[Module] = []
    spatial = h

    def _maybe_bn2d(ch: int) -> None:
        if batch_norm:
            # Insert before the activation (conv -> BN -> ReLU [-> pool]).
            relu_idx = max(i for i, m in enumerate(layers) if isinstance(m, ReLU))
            layers.insert(relu_idx, BatchNorm2d(ch))

    c1, spatial = _conv_block(layers, c, channels[0], spatial, rng, want_pool=True)
    _maybe_bn2d(c1)
    c2, spatial = _conv_block(layers, c1, channels[1], spatial, rng, want_pool=True)
    _maybe_bn2d(c2)
    c3, spatial = _conv_block(layers, c2, channels[2], spatial, rng, want_pool=False, valid=True)
    _maybe_bn2d(c3)
    layers.append(Flatten())
    flat = c3 * spatial * spatial
    layers.append(Linear(flat, fc_width, rng=rng))
    if batch_norm:
        layers.append(BatchNorm1d(fc_width))
    layers.append(ReLU())
    features = Sequential(*layers)
    head = Sequential(Linear(fc_width, num_classes, rng=rng))
    return FedModel(features, head, input_shape, name="cnn_bn" if batch_norm else "cnn")


def build_alexnet(
    input_shape: Tuple[int, ...],
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
    width: int = 32,
    fc_widths: Tuple[int, int] = (256, 128),
    dropout: float = 0.5,
) -> FedModel:
    """Channel-reduced AlexNet: 5 conv layers + 3 FC layers.

    The original AlexNet targets 224x224 ImageNet; like the paper (2.72M
    params for CIFAR-10, far below the 61M original) we keep the 5-conv/3-FC
    topology but scale channel counts to the input size.
    """
    rng = _rng(rng)
    if len(input_shape) != 3:
        raise ValueError(f"AlexNet needs (c, h, w) input, got {input_shape}")
    c, h, w = input_shape
    if h != w:
        raise ValueError("square inputs expected")
    layers: List[Module] = []
    spatial = h
    ch, spatial = _conv_block(layers, c, width, spatial, rng, want_pool=True)
    ch, spatial = _conv_block(layers, ch, width * 2, spatial, rng, want_pool=True)
    ch, spatial = _conv_block(layers, ch, width * 4, spatial, rng, want_pool=False)
    ch, spatial = _conv_block(layers, ch, width * 4, spatial, rng, want_pool=False)
    ch, spatial = _conv_block(layers, ch, width * 2, spatial, rng, want_pool=True)
    layers.append(Flatten())
    flat = ch * spatial * spatial
    layers.append(Linear(flat, fc_widths[0], rng=rng))
    layers.append(ReLU())
    layers.append(Dropout(dropout, rng=rng))
    layers.append(Linear(fc_widths[0], fc_widths[1], rng=rng))
    layers.append(ReLU())
    features = Sequential(*layers)
    head = Sequential(Linear(fc_widths[1], num_classes, rng=rng))
    return FedModel(features, head, input_shape, name="alexnet")
