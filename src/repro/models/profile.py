"""Model cost profiling: parameters, communication volume and FLOPs.

Regenerates the quantities in Table III of the paper (communication MB,
params in millions, forward MFLOPs per sample) and feeds the per-method cost
accounting in :mod:`repro.costs`.

FLOP conventions (stated so numbers are comparable):

* one multiply-accumulate = 2 FLOPs;
* backward pass ≈ 2x forward (gradient w.r.t. weights + w.r.t. inputs), the
  standard engineering estimate the paper also relies on;
* parameter-space "attaching" operations (FedProx/FedTrip/FedDyn terms) cost
  a small integer multiple of ``|w|`` FLOPs — see ``repro.costs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.models.fedmodel import FedModel
from repro.nn.parameter import DEFAULT_DTYPE

__all__ = ["ModelProfile", "profile_model", "layer_summary", "format_layer_summary"]

_BYTES_PER_PARAM = DEFAULT_DTYPE().itemsize  # float32 -> 4


@dataclass(frozen=True)
class ModelProfile:
    """Static cost summary of one architecture on one input geometry."""

    name: str
    input_shape: Tuple[int, ...]
    num_params: int
    comm_bytes: int            # one direction, full model
    forward_flops: int         # per sample
    backward_flops: int        # per sample

    @property
    def comm_mb(self) -> float:
        return self.comm_bytes / (1024.0 * 1024.0)

    @property
    def params_millions(self) -> float:
        return self.num_params / 1e6

    @property
    def forward_mflops(self) -> float:
        return self.forward_flops / 1e6

    @property
    def train_flops_per_sample(self) -> int:
        """Forward + backward cost of one training sample."""
        return self.forward_flops + self.backward_flops

    def table3_row(self) -> Dict[str, float]:
        """Row in the format of the paper's Table III."""
        return {
            "model": self.name,
            "communication_mb": round(self.comm_mb, 4),
            "params_m": round(self.params_millions, 4),
            "mflops": round(self.forward_mflops, 4),
        }


def profile_model(model: FedModel, input_shape: Optional[Tuple[int, ...]] = None) -> ModelProfile:
    """Profile a :class:`FedModel` analytically (no forward pass executed)."""
    shape = tuple(input_shape) if input_shape is not None else model.input_shape
    fwd = model.forward_flops(shape)
    n_params = model.num_parameters()
    return ModelProfile(
        name=model.name,
        input_shape=shape,
        num_params=n_params,
        comm_bytes=n_params * _BYTES_PER_PARAM,
        forward_flops=fwd,
        backward_flops=2 * fwd,
    )


def layer_summary(model: FedModel, input_shape: Optional[Tuple[int, ...]] = None):
    """Per-layer breakdown: (layer, output shape, params, forward FLOPs).

    Walks the features/head chains with analytic shape propagation — no
    forward pass is executed.  Returns a list of row dicts plus a totals
    row; :func:`format_layer_summary` renders it as a table.
    """
    shape = tuple(input_shape) if input_shape is not None else model.input_shape
    rows = []
    current = shape
    for section_name, section in (("features", model.features), ("head", model.head)):
        for i, layer in enumerate(section.layers):
            out_shape = layer.output_shape(current)
            rows.append({
                "layer": f"{section_name}.{i}:{type(layer).__name__}",
                "output_shape": out_shape,
                "params": layer.num_parameters(),
                "forward_flops": layer.forward_flops(current),
            })
            current = out_shape
    rows.append({
        "layer": "TOTAL",
        "output_shape": current,
        "params": sum(r["params"] for r in rows),
        "forward_flops": sum(r["forward_flops"] for r in rows),
    })
    return rows


def format_layer_summary(model: FedModel, input_shape: Optional[Tuple[int, ...]] = None) -> str:
    """Human-readable torchsummary-style table."""
    rows = layer_summary(model, input_shape)
    widths = {
        "layer": max(len(r["layer"]) for r in rows),
        "shape": max(len(str(r["output_shape"])) for r in rows),
    }
    lines = [
        f"{'layer':<{widths['layer']}}  {'output shape':<{widths['shape']}}  "
        f"{'params':>10}  {'fwd FLOPs':>12}"
    ]
    lines.append("-" * len(lines[0]))
    for r in rows:
        if r["layer"] == "TOTAL":
            lines.append("-" * len(lines[0]))
        lines.append(
            f"{r['layer']:<{widths['layer']}}  {str(r['output_shape']):<{widths['shape']}}  "
            f"{r['params']:>10,}  {r['forward_flops']:>12,}"
        )
    return "\n".join(lines)
