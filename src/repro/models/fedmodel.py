"""Federated model wrapper with a features/head split.

MOON and FedGKD need access to the penultimate representation ``z`` (MOON
contrasts representations across models; FedGKD distils logits).  Every model
in this reproduction is therefore a :class:`FedModel`: a feature extractor
followed by a classifier head, with a backward pass that can inject an extra
gradient at the representation boundary.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.containers import Sequential
from repro.nn.module import Module

__all__ = ["FedModel"]


class FedModel(Module):
    """``logits = head(features(x))`` with gradient injection at ``z``.

    Parameters
    ----------
    features:
        Everything up to and including the representation layer.
    head:
        The classifier on top of the representation (typically one Linear).
    input_shape:
        Per-sample input shape, e.g. ``(1, 28, 28)``; used for FLOPs/shape
        bookkeeping and sanity checks.
    name:
        Registry name ("mlp", "cnn", "alexnet", ...).
    """

    def __init__(
        self,
        features: Sequential,
        head: Sequential,
        input_shape: Tuple[int, ...],
        name: str = "fedmodel",
    ) -> None:
        super().__init__()
        self.features = features
        self.head = head
        self.input_shape = tuple(input_shape)
        self.name = name

    # -- forward ---------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.features(x))

    def forward_with_features(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(logits, z)`` where ``z`` is the representation."""
        z = self.features(x)
        return self.head(z), z

    # -- flat weight I/O -------------------------------------------------------
    def set_weights_flat(self, flat: np.ndarray) -> None:
        """Load one flat parameter vector (the canonical server-side
        representation, see :mod:`repro.fl.params`) into the model —
        inverse of :meth:`~repro.nn.module.Module.get_weights_flat`.

        On a plane-backed model (:meth:`~repro.nn.module.Module.
        materialize_flat`) this is a single ``np.copyto`` into the weight
        plane — the broadcast-adoption fast path; otherwise it falls back
        to one reshape+copy per parameter."""
        flat_w = self.flat_weights
        if flat_w is not None:
            if flat.size != flat_w.size:
                raise ValueError(
                    f"flat vector has {flat.size} elements, model has {flat_w.size}"
                )
            # "unsafe" mirrors the fallback's astype(float32) semantics.
            np.copyto(flat_w, flat, casting="unsafe")
            return
        params = self.parameters()
        total = sum(p.size for p in params)
        if flat.size != total:
            raise ValueError(f"flat vector has {flat.size} elements, model has {total}")
        cursor = 0
        for p in params:
            p.copy_(flat[cursor : cursor + p.size].reshape(p.data.shape))
            cursor += p.size

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class prediction in eval mode (mode is restored)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.forward(x)
        finally:
            self.train(was_training)
        return np.argmax(logits, axis=1)

    # -- backward ----------------------------------------------------------------
    def backward(
        self, dlogits: np.ndarray, dfeatures: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Backpropagate ``dlogits`` (and optionally an extra gradient on the
        representation, as MOON requires) down to the input."""
        dz = self.head.backward(dlogits)
        if dfeatures is not None:
            dz = dz + dfeatures
        return self.features.backward(dz)

    # -- bookkeeping ---------------------------------------------------------------
    @property
    def feature_dim(self) -> int:
        shape = self.features.output_shape(self.input_shape)
        if len(shape) != 1:
            raise RuntimeError(f"feature extractor must end flat, got {shape}")
        return shape[0]

    @property
    def num_classes(self) -> int:
        return self.head.output_shape((self.feature_dim,))[0]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return self.head.output_shape(self.features.output_shape(input_shape))

    def forward_flops(self, input_shape: Optional[Tuple[int, ...]] = None) -> int:
        shape = tuple(input_shape) if input_shape is not None else self.input_shape
        z_shape = self.features.output_shape(shape)
        return self.features.forward_flops(shape) + self.head.forward_flops(z_shape)
