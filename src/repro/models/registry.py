"""Name-based model construction, mirroring the paper's model/dataset pairs."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.models.fedmodel import FedModel
from repro.models.zoo import build_alexnet, build_cnn, build_mlp

__all__ = ["MODEL_BUILDERS", "build_model", "available_models"]

ModelBuilder = Callable[..., FedModel]

MODEL_BUILDERS: Dict[str, ModelBuilder] = {
    "mlp": build_mlp,
    "cnn": build_cnn,
    "alexnet": build_alexnet,
}


def available_models() -> Tuple[str, ...]:
    return tuple(sorted(MODEL_BUILDERS))


def build_model(
    name: str,
    input_shape: Tuple[int, ...],
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> FedModel:
    """Build a registered model by name.

    >>> model = build_model("cnn", (1, 28, 28), 10, rng=np.random.default_rng(0))
    """
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return MODEL_BUILDERS[key](input_shape, num_classes, rng=rng, **kwargs)
