"""Model zoo: the MLP / CNN / AlexNet-lite architectures from the paper."""

from repro.models.fedmodel import FedModel
from repro.models.zoo import build_mlp, build_cnn, build_alexnet
from repro.models.registry import MODEL_BUILDERS, build_model, available_models
from repro.models.profile import ModelProfile, profile_model, layer_summary, format_layer_summary

__all__ = [
    "FedModel",
    "build_mlp",
    "build_cnn",
    "build_alexnet",
    "MODEL_BUILDERS",
    "build_model",
    "available_models",
    "ModelProfile",
    "profile_model",
    "layer_summary",
    "format_layer_summary",
]
