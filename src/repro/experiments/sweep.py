"""Declarative experiment grids.

A sweep is a cross product of named axes over a base
:class:`~repro.api.spec.ExperimentSpec`; completed cells are cached in an
:class:`~repro.io.persistence.ExperimentStore` keyed by the cell's stable
:meth:`~repro.api.spec.ExperimentSpec.cell_key`, so re-running a
half-finished sweep only trains the missing cells.  Cell execution goes
through the one front door, :func:`repro.api.run_experiment` — this module
owns *grid* logic only.

``ExperimentCell`` is the sweep-era name for ``ExperimentSpec`` and is kept
as an alias.

Example::

    spec = SweepSpec(
        base=ExperimentSpec(dataset="mini_mnist", model="mlp", method="fedtrip",
                            rounds=20, lr=0.05),
        axes={"mu": [0.1, 0.4, 0.8], "seed": [0, 1, 2]},
    )
    runner = SweepRunner(store_dir="runs/")
    results = runner.run(spec)             # {cell_key: History}
    table = runner.summarize(spec, metric="best_accuracy")
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.api import ExperimentSpec, run_experiment
from repro.fl.history import History
from repro.io import ExperimentStore

__all__ = ["ExperimentCell", "SweepSpec", "SweepRunner", "run_cell"]

#: Backwards-compatible alias: one fully specified training run.
ExperimentCell = ExperimentSpec


@dataclass
class SweepSpec:
    """A base cell plus named axes to cross."""

    base: ExperimentSpec
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def cells(self) -> Iterator[ExperimentSpec]:
        if not self.axes:
            yield self.base
            return
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            cell = self.base
            for name, value in zip(names, combo):
                cell = cell.with_axis(name, value)
            yield cell

    def __len__(self) -> int:
        n = 1
        for vals in self.axes.values():
            n *= len(vals)
        return n


def run_cell(cell: ExperimentSpec) -> History:
    """Train one cell from scratch and return its history."""
    return run_experiment(cell)


class SweepRunner:
    """Executes sweeps with per-cell disk caching."""

    def __init__(self, store_dir: Optional[str] = None) -> None:
        self.store = ExperimentStore(store_dir) if store_dir else None

    def run(self, spec: SweepSpec, progress: bool = False) -> Dict[str, History]:
        """Run every cell (cache-aware); returns ``{cell_key: History}``."""
        out: Dict[str, History] = {}
        for i, cell in enumerate(spec.cells()):
            key = cell.cell_key()
            if self.store is not None and self.store.has(key):
                out[key] = self.store.get(key)
                continue
            history = run_experiment(cell)
            if self.store is not None:
                self.store.put(key, history, cell.to_dict())
            out[key] = history
            if progress:  # pragma: no cover - cosmetic
                print(f"[{i + 1}/{len(spec)}] {cell.method} done")
        return out

    def summarize(self, spec: SweepSpec, metric: str = "best_accuracy",
                  **metric_kwargs) -> List[Dict[str, Any]]:
        """One row per cell: axis values + the requested history metric.

        ``metric`` is any zero/kwarg-argument History method name
        (``best_accuracy``, ``total_gflops``) or ``rounds_to_accuracy``
        with ``target=``.
        """
        results = self.run(spec)
        rows: List[Dict[str, Any]] = []
        for cell in spec.cells():
            history = results[cell.cell_key()]
            fn = getattr(history, metric)
            value = fn(**metric_kwargs) if metric_kwargs else fn()
            row = {name: cell.to_dict()[name] if name in cell.__dataclass_fields__
                   else dict(cell.overrides).get(name)
                   for name in spec.axes}
            row[metric] = value
            rows.append(row)
        return rows
