"""Declarative experiment grids.

The benchmark harness hand-rolls its case lists; downstream users sweeping
their own questions ("mu x heterogeneity x seed") want a first-class grid
runner with disk caching.  A sweep is a cross product of named axes over a
base cell; completed cells are cached in an
:class:`~repro.io.persistence.ExperimentStore` keyed by the cell's config
hash, so re-running a half-finished sweep only trains the missing cells.

Example::

    spec = SweepSpec(
        base=ExperimentCell(dataset="mini_mnist", model="mlp", method="fedtrip",
                            rounds=20, lr=0.05),
        axes={"mu": [0.1, 0.4, 0.8], "seed": [0, 1, 2]},
    )
    runner = SweepRunner(store_dir="runs/")
    results = runner.run(spec)             # {cell_key: History}
    table = runner.summarize(spec, metric="best_accuracy")
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional

from repro.algorithms import build_strategy
from repro.data import build_federated_data
from repro.fl import FLConfig, Simulation
from repro.fl.history import History
from repro.io import ExperimentStore

__all__ = ["ExperimentCell", "SweepSpec", "SweepRunner", "run_cell"]


@dataclass(frozen=True)
class ExperimentCell:
    """One fully specified training run."""

    dataset: str = "mini_mnist"
    model: str = "mlp"
    method: str = "fedtrip"
    partition: str = "dirichlet"
    alpha: float = 0.5
    n_clusters: int = 5
    n_clients: int = 10
    clients_per_round: int = 4
    rounds: int = 20
    batch_size: int = 50
    local_epochs: int = 1
    lr: float = 0.05
    seed: int = 0
    samples_per_client: Optional[int] = None
    #: hyperparameter overrides for the strategy (e.g. {"mu": 0.8});
    #: stored as a tuple of pairs so the cell stays hashable.
    overrides: tuple = ()

    def with_axis(self, name: str, value: Any) -> "ExperimentCell":
        """Return a copy with one axis changed; unknown names go to the
        strategy overrides."""
        if name in self.__dataclass_fields__ and name != "overrides":
            return replace(self, **{name: value})
        pairs = dict(self.overrides)
        pairs[name] = value
        return replace(self, overrides=tuple(sorted(pairs.items())))

    def config_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["overrides"] = dict(self.overrides)
        return d


@dataclass
class SweepSpec:
    """A base cell plus named axes to cross."""

    base: ExperimentCell
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def cells(self) -> Iterator[ExperimentCell]:
        if not self.axes:
            yield self.base
            return
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            cell = self.base
            for name, value in zip(names, combo):
                cell = cell.with_axis(name, value)
            yield cell

    def __len__(self) -> int:
        n = 1
        for vals in self.axes.values():
            n *= len(vals)
        return n


def run_cell(cell: ExperimentCell) -> History:
    """Train one cell from scratch and return its history."""
    partition_kwargs: Dict[str, Any] = {}
    if cell.partition == "dirichlet":
        partition_kwargs["alpha"] = cell.alpha
    elif cell.partition == "orthogonal":
        partition_kwargs["n_clusters"] = cell.n_clusters
    data = build_federated_data(
        cell.dataset,
        n_clients=cell.n_clients,
        partition=cell.partition,
        seed=cell.seed,
        samples_per_client=cell.samples_per_client,
        **partition_kwargs,
    )
    config = FLConfig(
        rounds=cell.rounds,
        n_clients=cell.n_clients,
        clients_per_round=cell.clients_per_round,
        batch_size=cell.batch_size,
        local_epochs=cell.local_epochs,
        lr=cell.lr,
        seed=cell.seed,
    )
    strategy = build_strategy(cell.method, model=cell.model, dataset=cell.dataset,
                              **dict(cell.overrides))
    sim = Simulation(data, strategy, config, model_name=cell.model)
    history = sim.run()
    sim.close()
    return history


class SweepRunner:
    """Executes sweeps with per-cell disk caching."""

    def __init__(self, store_dir: Optional[str] = None) -> None:
        self.store = ExperimentStore(store_dir) if store_dir else None

    def _key(self, cell: ExperimentCell) -> str:
        return ExperimentStore.key(cell.config_dict())

    def run(self, spec: SweepSpec, progress: bool = False) -> Dict[str, History]:
        """Run every cell (cache-aware); returns ``{key: History}``."""
        out: Dict[str, History] = {}
        for i, cell in enumerate(spec.cells()):
            key = self._key(cell)
            if self.store is not None and self.store.has(key):
                out[key] = self.store.get(key)
                continue
            history = run_cell(cell)
            if self.store is not None:
                self.store.put(key, history, cell.config_dict())
            out[key] = history
            if progress:  # pragma: no cover - cosmetic
                print(f"[{i + 1}/{len(spec)}] {cell.method} done")
        return out

    def summarize(self, spec: SweepSpec, metric: str = "best_accuracy",
                  **metric_kwargs) -> List[Dict[str, Any]]:
        """One row per cell: axis values + the requested history metric.

        ``metric`` is any zero/kwarg-argument History method name
        (``best_accuracy``, ``total_gflops``) or ``rounds_to_accuracy``
        with ``target=``.
        """
        results = self.run(spec)
        rows: List[Dict[str, Any]] = []
        for cell in spec.cells():
            history = results[self._key(cell)]
            fn = getattr(history, metric)
            value = fn(**metric_kwargs) if metric_kwargs else fn()
            row = {name: dict(cell.config_dict())[name] if name in cell.__dataclass_fields__
                   else dict(cell.overrides).get(name)
                   for name in spec.axes}
            row[metric] = value
            rows.append(row)
        return rows
