"""Declarative experiment sweeps with caching."""

from repro.experiments.sweep import (
    ExperimentCell,
    SweepSpec,
    SweepRunner,
    run_cell,
)

__all__ = ["ExperimentCell", "SweepSpec", "SweepRunner", "run_cell"]
