"""Client data partitioners: IID, Dirichlet and orthogonal (Sec. V-A, Fig. 4).

* ``dirichlet``: each client draws a class-probability vector from
  ``Dir(alpha)`` and samples (without replacement) from per-class pools until
  its quota is filled — the paper's LEAF-style procedure.  ``alpha=0.1`` gives
  clients dominated by 1-2 classes; ``alpha=0.5`` gives 3-4.
* ``orthogonal``: clients are grouped into clusters; clusters own disjoint
  class sets; within a cluster data are IID.  ``Orthogonal-5`` on 10 classes
  gives every client 2 classes; ``Orthogonal-10`` gives 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "iid_partition",
    "dirichlet_partition",
    "orthogonal_partition",
    "make_partition",
    "partition_label_counts",
    "PARTITIONERS",
]


def _class_pools(labels: np.ndarray, num_classes: int, rng: np.random.Generator) -> List[np.ndarray]:
    """Shuffled index pool per class."""
    pools = []
    for cls in range(num_classes):
        idx = np.flatnonzero(labels == cls)
        rng.shuffle(idx)
        pools.append(idx)
    return pools


def _check_args(labels: np.ndarray, n_clients: int, samples_per_client: int) -> None:
    if n_clients <= 0 or samples_per_client <= 0:
        raise ValueError("n_clients and samples_per_client must be positive")
    if n_clients * samples_per_client > labels.shape[0]:
        raise ValueError(
            f"not enough data: need {n_clients * samples_per_client}, have {labels.shape[0]}"
        )


def iid_partition(
    labels: np.ndarray,
    n_clients: int,
    samples_per_client: int,
    rng: np.random.Generator,
    num_classes: Optional[int] = None,  # accepted for dispatch symmetry
) -> List[np.ndarray]:
    """Uniformly random disjoint shards."""
    labels = np.asarray(labels)
    _check_args(labels, n_clients, samples_per_client)
    order = rng.permutation(labels.shape[0])
    return [
        np.sort(order[k * samples_per_client : (k + 1) * samples_per_client])
        for k in range(n_clients)
    ]


def dirichlet_partition(
    labels: np.ndarray,
    n_clients: int,
    samples_per_client: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
    num_classes: Optional[int] = None,
) -> List[np.ndarray]:
    """Label-skewed shards via per-client Dirichlet class priors.

    Draws each client's target class histogram from a multinomial over its
    Dirichlet prior, then takes indices from per-class pools.  When a pool
    runs dry the residual demand is re-spread over classes that still have
    stock (weighted by the client's prior), so every client ends with exactly
    ``samples_per_client`` samples and no index is used twice.
    """
    labels = np.asarray(labels)
    _check_args(labels, n_clients, samples_per_client)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    c = int(num_classes) if num_classes is not None else int(labels.max()) + 1
    pools = _class_pools(labels, c, rng)
    cursor = np.zeros(c, dtype=np.int64)  # consumed count per class
    stock = np.array([p.size for p in pools], dtype=np.int64)
    shards: List[np.ndarray] = []
    for _ in range(n_clients):
        prior = rng.dirichlet(np.full(c, alpha))
        want = rng.multinomial(samples_per_client, prior)
        take = np.minimum(want, stock)
        deficit = samples_per_client - int(take.sum())
        while deficit > 0:
            remaining = stock - take
            open_classes = remaining > 0
            if not open_classes.any():
                raise RuntimeError("pool exhausted — _check_args should prevent this")
            weights = np.where(open_classes, np.maximum(prior, 1e-12), 0.0)
            weights /= weights.sum()
            extra = rng.multinomial(deficit, weights)
            extra = np.minimum(extra, remaining)
            take += extra
            deficit = samples_per_client - int(take.sum())
        chunks = []
        for cls in range(c):
            k = int(take[cls])
            if k:
                chunks.append(pools[cls][cursor[cls] : cursor[cls] + k])
                cursor[cls] += k
        stock -= take
        shards.append(np.sort(np.concatenate(chunks)))
    return shards


def orthogonal_partition(
    labels: np.ndarray,
    n_clients: int,
    samples_per_client: int,
    rng: np.random.Generator,
    n_clusters: int = 5,
    num_classes: Optional[int] = None,
) -> List[np.ndarray]:
    """Cluster-disjoint class ownership; IID inside each cluster.

    Classes are split round-robin over ``n_clusters`` groups, clients are
    assigned to clusters round-robin, and each client samples IID from its
    cluster's class pool.
    """
    labels = np.asarray(labels)
    _check_args(labels, n_clients, samples_per_client)
    c = int(num_classes) if num_classes is not None else int(labels.max()) + 1
    if not 1 <= n_clusters <= c:
        raise ValueError(f"n_clusters must be in [1, {c}]")
    class_perm = rng.permutation(c)
    cluster_classes: List[np.ndarray] = [class_perm[g::n_clusters] for g in range(n_clusters)]
    pools = _class_pools(labels, c, rng)
    cursor = np.zeros(c, dtype=np.int64)
    shards: List[np.ndarray] = []
    for k in range(n_clients):
        classes = cluster_classes[k % n_clusters]
        # Even split of the quota across the cluster's classes (IID within).
        base = samples_per_client // classes.size
        rem = samples_per_client - base * classes.size
        order = rng.permutation(classes.size)
        chunks = []
        for j, cls_pos in enumerate(order):
            cls = int(classes[cls_pos])
            k_take = base + (1 if j < rem else 0)
            avail = pools[cls].size - cursor[cls]
            if avail < k_take:
                raise ValueError(
                    f"class {cls} pool exhausted under Orthogonal-{n_clusters}: "
                    f"reduce samples_per_client or n_clients"
                )
            chunks.append(pools[cls][cursor[cls] : cursor[cls] + k_take])
            cursor[cls] += k_take
        shards.append(np.sort(np.concatenate(chunks)))
    return shards


PARTITIONERS = {
    "iid": iid_partition,
    "dirichlet": dirichlet_partition,
    "orthogonal": orthogonal_partition,
}


def make_partition(
    kind: str,
    labels: np.ndarray,
    n_clients: int,
    samples_per_client: int,
    rng: np.random.Generator,
    **kwargs,
) -> List[np.ndarray]:
    """Dispatch by name: ``iid``, ``dirichlet`` (alpha=), ``orthogonal`` (n_clusters=)."""
    key = kind.lower()
    if key not in PARTITIONERS:
        raise KeyError(f"unknown partition kind {kind!r}; options: {sorted(PARTITIONERS)}")
    return PARTITIONERS[key](labels, n_clients, samples_per_client, rng, **kwargs)


def partition_label_counts(
    labels: np.ndarray, shards: Sequence[np.ndarray], num_classes: int
) -> np.ndarray:
    """Client-by-class label count matrix — the data behind Fig. 4."""
    labels = np.asarray(labels)
    out = np.zeros((len(shards), num_classes), dtype=np.int64)
    for k, shard in enumerate(shards):
        out[k] = np.bincount(labels[shard], minlength=num_classes)
    return out


def heterogeneity_summary(counts: np.ndarray) -> Dict[str, float]:
    """Simple skewness diagnostics of a partition (mean #classes per client,
    normalized entropy) used in tests and the Fig. 4 bench output."""
    present = (counts > 0).sum(axis=1)
    probs = counts / np.maximum(counts.sum(axis=1, keepdims=True), 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        ent = -np.nansum(np.where(probs > 0, probs * np.log(probs), 0.0), axis=1)
    max_ent = np.log(counts.shape[1])
    return {
        "mean_classes_per_client": float(present.mean()),
        "mean_normalized_entropy": float((ent / max_ent).mean()) if max_ent > 0 else 0.0,
    }
