"""Convenience assembly of a federated dataset: generate, partition, shard."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.partition import make_partition, partition_label_counts
from repro.data.specs import DatasetSpec, get_spec
from repro.data.synthetic import SyntheticImageData, generate_dataset
from repro.data.transforms import client_feature_skew
from repro.utils.rng import RngStream

__all__ = ["FederatedData", "build_federated_data"]


@dataclass
class FederatedData:
    """A partitioned synthetic dataset ready for simulation.

    ``client_transforms`` (optional, one per client) models FedBN-style
    feature skew: each client sees its shard through a fixed deterministic
    transform (sensor gain/contrast/misalignment), applied lazily in
    :meth:`client_dataset`.
    """

    spec: DatasetSpec
    train: ArrayDataset
    test: ArrayDataset
    client_shards: List[np.ndarray]
    partition_kind: str
    client_transforms: Optional[List[Callable]] = field(default=None)

    def __post_init__(self) -> None:
        if self.client_transforms is not None and len(self.client_transforms) != len(
            self.client_shards
        ):
            raise ValueError("one transform per client required")

    @property
    def n_clients(self) -> int:
        return len(self.client_shards)

    def client_dataset(self, client_id: int) -> ArrayDataset:
        shard = self.train.subset(self.client_shards[client_id])
        if self.client_transforms is not None:
            transform = self.client_transforms[client_id]
            # Deterministic per-client rng: the skew is a fixed property of
            # the client's "sensor", identical on every materialization.
            rng = RngStream(0).child("feature-skew", client_id).generator
            shard = ArrayDataset(transform(shard.x, rng), shard.y)
        return shard

    def label_counts(self) -> np.ndarray:
        """Client-by-class label histogram (Fig. 4 data)."""
        return partition_label_counts(self.train.y, self.client_shards, self.spec.num_classes)


def build_federated_data(
    dataset: str,
    n_clients: int,
    partition: str = "dirichlet",
    seed: int = 0,
    samples_per_client: Optional[int] = None,
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
    feature_skew: bool = False,
    **partition_kwargs,
) -> FederatedData:
    """Generate a synthetic dataset and shard it across clients.

    ``samples_per_client`` defaults to the spec's Table II value, capped so
    the partition always fits the (possibly shrunk) train split.
    ``feature_skew=True`` additionally gives every client a fixed
    gain/contrast/shift transform (feature non-IID on top of — or instead
    of, with ``partition="iid"`` — the label skew).
    """
    spec = get_spec(dataset)
    data: SyntheticImageData = generate_dataset(spec, seed=seed, train_size=train_size, test_size=test_size)
    per_client = samples_per_client if samples_per_client is not None else spec.client_samples
    max_fit = data.x_train.shape[0] // n_clients
    per_client = min(int(per_client), max_fit)
    if per_client <= 0:
        raise ValueError("train split too small for the requested client count")
    rng = RngStream(seed).child("partition", partition).generator
    shards = make_partition(
        partition,
        data.y_train,
        n_clients,
        per_client,
        rng,
        num_classes=spec.num_classes,
        **partition_kwargs,
    )
    transforms = client_feature_skew(n_clients, seed=seed) if feature_skew else None
    return FederatedData(
        spec=spec,
        train=ArrayDataset(data.x_train, data.y_train),
        test=ArrayDataset(data.x_test, data.y_test),
        client_shards=shards,
        partition_kind=partition,
        client_transforms=transforms,
    )
