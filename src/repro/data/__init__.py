"""Datasets, loaders and non-IID partitioners."""

from repro.data.specs import DatasetSpec, DATASET_SPECS, get_spec, available_datasets
from repro.data.synthetic import SyntheticImageData, generate_dataset, make_prototypes
from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.partition import (
    iid_partition,
    dirichlet_partition,
    orthogonal_partition,
    make_partition,
    partition_label_counts,
    heterogeneity_summary,
    PARTITIONERS,
)
from repro.data.federated import FederatedData, build_federated_data
from repro.data.transforms import (
    Compose,
    RandomShift,
    RandomHorizontalFlip,
    GaussianNoise,
    FixedGain,
    FixedContrast,
    FixedShift,
    client_feature_skew,
)

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "get_spec",
    "available_datasets",
    "SyntheticImageData",
    "generate_dataset",
    "make_prototypes",
    "ArrayDataset",
    "DataLoader",
    "iid_partition",
    "dirichlet_partition",
    "orthogonal_partition",
    "make_partition",
    "partition_label_counts",
    "heterogeneity_summary",
    "PARTITIONERS",
    "FederatedData",
    "build_federated_data",
    "Compose",
    "RandomShift",
    "RandomHorizontalFlip",
    "GaussianNoise",
    "FixedGain",
    "FixedContrast",
    "FixedShift",
    "client_feature_skew",
]
