"""Class-conditional synthetic image generator.

Substitute for torchvision's MNIST/FMNIST/EMNIST/CIFAR-10, which are not
downloadable in this offline environment.  Each class ``c`` gets a smooth
random-field prototype image; a sample is the prototype with a random spatial
shift, a random per-sample gain, and additive Gaussian pixel noise:

``x = gain * shift(P_c) + sigma * noise``

Why this preserves the paper's phenomena: every heterogeneity mechanism in
the paper (Dirichlet / orthogonal partitioning, Fig. 4) acts on *labels*, not
pixels.  Client drift, update inconsistency and the benefit of the triplet
regularizer arise because different clients optimise different class
mixtures; a class-separable synthetic task reproduces exactly that while
remaining learnable by the same MLP/CNN/AlexNet architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.data.specs import DatasetSpec, get_spec
from repro.utils.rng import RngStream

__all__ = ["SyntheticImageData", "generate_dataset", "make_prototypes"]


@dataclass
class SyntheticImageData:
    """Train/test arrays for one synthetic dataset.

    ``x`` arrays have shape ``(n, c, h, w)`` float32 (standardized to roughly
    zero mean / unit variance); ``y`` arrays are int64 class labels.
    """

    spec: DatasetSpec
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    prototypes: np.ndarray  # (classes, c, h, w)

    def __post_init__(self) -> None:
        if self.x_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("train x/y length mismatch")
        if self.x_test.shape[0] != self.y_test.shape[0]:
            raise ValueError("test x/y length mismatch")

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return self.spec.input_shape

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes


def make_prototypes(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    """Smooth random-field prototype per class, shape ``(classes, c, h, w)``.

    Smoothing scale ~h/6 yields blob-like structure (so convolutions have
    local features to exploit); prototypes are normalised to unit RMS so the
    noise_sigma knob has consistent meaning across specs.
    """
    shape = (spec.num_classes, spec.channels, spec.height, spec.width)
    raw = rng.standard_normal(shape)
    sigma = max(spec.height / 6.0, 1.0)
    smooth = ndimage.gaussian_filter(raw, sigma=(0, 0, sigma, sigma), mode="wrap")
    rms = np.sqrt(np.mean(smooth**2, axis=(1, 2, 3), keepdims=True))
    return (smooth / np.maximum(rms, 1e-9)).astype(np.float32)


def _sample_class(
    proto: np.ndarray,
    count: int,
    spec: DatasetSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` jittered noisy variants of one prototype, vectorized."""
    c, h, w = proto.shape
    out = np.empty((count, c, h, w), dtype=np.float32)
    if spec.shift_max > 0:
        shifts = rng.integers(-spec.shift_max, spec.shift_max + 1, size=(count, 2))
    else:
        shifts = np.zeros((count, 2), dtype=np.int64)
    # Group identical shifts so each np.roll covers many samples at once.
    keys = (shifts[:, 0] + spec.shift_max) * (2 * spec.shift_max + 1) + (
        shifts[:, 1] + spec.shift_max
    )
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    for group in np.split(order, boundaries):
        dy, dx = shifts[group[0]]
        out[group] = np.roll(proto, (int(dy), int(dx)), axis=(1, 2))
    gains = (1.0 + 0.15 * rng.standard_normal(count)).astype(np.float32)
    out *= gains[:, None, None, None]
    out += spec.noise_sigma * rng.standard_normal(out.shape).astype(np.float32)
    return out


def _balanced_labels(n: int, num_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Shuffled labels with per-class counts as equal as possible."""
    base = np.repeat(np.arange(num_classes), n // num_classes)
    extra = rng.choice(num_classes, size=n - base.size, replace=False) if n % num_classes else np.empty(0, dtype=np.int64)
    labels = np.concatenate([base, extra.astype(base.dtype)])
    rng.shuffle(labels)
    return labels.astype(np.int64)


def generate_dataset(
    spec_or_name,
    seed: int = 0,
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
) -> SyntheticImageData:
    """Generate the full synthetic dataset for a spec (or registered name).

    Sizes may be overridden (benches shrink the paper-scale specs).  Data are
    standardized using train statistics, mimicking torchvision normalization.
    """
    spec = spec_or_name if isinstance(spec_or_name, DatasetSpec) else get_spec(spec_or_name)
    n_train = int(train_size) if train_size is not None else spec.train_size
    n_test = int(test_size) if test_size is not None else spec.test_size
    if n_train <= 0 or n_test <= 0:
        raise ValueError("dataset sizes must be positive")
    root = RngStream(seed).child("dataset", spec.name)
    protos = make_prototypes(spec, root.child("prototypes").generator)

    def _make_split(n: int, which: str) -> Tuple[np.ndarray, np.ndarray]:
        rng = root.child(which).generator
        y = _balanced_labels(n, spec.num_classes, rng)
        x = np.empty((n, *spec.input_shape), dtype=np.float32)
        for cls in range(spec.num_classes):
            idx = np.flatnonzero(y == cls)
            if idx.size:
                x[idx] = _sample_class(protos[cls], idx.size, spec, rng)
        return x, y

    x_train, y_train = _make_split(n_train, "train")
    x_test, y_test = _make_split(n_test, "test")
    mean = x_train.mean()
    std = max(float(x_train.std()), 1e-6)
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std
    return SyntheticImageData(spec, x_train, y_train, x_test, y_test, protos)
