"""Array-backed datasets and the mini-batch loader."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArrayDataset", "DataLoader"]


class ArrayDataset:
    """A ``(x, y)`` pair with cheap subsetting.

    Subsets are index-based *views*: no pixel data is copied when the
    partitioner hands each client its shard (the guide's views-not-copies
    rule matters here — 50 clients x 2000 CIFAR samples would otherwise
    duplicate the whole dataset).
    """

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows, y has {y.shape[0]}")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self)):
            raise IndexError("subset index out of range")
        return ArrayDataset(self.x[idx], self.y[idx])

    def class_counts(self, num_classes: int) -> np.ndarray:
        """Histogram of labels, length ``num_classes``."""
        return np.bincount(self.y, minlength=num_classes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayDataset(n={len(self)}, x_shape={self.x.shape[1:]})"


class DataLoader:
    """Shuffling mini-batch iterator with a dedicated generator.

    One pass of ``iter(loader)`` is one local epoch.  Batch order depends
    only on the loader's RNG stream, so adding clients or rounds elsewhere
    does not perturb a given client's batches.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        rng: Optional[np.random.Generator] = None,
        shuffle: bool = True,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(dataset) == 0:
            raise ValueError("cannot iterate an empty dataset")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.shuffle = shuffle
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]
