"""Dataset specifications (paper Table II) and scaled-down bench variants.

The paper evaluates on MNIST, FashionMNIST, EMNIST (balanced-47) and
CIFAR-10.  This offline environment cannot download them, so each spec is
paired with a synthetic generator (:mod:`repro.data.synthetic`) that matches
the class count, channel count and geometry.  The ``mini_*`` variants keep
the class/channel structure but shrink images and sample counts so the full
6-method x 6-case benchmark grid runs on one CPU core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["DatasetSpec", "DATASET_SPECS", "get_spec", "available_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one image-classification dataset."""

    name: str
    num_classes: int
    channels: int
    height: int
    width: int
    train_size: int
    test_size: int
    client_samples: int  # samples held by each client (paper Table II)
    noise_sigma: float = 0.65   # synthetic-generator difficulty knob
    shift_max: int = 2          # max spatial jitter in pixels

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.height, self.width)

    @property
    def flat_dim(self) -> int:
        return self.channels * self.height * self.width

    def table2_row(self) -> Dict[str, object]:
        """Row in the format of the paper's Table II."""
        return {
            "dataset": self.name,
            "total_samples": self.train_size,
            "classes": self.num_classes,
            "channels": self.channels,
            "client_samples": self.client_samples,
        }


DATASET_SPECS: Dict[str, DatasetSpec] = {
    # Paper-scale specs (Table II).
    "mnist": DatasetSpec("mnist", 10, 1, 28, 28, 60_000, 10_000, 600),
    "fmnist": DatasetSpec("fmnist", 10, 1, 28, 28, 60_000, 10_000, 1_000, noise_sigma=0.75),
    "emnist": DatasetSpec("emnist", 47, 1, 28, 28, 112_800, 18_800, 3_000, noise_sigma=0.75),
    "cifar10": DatasetSpec("cifar10", 10, 3, 32, 32, 50_000, 10_000, 2_000, noise_sigma=0.85),
    # CPU-scale variants used by the benchmark harness: same class structure,
    # 12x12 (or 16x16 RGB) images, a few hundred samples per client.
    "mini_mnist": DatasetSpec("mini_mnist", 10, 1, 12, 12, 4_000, 800, 200),
    "mini_fmnist": DatasetSpec("mini_fmnist", 10, 1, 12, 12, 4_000, 800, 200, noise_sigma=0.8),
    "mini_emnist": DatasetSpec("mini_emnist", 20, 1, 12, 12, 6_000, 1_200, 300, noise_sigma=0.8),
    "mini_cifar10": DatasetSpec("mini_cifar10", 10, 3, 16, 16, 4_000, 800, 200, noise_sigma=0.9),
    # Tiny specs for unit tests.
    "tiny": DatasetSpec("tiny", 4, 1, 8, 8, 400, 100, 40),
    "tiny_rgb": DatasetSpec("tiny_rgb", 4, 3, 8, 8, 400, 100, 40),
}


def get_spec(name: str) -> DatasetSpec:
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return DATASET_SPECS[key]


def available_datasets() -> Tuple[str, ...]:
    return tuple(sorted(DATASET_SPECS))
