"""Image transforms: augmentation and feature-skew heterogeneity.

Two uses:

* **Augmentation** — random shift / flip / noise applied per batch during
  local training (standard for CIFAR-scale tasks).
* **Feature skew** — the paper's heterogeneity is label skew; the related
  work it cites (FedBN [24]) studies *feature* non-IID, where clients see
  the same classes through different sensors.  :func:`client_feature_skew`
  builds per-client deterministic transforms (gain/contrast/shift) so the
  same partitioning pipeline can produce feature-skewed federations too.

All transforms are pure: ``t(x, rng) -> x'`` on ``(n, c, h, w)`` batches.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = [
    "Compose",
    "RandomShift",
    "RandomHorizontalFlip",
    "GaussianNoise",
    "FixedGain",
    "FixedContrast",
    "FixedShift",
    "client_feature_skew",
]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in self.transforms:
            x = t(x, rng)
        return x


class RandomShift:
    """Random circular shift of up to ``max_shift`` pixels per sample."""

    def __init__(self, max_shift: int = 2) -> None:
        if max_shift < 0:
            raise ValueError("max_shift must be non-negative")
        self.max_shift = int(max_shift)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.max_shift == 0:
            return x
        out = np.empty_like(x)
        shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=(x.shape[0], 2))
        for i in range(x.shape[0]):
            out[i] = np.roll(x[i], (int(shifts[i, 0]), int(shifts[i, 1])), axis=(1, 2))
        return out


class RandomHorizontalFlip:
    """Flip each sample left-right with probability ``p``."""

    def __init__(self, p: float = 0.5) -> None:
        if not 0 <= p <= 1:
            raise ValueError("p must be in [0, 1]")
        self.p = float(p)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        mask = rng.random(x.shape[0]) < self.p
        out = x.copy()
        out[mask] = out[mask, :, :, ::-1]
        return out


class GaussianNoise:
    """Additive pixel noise."""

    def __init__(self, sigma: float = 0.05) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = float(sigma)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0:
            return x
        return x + self.sigma * rng.standard_normal(x.shape).astype(x.dtype)


class FixedGain:
    """Deterministic multiplicative gain (a client's sensor sensitivity)."""

    def __init__(self, gain: float) -> None:
        if gain <= 0:
            raise ValueError("gain must be positive")
        self.gain = float(gain)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return x * np.asarray(self.gain, dtype=x.dtype)


class FixedContrast:
    """Deterministic contrast adjustment around the batch mean."""

    def __init__(self, factor: float) -> None:
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.factor = float(factor)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        mean = x.mean(axis=(1, 2, 3), keepdims=True)
        return ((x - mean) * np.asarray(self.factor, dtype=x.dtype) + mean).astype(x.dtype)


class FixedShift:
    """Deterministic circular shift (a client's fixed misalignment)."""

    def __init__(self, dy: int, dx: int) -> None:
        self.dy, self.dx = int(dy), int(dx)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.dy == 0 and self.dx == 0:
            return x
        return np.roll(x, (self.dy, self.dx), axis=(2, 3))


def client_feature_skew(
    n_clients: int,
    seed: int = 0,
    gain_range: tuple = (0.6, 1.4),
    contrast_range: tuple = (0.6, 1.4),
    max_shift: int = 2,
) -> List[Compose]:
    """One deterministic per-client transform pipeline (FedBN-style skew).

    Every client gets fixed gain/contrast/shift parameters drawn once from
    ``seed``, so its data distribution differs from other clients' in
    feature space even when labels are IID.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    rng = np.random.default_rng(seed)
    pipelines: List[Compose] = []
    for _ in range(n_clients):
        gain = float(rng.uniform(*gain_range))
        contrast = float(rng.uniform(*contrast_range))
        dy, dx = (int(v) for v in rng.integers(-max_shift, max_shift + 1, size=2))
        pipelines.append(Compose([FixedGain(gain), FixedContrast(contrast), FixedShift(dy, dx)]))
    return pipelines


def apply_to_dataset(x: np.ndarray, transform: Transform, seed: int = 0) -> np.ndarray:
    """Apply a transform once to a whole array (for fixed feature skew)."""
    return transform(x, np.random.default_rng(seed))
