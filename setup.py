"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in environments whose setuptools predates full PEP 660
editable-wheel support (``python setup.py develop`` / offline CI images
without the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FedTrip: resource-efficient federated learning with triplet "
        "regularization (full reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
)
