"""The flat-parameter hot path: layout/plane round-trips, zero-copy
views, loop-vs-GEMM aggregation equivalence, flat privacy/secure/
compression equivalence, and cross-executor x cross-mode byte-identity
on the single-buffer representation."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ExperimentSpec, run_experiment
from repro.fl.aggregation import (
    fedavg_aggregate,
    weighted_average_flat,
    weighted_average_trees,
    weighted_average_trees_loop,
)
from repro.fl.compression import QuantizationCompressor, TopKCompressor
from repro.fl.params import MatrixPool, ParamPlane, WeightLayout, stack_updates
from repro.fl.privacy import GaussianMechanism
from repro.fl.secure import PairwiseMasker
from repro.fl.server import Server
from repro.fl.types import ClientUpdate, FLConfig
from repro.algorithms.registry import build_strategy


# ---------------------------------------------------------------------------
# strategies for random weight trees
# ---------------------------------------------------------------------------

@st.composite
def f32_trees(draw, max_arrays=5, max_dim=6):
    """A homogeneous float32 weight tree with assorted ranks (0-d included)."""
    n = draw(st.integers(1, max_arrays))
    shapes = [
        tuple(draw(st.lists(st.integers(1, max_dim), min_size=0, max_size=3)))
        for _ in range(n)
    ]
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return [rng.standard_normal(s).astype(np.float32) for s in shapes]


def random_tree(shapes, seed, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(s).astype(dtype) for s in shapes]


SHAPES = [(4, 3), (4,), (2, 4), (2,)]


# ---------------------------------------------------------------------------
# WeightLayout / ParamPlane
# ---------------------------------------------------------------------------

class TestWeightLayout:
    @given(f32_trees())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_shapes_dtypes_values(self, tree):
        layout = WeightLayout.from_weights(tree)
        buf = bytearray(layout.total_bytes)
        for view, w in zip(layout.views(buf, writeable=True), tree):
            np.copyto(view, w)
        for view, w in zip(layout.views(buf, writeable=False), tree):
            np.testing.assert_array_equal(view, w)
            assert view.shape == w.shape and view.dtype == w.dtype
            assert not view.flags.writeable

    @given(f32_trees())
    @settings(max_examples=40, deadline=None)
    def test_homogeneous_layout_is_packed_and_flat_addressable(self, tree):
        layout = WeightLayout.from_weights(tree)
        assert layout.is_packed
        assert layout.total_elems == sum(w.size for w in tree)
        assert layout.total_bytes == 4 * layout.total_elems
        buf = bytearray(layout.total_bytes)
        flat = layout.flat_view(buf, writeable=True)
        flat[:] = np.arange(layout.total_elems, dtype=np.float32)
        # the flat vector and the per-layer views alias the same bytes
        cursor = 0
        for view in layout.views(buf, writeable=False):
            np.testing.assert_array_equal(
                view.ravel(), np.arange(cursor, cursor + view.size, dtype=np.float32))
            cursor += view.size

    def test_mixed_dtype_layout_not_packed(self):
        tree = [np.ones(3, dtype=np.float32), np.ones(2, dtype=np.float64)]
        layout = WeightLayout.from_weights(tree)
        assert not layout.is_packed
        with pytest.raises(ValueError, match="not packed"):
            _ = layout.dtype
        # per-array views still round-trip (8-byte alignment)
        buf = bytearray(layout.total_bytes)
        for view, w in zip(layout.views(buf, writeable=True), tree):
            np.copyto(view, w)
        for view, w in zip(layout.views(buf, writeable=False), tree):
            np.testing.assert_array_equal(view, w)
            assert view.dtype == w.dtype

    def test_legacy_import_location_still_works(self):
        from repro.fl.process_executor import WeightLayout as Legacy

        assert Legacy is WeightLayout

    def test_tree_of_rejects_wrong_size(self):
        layout = WeightLayout.from_weights(random_tree(SHAPES, 0))
        with pytest.raises(ValueError, match="flat vector"):
            layout.tree_of(np.zeros(3, dtype=np.float32))


class TestParamPlane:
    def test_views_alias_one_buffer_no_silent_copies(self):
        tree = random_tree(SHAPES, 1)
        plane = ParamPlane.from_tree(tree)
        assert plane.flat is not None
        for view, w in zip(plane.tree, tree):
            np.testing.assert_array_equal(view, w)
            assert np.shares_memory(view, plane.flat)
            assert np.shares_memory(view, plane.bytes_view())
        # a write through the flat vector is visible through the tree views
        plane.flat[:] = 7.0
        for view in plane.tree:
            assert (view == 7.0).all()
        # and vice versa
        plane.tree[0][...] = -1.0
        assert (plane.flat[: plane.tree[0].size] == -1.0).all()

    def test_copy_from_tree_is_in_place(self):
        plane = ParamPlane.from_tree(random_tree(SHAPES, 2))
        before = [id(v) for v in plane.tree]
        flat_id = id(plane.flat)
        plane.copy_from_tree(random_tree(SHAPES, 3))
        assert [id(v) for v in plane.tree] == before and id(plane.flat) == flat_id
        np.testing.assert_array_equal(plane.flat, np.concatenate(
            [w.ravel() for w in random_tree(SHAPES, 3)]))

    def test_copy_from_tree_casts_float64(self):
        plane = ParamPlane.from_tree(random_tree(SHAPES, 4))
        plane.copy_from_tree(random_tree(SHAPES, 5, dtype=np.float64))
        assert plane.flat.dtype == np.float32

    def test_copy_from_tree_rejects_wrong_structure(self):
        plane = ParamPlane.from_tree(random_tree(SHAPES, 6))
        with pytest.raises(ValueError, match="weight tree"):
            plane.copy_from_tree(random_tree(SHAPES, 6)[:-1])
        with pytest.raises(ValueError, match="shape"):
            plane.copy_from_tree([w.T for w in random_tree(SHAPES, 6)])

    def test_matrix_pool_reuses_allocations(self):
        pool = MatrixPool()
        a = pool.take(4, 10)
        b = pool.take(4, 10)
        assert a is b
        assert pool.take(2, 10) is not a


# ---------------------------------------------------------------------------
# ClientUpdate flat fast path
# ---------------------------------------------------------------------------

class TestClientUpdateFlat:
    def _flat_update(self, seed=0):
        tree = random_tree(SHAPES, seed)
        flat = np.concatenate([w.ravel() for w in tree])
        return ClientUpdate.from_flat(
            flat, SHAPES, client_id=3, num_samples=10, train_loss=0.5), tree

    def test_from_flat_tree_views_share_memory(self):
        u, tree = self._flat_update()
        for view, w in zip(u.weights, tree):
            np.testing.assert_array_equal(view, w)
            assert np.shares_memory(view, u.flat)

    def test_flat_vector_lazily_caches(self):
        tree = random_tree(SHAPES, 1)
        u = ClientUpdate(0, tree, 5, 0.1)
        assert u.flat is None
        flat = u.flat_vector()
        np.testing.assert_array_equal(flat, np.concatenate([w.ravel() for w in tree]))
        assert u.flat_vector() is flat

    def test_flat_vector_none_on_mixed_dtypes(self):
        u = ClientUpdate(0, [np.ones(2, np.float32), np.ones(2, np.float64)], 5, 0.1)
        assert u.flat_vector() is None

    def test_pickle_round_trip_rebuilds_views(self):
        u, tree = self._flat_update()
        back = pickle.loads(pickle.dumps(u))
        assert back.client_id == u.client_id and back.num_samples == u.num_samples
        np.testing.assert_array_equal(back.flat, u.flat)
        for view, w in zip(back.weights, tree):
            np.testing.assert_array_equal(view, w)
            assert np.shares_memory(view, back.flat)

    def test_pickle_ships_flat_once_not_tree_plus_flat(self):
        u, tree = self._flat_update()
        plain = ClientUpdate(3, [w.copy() for w in tree], 10, 0.5)
        assert len(pickle.dumps(u)) <= len(pickle.dumps(plain)) + 200


# ---------------------------------------------------------------------------
# aggregation: loop vs GEMM
# ---------------------------------------------------------------------------

class TestAggregationEquivalence:
    @given(st.integers(2, 8), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_gemm_matches_loop(self, k, seed):
        rng = np.random.default_rng(seed)
        trees = [random_tree(SHAPES, rng.integers(2**31)) for _ in range(k)]
        weights = list(rng.uniform(0.1, 5.0, size=k))
        gemm = weighted_average_trees(trees, weights)
        loop = weighted_average_trees_loop(trees, weights)
        for a, b in zip(gemm, loop):
            assert a.dtype == b.dtype and a.shape == b.shape
            np.testing.assert_allclose(
                a.astype(np.float64), b.astype(np.float64), rtol=1e-6, atol=1e-7)

    def test_update_flats_feed_the_matrix(self):
        updates = []
        for cid in range(5):
            tree = random_tree(SHAPES, cid)
            flat = np.concatenate([w.ravel() for w in tree])
            updates.append(ClientUpdate.from_flat(
                flat, SHAPES, client_id=cid, num_samples=cid + 1, train_loss=0.0))
        mat = stack_updates([u.weights for u in updates],
                            flats=[u.flat for u in updates])
        assert mat.shape == (5, sum(int(np.prod(s)) for s in SHAPES))
        for row, u in enumerate(updates):
            np.testing.assert_array_equal(mat[row], u.flat.astype(np.float64))
        agg = fedavg_aggregate(updates)
        w = np.array([u.num_samples for u in updates], dtype=np.float64)
        np.testing.assert_allclose(
            np.concatenate([a.ravel() for a in agg]),
            ((w / w.sum()) @ mat).astype(np.float32), rtol=1e-6)

    def test_weighted_average_flat_is_one_gemm(self):
        mat = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = weighted_average_flat(mat, [1.0, 1.0, 2.0])
        np.testing.assert_allclose(out, (mat[0] + mat[1] + 2 * mat[2]) / 4.0)

    def test_mixed_dtype_falls_back_to_loop(self):
        trees = [[np.ones(2, np.float32), np.ones(3, np.float64)] for _ in range(3)]
        out = weighted_average_trees(trees, [1.0, 1.0, 1.0])
        assert out[0].dtype == np.float32 and out[1].dtype == np.float64

    def test_validation_preserved(self):
        with pytest.raises(ValueError, match="no trees"):
            weighted_average_trees([], [])
        tree = random_tree(SHAPES, 0)
        with pytest.raises(ValueError, match="one weight per tree"):
            weighted_average_trees([tree], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            weighted_average_trees([tree, tree], [1.0, -1.0])
        with pytest.raises(ValueError, match="structure mismatch"):
            weighted_average_trees([tree, tree[:-1]], [1.0, 1.0])
        # same total size, different layer shapes: must raise like the old
        # loop did (broadcasting error), not average scrambled elements
        a = [np.zeros((3, 4), dtype=np.float32)]
        b = [np.zeros((4, 3), dtype=np.float32)]
        with pytest.raises(ValueError, match="structure mismatch"):
            weighted_average_trees([a, b], [1.0, 1.0])

    def test_matrix_pool_is_thread_local(self):
        import threading
        from repro.fl.params import _default_pool

        pools = {}

        def grab(name):
            pools[name] = _default_pool()

        t = threading.Thread(target=grab, args=("worker",))
        t.start(); t.join()
        grab("main")
        assert pools["main"] is not pools["worker"]


# ---------------------------------------------------------------------------
# the plane-backed server
# ---------------------------------------------------------------------------

class TestServerPlane:
    def _server(self):
        cfg = FLConfig(rounds=1, n_clients=4, clients_per_round=2)
        return Server(random_tree(SHAPES, 0), build_strategy("fedavg"), cfg)

    def _update(self, cid, seed):
        tree = random_tree(SHAPES, seed)
        flat = np.concatenate([w.ravel() for w in tree])
        return ClientUpdate.from_flat(
            flat, SHAPES, client_id=cid, num_samples=10, train_loss=0.0)

    def test_weights_are_stable_views_updated_in_place(self):
        server = self._server()
        views = server.weights
        ids = [id(v) for v in views]
        server.apply_updates([self._update(0, 1), self._update(1, 2)])
        assert [id(v) for v in server.weights] == ids
        for v in views:
            assert np.shares_memory(v, server.plane.flat)

    def test_flat_weights_alias_tree(self):
        server = self._server()
        server.flat_weights[:] = 3.0
        for v in server.weights:
            assert (v == 3.0).all()

    def test_partition_finite_single_evaluation(self, monkeypatch):
        server = self._server()
        calls = []
        original = Server._finite

        def counting(update):
            calls.append(update.client_id)
            return original(update)

        monkeypatch.setattr(Server, "_finite", staticmethod(counting))
        bad = self._update(7, 3)
        bad.flat[0] = np.nan
        healthy = server.partition_finite([self._update(0, 1), bad, self._update(1, 2)])
        assert [u.client_id for u in healthy] == [0, 1]
        # one verdict per update, even on the drop-and-report path
        assert sorted(calls) == [0, 1, 7]

    def test_finite_check_uses_flat_vector(self):
        u = self._update(0, 1)
        u.flat[5] = np.inf
        assert not Server._finite(u)
        assert Server._finite(self._update(1, 2))


# ---------------------------------------------------------------------------
# flat privacy / secure-agg / compression equivalence
# ---------------------------------------------------------------------------

class TestFlatWrappers:
    def test_gaussian_mechanism_flat_equals_tree(self):
        tree = random_tree(SHAPES, 3)
        flat = np.concatenate([w.ravel() for w in tree])
        mech_t = GaussianMechanism(clip_norm=0.5, noise_multiplier=1.0, seed=9)
        mech_f = GaussianMechanism(clip_norm=0.5, noise_multiplier=1.0, seed=9)
        out_tree = mech_t.privatize(tree, round_idx=2, client_id=1)
        out_flat = mech_f.privatize_flat(flat, round_idx=2, client_id=1)
        np.testing.assert_array_equal(
            np.concatenate([w.ravel() for w in out_tree]), out_flat)

    def test_clip_flat_norm_bound(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        v = np.full(100, 10.0, dtype=np.float32)
        clipped = mech.clip_flat(v)
        assert np.linalg.norm(clipped) == pytest.approx(1.0, rel=1e-5)
        assert clipped is not v and (v == 10.0).all()

    def test_pairwise_masks_cancel_on_flat_path(self):
        cohort = [0, 1, 2]
        updates = {cid: random_tree(SHAPES, cid) for cid in cohort}
        masker = PairwiseMasker(seed=4, scale=50.0)
        masked = {
            cid: masker.mask_update(cid, cohort, 1, upd)
            for cid, upd in updates.items()
        }
        total = masker.unmask_sum(masked, 1)
        expect = [sum(updates[c][i] for c in cohort) for i in range(len(SHAPES))]
        for a, b in zip(total, expect):
            np.testing.assert_allclose(a, b, atol=1e-3)

    @pytest.mark.parametrize("compressor", [
        QuantizationCompressor(bits=8, seed=0), TopKCompressor(fraction=0.25)])
    def test_flat_and_tree_codecs_agree(self, compressor):
        tree = random_tree(SHAPES, 5)
        flat = np.concatenate([w.ravel() for w in tree])
        payload_t, nbytes_t = type(compressor)(**_codec_args(compressor)).encode(tree)
        payload_f, nbytes_f = compressor.encode_flat(flat)
        assert nbytes_t == nbytes_f
        np.testing.assert_array_equal(
            np.concatenate([w.ravel() for w in
                            compressor.decode(payload_t, tree)]),
            compressor.decode_flat(payload_f))


def _codec_args(compressor):
    if isinstance(compressor, QuantizationCompressor):
        return {"bits": compressor.bits, "seed": 0}
    return {"fraction": compressor.fraction}


# ---------------------------------------------------------------------------
# cross-executor x cross-mode byte-identity on the flat representation
# ---------------------------------------------------------------------------

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=3, batch_size=20, lr=0.05)


def _records_signature(history):
    return [
        (r.round_idx, tuple(r.selected), r.test_accuracy, r.test_loss,
         r.mean_train_loss, r.cumulative_flops, r.cumulative_comm_bytes,
         tuple(r.dropped_clients), tuple(r.screened_clients),
         tuple(r.adversary_clients) if r.adversary_clients is not None else None,
         r.round_skipped)
        for r in history.records
    ]


class TestCrossExecutorCrossMode:
    @pytest.mark.parametrize("method", ["fedavg", "fedtrip"])
    def test_byte_identity_grid(self, method):
        """One seed, every (executor x mode) cell, one History.

        Semisync runs with a full buffer and no deadline, which must
        degenerate byte-identically to the synchronous barrier loop on the
        flat representation too (the re-pinned floats are one consistent
        set across the grid)."""
        reference = None
        for executor in ("serial", "process"):
            for mode in ("sync", "semisync"):
                spec = ExperimentSpec(**{**TINY, "method": method,
                                         "executor": executor, "mode": mode,
                                         **({"device_profile": "iot"}
                                            if mode == "semisync" else {})})
                sig = _records_signature(run_experiment(spec))
                if reference is None:
                    reference = sig
                else:
                    assert sig == reference, (
                        f"{method}: {executor}/{mode} diverged from the grid")

    def test_byte_identity_grid_robust_aggregation_under_attack(self):
        """The determinism contract must survive the robust subsystem: a
        fixed seed with ``aggregator='coordinate_median'`` and an active
        ``sign_flip`` adversary yields byte-identical histories across
        serial/threaded/process executors and the sync/semisync barrier
        cells (full buffer, no deadline); the async cells — a different
        algorithm by construction — agree across executors against their
        own reference."""
        robust = {**TINY, "clients_per_round": 4,
                  "aggregator": "coordinate_median",
                  "adversary": "sign_flip", "adversary_fraction": 0.25,
                  "adversary_kwargs": {"gamma": 3.0}}
        references = {}
        for executor in ("serial", "threaded", "process"):
            for mode in ("sync", "semisync", "async"):
                spec = ExperimentSpec(**{**robust,
                                         "executor": executor,
                                         "n_workers": 1 if executor == "serial" else 2,
                                         "mode": mode,
                                         **({"device_profile": "iot"}
                                            if mode == "semisync" else {})})
                history = run_experiment(spec)
                # The attack is active: labels are recorded (never None),
                # and the roster member shows up in the labels — every
                # barrier round under full participation, at least once in
                # async (whose one-arrival batches are often label-free).
                assert all(r.adversary_clients is not None
                           for r in history.records)
                if mode == "async":
                    assert any(r.adversary_clients for r in history.records)
                else:
                    assert all(r.adversary_clients for r in history.records)
                sig = _records_signature(history)
                key = "sync" if mode in ("sync", "semisync") else "async"
                if key not in references:
                    references[key] = sig
                else:
                    assert sig == references[key], (
                        f"{executor}/{mode} diverged from the {key} reference")
        # Two genuinely different algorithms were compared, not one.
        assert references["sync"] != references["async"]
