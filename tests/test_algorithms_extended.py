"""Extended baselines: FedNova, FedAvgM, AdaptiveFedTrip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    AdaptiveFedTrip,
    FedAvg,
    FedAvgM,
    FedNova,
    FedTrip,
    build_strategy,
)
from repro.algorithms.fednova import _effective_tau
from repro.fl import FLConfig, Simulation


def _run(data, strategy, config, **kw):
    sim = Simulation(data, strategy, config, model_name="mlp", **kw)
    hist = sim.run()
    sim.close()
    return sim, hist


class TestEffectiveTau:
    def test_plain_sgd_is_step_count(self):
        assert _effective_tau(7, 0.0) == 7.0

    def test_momentum_amplifies(self):
        assert _effective_tau(7, 0.9) > 7.0

    def test_limit_matches_formula(self):
        m, steps = 0.5, 10
        expected = (steps - m * (1 - m**steps) / (1 - m)) / (1 - m)
        assert _effective_tau(steps, m) == pytest.approx(expected)


class TestFedNova:
    def test_registered(self):
        assert build_strategy("fednova").name == "fednova"

    def test_equal_shards_close_to_fedavg(self, tiny_data, small_config):
        """With equal shard sizes and equal tau, normalized averaging is a
        reweighting of the same displacements: results should stay close to
        FedAvg (identical in the homogeneous-tau case)."""
        _, h_nova = _run(tiny_data, FedNova(), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        # Equal shard sizes -> taus equal -> tau_eff/tau = 1 -> identical.
        np.testing.assert_allclose(h_nova.accuracies(), h_avg.accuracies(), atol=1e-5)

    def test_heterogeneous_epochs_still_learns(self, tiny_data):
        cfg = FLConfig(rounds=4, n_clients=6, clients_per_round=3, batch_size=10,
                       local_epochs=2, lr=0.05, seed=0)
        _, hist = _run(tiny_data, FedNova(), cfg)
        assert hist.best_accuracy() > 30.0

    def test_uploads_tau(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedNova(), small_config, model_name="mlp")
        sim.run_round()
        sim.close()  # no error => tau_eff was present during aggregation


class TestFedAvgM:
    def test_beta_zero_is_fedavg(self, tiny_data, small_config):
        _, h_m = _run(tiny_data, FedAvgM(beta=0.0), small_config)
        _, h_avg = _run(tiny_data, FedAvg(), small_config)
        np.testing.assert_allclose(h_m.accuracies(), h_avg.accuracies(), atol=1e-5)

    def test_momentum_state_accumulates(self, tiny_data, small_config):
        sim = Simulation(tiny_data, FedAvgM(beta=0.9), small_config, model_name="mlp")
        sim.run()
        assert any(np.abs(v).sum() > 0 for v in sim.server.state["v"])
        sim.close()

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            FedAvgM(beta=1.0)


class TestAdaptiveFedTrip:
    def test_registered_with_paper_defaults(self):
        s = build_strategy("fedtrip_adaptive", model="mlp")
        assert s.mu == 1.0

    def test_mu_stays_in_bounds(self, tiny_data, small_config):
        strat = AdaptiveFedTrip(mu=0.4, mu_min=0.1, mu_max=1.0, growth=2.0)
        sim = Simulation(tiny_data, strat, small_config, model_name="mlp")
        sim.run()
        assert 0.1 <= sim.server.state["mu"] <= 1.0
        sim.close()

    def test_mu_tightens_on_loss_increase(self):
        strat = AdaptiveFedTrip(mu=0.4, mu_min=0.01, mu_max=2.0, growth=1.5)
        state = strat.server_init([np.zeros(2)], FLConfig(rounds=1, n_clients=1, clients_per_round=1))

        from repro.fl.types import ClientUpdate

        def fake_updates(loss):
            return [ClientUpdate(0, [np.zeros(2, dtype=np.float32)], 1, loss)]

        strat.post_aggregate([np.zeros(2)], [np.zeros(2)], fake_updates(1.0), state,
                             FLConfig(rounds=1, n_clients=1, clients_per_round=1))
        mu0 = state["mu"]
        strat.post_aggregate([np.zeros(2)], [np.zeros(2)], fake_updates(2.0), state,
                             FLConfig(rounds=1, n_clients=1, clients_per_round=1))
        assert state["mu"] == pytest.approx(mu0 * 1.5)

    def test_mu_relaxes_after_patience(self):
        strat = AdaptiveFedTrip(mu=0.4, growth=2.0, patience=2)
        cfg = FLConfig(rounds=1, n_clients=1, clients_per_round=1)
        state = strat.server_init([np.zeros(2)], cfg)

        from repro.fl.types import ClientUpdate

        def step(loss):
            strat.post_aggregate(
                [np.zeros(2)], [np.zeros(2)],
                [ClientUpdate(0, [np.zeros(2, dtype=np.float32)], 1, loss)],
                state, cfg,
            )

        step(2.0)        # set prev
        step(1.5)        # improving (streak 1)
        step(1.0)        # improving (streak 2 -> relax)
        assert state["mu"] == pytest.approx(0.2)

    def test_trains_end_to_end(self, tiny_data, small_config):
        _, hist = _run(tiny_data, AdaptiveFedTrip(mu=0.4), small_config)
        assert hist.best_accuracy() > 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFedTrip(mu=0.4, mu_min=0.5)
        with pytest.raises(ValueError):
            AdaptiveFedTrip(growth=1.0)
        with pytest.raises(ValueError):
            AdaptiveFedTrip(patience=0)
