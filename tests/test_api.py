"""The unified ExperimentSpec + callback-driven Engine front door."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.api import (
    Callback,
    Checkpointer,
    DriftTracker,
    EarlyStopping,
    Engine,
    ExperimentSpec,
    available_samplers,
    build_sampler,
    register_sampler,
    run_experiment,
)
from repro.algorithms import build_strategy
from repro.cli import main as cli_main
from repro.data import build_federated_data
from repro.fl import FLConfig, Simulation
from repro.fl.availability import DropoutSampler
from repro.fl.executor import SerialExecutor, ThreadedExecutor, WorkerContext
from repro.io import load_checkpoint, load_history, save_history
from repro.models import build_mlp

TINY = dict(dataset="tiny", model="mlp", method="fedavg", n_clients=4,
            clients_per_round=2, rounds=2, batch_size=20, lr=0.05)


def tiny_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec(**{**TINY, **overrides})


class TestExperimentSpec:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(**TINY, overrides={"mu": 0.4},
                              sampler="dropout", sampler_kwargs={"dropout": 0.2})
        back = ExperimentSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.cell_key() == spec.cell_key()

    def test_to_dict_is_json_serializable(self):
        spec = ExperimentSpec(**TINY, overrides={"mu": 0.4})
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ExperimentSpec.from_dict(payload) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            ExperimentSpec.from_dict({"dataset": "tiny", "typo_field": 1})

    def test_overrides_normalized_to_sorted_pairs(self):
        a = ExperimentSpec(**TINY, overrides={"mu": 0.4, "alpha_lr": 0.1})
        b = ExperimentSpec(**TINY, overrides=(("mu", 0.4), ("alpha_lr", 0.1)))
        assert a == b
        assert a.overrides == (("alpha_lr", 0.1), ("mu", 0.4))

    def test_spec_is_frozen_and_hashable(self):
        spec = ExperimentSpec(**TINY)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.lr = 0.1
        assert spec in {spec}

    def test_list_valued_kwargs_stay_hashable(self):
        spec = ExperimentSpec(**TINY, sampler="weighted",
                              sampler_kwargs={"weights": [1.0, 2.0, 1.0, 1.0]})
        assert spec in {spec}  # lists canonicalized to tuples
        assert ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        hist = run_experiment(spec)
        assert len(hist) == TINY["rounds"]

    def test_run_experiment_accepts_prebuilt_data(self):
        spec = ExperimentSpec(**TINY)
        data = spec.build_data()
        h1 = run_experiment(spec, data=data)
        h2 = run_experiment(spec)
        np.testing.assert_array_equal(h1.accuracies(), h2.accuracies())

    def test_cell_key_stable_and_discriminating(self):
        spec = ExperimentSpec(**TINY)
        assert spec.cell_key() == ExperimentSpec(**TINY).cell_key()
        assert spec.cell_key() != spec.with_axis("lr", 0.06).cell_key()
        assert spec.cell_key() != spec.with_axis("mu", 0.4).cell_key()
        # 16-hex-digit blake2b digest; independent of construction order.
        assert len(spec.cell_key()) == 16
        int(spec.cell_key(), 16)

    def test_with_axis_unknown_name_goes_to_overrides(self):
        spec = ExperimentSpec(**TINY)
        cell = spec.with_axis("mu", 0.8)
        assert dict(cell.overrides) == {"mu": 0.8}
        assert spec.overrides == ()  # frozen original untouched

    def test_builders(self):
        spec = ExperimentSpec(**TINY, target_accuracy=90.0)
        config = spec.build_config()
        assert isinstance(config, FLConfig)
        assert config.target_accuracy == 90.0
        data = spec.build_data()
        assert data.n_clients == spec.n_clients
        assert spec.build_strategy().name == "fedavg"
        assert spec.build_sampler().clients_per_round == spec.clients_per_round


class TestSamplerRegistry:
    def test_builtins_registered(self):
        assert {"uniform", "weighted", "fixed", "dropout", "diurnal"} <= set(
            available_samplers()
        )

    def test_build_dropout(self):
        s = build_sampler("dropout", n_clients=10, clients_per_round=4, seed=0,
                          dropout=0.3)
        assert isinstance(s, DropoutSampler)
        assert s.dropout == 0.3
        assert len(s.select(0)) <= 10

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            build_sampler("nope", n_clients=4, clients_per_round=2)

    def test_weighted_needs_matching_length(self):
        with pytest.raises(ValueError, match="weights"):
            build_sampler("weighted", n_clients=4, clients_per_round=2,
                          weights=[1.0, 2.0])

    def test_custom_registration(self):
        class LastK:
            def __init__(self, n_clients, clients_per_round):
                self.n_clients = n_clients
                self.clients_per_round = clients_per_round

            def select(self, round_idx):
                return list(range(self.n_clients - self.clients_per_round,
                                  self.n_clients))

        register_sampler("lastk", lambda n_clients, clients_per_round, seed:
                         LastK(n_clients, clients_per_round))
        try:
            spec = ExperimentSpec(**TINY, sampler="lastk")
            hist = run_experiment(spec)
            assert all(rec.selected == [2, 3] for rec in hist.records)
        finally:
            import repro.api.registry as reg
            del reg._SAMPLERS["lastk"]

    def test_spec_runs_with_availability_sampler(self):
        hist = run_experiment(ExperimentSpec(**TINY, sampler="diurnal",
                                             sampler_kwargs={"phases": 2}))
        assert len(hist) == TINY["rounds"]


class _Spy(Callback):
    def __init__(self):
        self.calls = []

    def on_round_start(self, engine, round_idx, selected):
        self.calls.append(("on_round_start", round_idx, tuple(selected)))

    def on_client_update(self, engine, round_idx, update):
        self.calls.append(("on_client_update", round_idx, update.client_id))

    def on_aggregate(self, engine, round_idx, updates, global_weights):
        self.calls.append(("on_aggregate", round_idx, len(updates)))

    def on_evaluate(self, engine, round_idx, accuracy, loss):
        self.calls.append(("on_evaluate", round_idx, accuracy))

    def on_round_end(self, engine, record):
        self.calls.append(("on_round_end", record.round_idx))

    def on_fit_end(self, engine, history):
        self.calls.append(("on_fit_end", len(history)))


class TestCallbackLifecycle:
    def test_invocation_order(self):
        spy = _Spy()
        run_experiment(ExperimentSpec(**TINY), callbacks=[spy])
        names = [c[0] for c in spy.calls]
        per_round = ["on_round_start",
                     "on_client_update", "on_client_update",
                     "on_aggregate", "on_evaluate", "on_round_end"]
        assert names == per_round * TINY["rounds"] + ["on_fit_end"]

    def test_on_evaluate_skipped_between_eval_every(self):
        spy = _Spy()
        spec = tiny_spec(rounds=4, eval_every=3)
        run_experiment(spec, callbacks=[spy])
        evaluated = [c[1] for c in spy.calls if c[0] == "on_evaluate"]
        assert evaluated == [0, 3]  # every 3rd round + the last round

    def test_aggregate_sees_pre_aggregation_weights(self):
        captured = {}

        class Grab(Callback):
            def on_aggregate(self, engine, round_idx, updates, global_weights):
                if round_idx == 0:
                    captured["initial"] = [w.copy() for w in global_weights]

        spec = tiny_spec(rounds=1)
        engine = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                        model_name=spec.model, callbacks=[Grab()])
        initial = [w.copy() for w in engine.server.weights]
        engine.run()
        engine.close()
        for a, b in zip(captured["initial"], initial):
            np.testing.assert_array_equal(a, b)

    def test_legacy_update_observers_still_fire(self):
        seen = []
        spec = ExperimentSpec(**TINY)
        engine = Engine(spec.build_data(), spec.build_strategy(), spec.build_config(),
                        model_name=spec.model)
        engine.update_observers.append(lambda updates, weights: seen.append(len(updates)))
        engine.run()
        engine.close()
        assert seen == [TINY["clients_per_round"]] * TINY["rounds"]


class TestEarlyStopping:
    def test_target_accuracy_stops_and_records_reason(self):
        spec = tiny_spec(rounds=50, target_accuracy=10.0)
        hist = run_experiment(spec)
        assert len(hist) < 50
        assert "target_accuracy" in hist.stop_reason

    def test_legacy_simulation_honours_config_target(self, tiny_data):
        config = FLConfig(rounds=50, n_clients=6, clients_per_round=3,
                          batch_size=20, lr=0.05, seed=1, target_accuracy=10.0)
        sim = Simulation(tiny_data, build_strategy("fedavg"), config, model_name="mlp")
        hist = sim.run()
        sim.close()
        assert len(hist) < 50
        assert "target_accuracy" in hist.stop_reason

    def test_unreached_target_runs_all_rounds(self):
        spec = ExperimentSpec(**TINY, target_accuracy=101.0)
        hist = run_experiment(spec)
        assert len(hist) == TINY["rounds"]
        assert hist.stop_reason is None

    def test_patience_stop(self):
        stopper = EarlyStopping(patience=2, min_delta=200.0)  # nothing improves by 200pts
        spec = tiny_spec(rounds=30)
        hist = run_experiment(spec, callbacks=[stopper])
        # first eval sets best; the next two are "stale" -> stop at round 2.
        assert len(hist) == 3
        assert "no improvement" in hist.stop_reason

    def test_requires_a_criterion(self):
        with pytest.raises(ValueError):
            EarlyStopping()

    def test_stop_reason_survives_history_io(self, tmp_path):
        hist = run_experiment(tiny_spec(rounds=50, target_accuracy=10.0))
        back = load_history(save_history(hist, str(tmp_path / "h.json")))
        assert back.stop_reason == hist.stop_reason
        assert len(back) == len(hist)


class TestEquivalence:
    """run_experiment(spec) must reproduce the legacy Simulation path exactly."""

    @pytest.mark.parametrize("method,overrides", [("fedavg", {}), ("fedtrip", {"mu": 0.4})])
    def test_identical_round_records(self, method, overrides):
        spec = ExperimentSpec(dataset="tiny", model="mlp", method=method,
                              partition="dirichlet", alpha=0.5,
                              n_clients=6, clients_per_round=3, rounds=3,
                              batch_size=20, lr=0.05, seed=1, overrides=overrides)
        new = run_experiment(spec)

        data = build_federated_data("tiny", n_clients=6, partition="dirichlet",
                                    alpha=0.5, seed=1)
        config = FLConfig(rounds=3, n_clients=6, clients_per_round=3,
                          batch_size=20, lr=0.05, seed=1)
        strategy = build_strategy(method, model="mlp", dataset="tiny", **overrides)
        sim = Simulation(data, strategy, config, model_name="mlp")
        legacy = sim.run()
        sim.close()

        assert len(new) == len(legacy)
        for a, b in zip(new.records, legacy.records):
            # Byte-identical except wall time, which is nondeterministic.
            assert a.round_idx == b.round_idx
            assert a.selected == b.selected
            assert a.test_accuracy == b.test_accuracy
            assert a.test_loss == b.test_loss
            assert a.mean_train_loss == b.mean_train_loss
            assert a.cumulative_flops == b.cumulative_flops
            assert a.cumulative_comm_bytes == b.cumulative_comm_bytes

    def test_run_experiment_deterministic(self):
        spec = ExperimentSpec(**TINY)
        h1, h2 = run_experiment(spec), run_experiment(spec)
        np.testing.assert_array_equal(h1.accuracies(), h2.accuracies())
        np.testing.assert_array_equal(h1.train_losses(), h2.train_losses())


class TestBorrowWorker:
    def _make_worker(self):
        model = build_mlp((1, 8, 8), 4)
        from repro.nn.losses import CrossEntropyLoss
        from repro.optim import SGD
        return WorkerContext(model, build_mlp((1, 8, 8), 4),
                             SGD(model.parameters(), lr=0.1), CrossEntropyLoss())

    def test_serial_returns_resident_worker(self):
        ex = SerialExecutor(self._make_worker)
        assert isinstance(ex.borrow_worker(), WorkerContext)
        assert ex.borrow_worker() is ex.borrow_worker()
        ex.close()

    def test_threaded_returns_none(self):
        ex = ThreadedExecutor(self._make_worker, n_workers=2)
        assert ex.borrow_worker() is None
        ex.close()

    def test_threaded_engine_evaluates_without_resident_worker(self):
        hist = run_experiment(ExperimentSpec(**TINY, n_workers=2))
        assert np.isfinite(hist.accuracies()).all()


class TestBuiltinCallbacks:
    def test_checkpointer_writes_rounds_and_final(self, tmp_path):
        ckpt = Checkpointer(str(tmp_path), every=1)
        hist = run_experiment(ExperimentSpec(**TINY), callbacks=[ckpt])
        assert len(ckpt.saved) == TINY["rounds"] + 1  # per-round + final
        # Per-round checkpoints carry their own round index and accuracy...
        for i in range(TINY["rounds"]):
            meta = load_checkpoint(build_mlp((1, 8, 8), 4),
                                   str(tmp_path / f"round_{i}.npz"))
            assert meta["round"] == i
            assert meta["test_accuracy"] == hist.records[i].test_accuracy
        # ...while final.npz records the number of completed rounds.
        meta = load_checkpoint(build_mlp((1, 8, 8), 4), str(tmp_path / "final.npz"))
        assert meta["round"] == TINY["rounds"]

    def test_drift_tracker_callback(self):
        tracker = DriftTracker()
        run_experiment(ExperimentSpec(**TINY), callbacks=[tracker])
        summary = tracker.summary()
        assert summary["rounds"] == TINY["rounds"]
        assert summary["mean_divergence"] >= 0.0


class TestCLIFrontDoor:
    ARGS = ["--dataset", "tiny", "--model", "mlp", "--clients", "4",
            "--clients-per-round", "2", "--rounds", "2", "--batch-size", "20"]

    def test_train_with_sampler_flag(self, capsys):
        rc = cli_main(["train", *self.ARGS, "--method", "fedavg",
                       "--sampler", "dropout", "--sampler-arg", "dropout=0.2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sampler=dropout" in out

    def test_train_target_accuracy_stops(self, capsys):
        rc = cli_main(["train", *self.ARGS, "--method", "fedavg",
                       "--rounds", "50", "--target-accuracy", "10"])
        assert rc == 0
        assert "stopped early" in capsys.readouterr().out

    def test_bad_sampler_arg_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["train", *self.ARGS, "--sampler-arg", "not-a-pair"])
