"""FL runtime pieces: config, history, sampling, aggregation, evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.fl import (
    Client,
    FixedSampler,
    FLConfig,
    History,
    UniformSampler,
    WeightedSampler,
    evaluate_model,
    fedavg_aggregate,
    full_batch_gradient,
    uniform_aggregate,
    weighted_average_trees,
)
from repro.fl.types import ClientUpdate, RoundRecord
from repro.models import build_mlp


class TestFLConfig:
    def test_paper_defaults(self):
        cfg = FLConfig()
        assert (cfg.rounds, cfg.batch_size, cfg.local_epochs) == (100, 50, 1)
        assert (cfg.lr, cfg.momentum) == (0.01, 0.9)
        assert (cfg.n_clients, cfg.clients_per_round) == (10, 4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"clients_per_round": 11},
            {"clients_per_round": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"optimizer": "lbfgs"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)


def _record(i, acc, flops=0.0):
    return RoundRecord(
        round_idx=i,
        selected=[0],
        test_accuracy=acc,
        test_loss=0.0 if acc is not None else None,
        mean_train_loss=1.0,
        cumulative_flops=flops,
        cumulative_comm_bytes=float(i),
        wall_seconds=0.0,
    )


class TestHistory:
    def test_rounds_to_accuracy(self):
        h = History()
        for i, acc in enumerate([10, 40, 60, 75, 80]):
            h.append(_record(i, acc))
        assert h.rounds_to_accuracy(60.0) == 3  # 1-based count: hit at index 2
        assert h.rounds_to_accuracy(80.0) == 5
        assert h.rounds_to_accuracy(95.0) is None

    def test_flops_to_accuracy(self):
        h = History()
        for i, acc in enumerate([10, 60, 80]):
            h.append(_record(i, acc, flops=1e9 * (i + 1)))
        assert h.flops_to_accuracy(55.0) == pytest.approx(2.0)

    def test_ema_smooths(self):
        h = History()
        for i, acc in enumerate([0, 100, 0, 100]):
            h.append(_record(i, acc))
        ema = h.ema_accuracy(alpha=0.5)
        assert ema[0] == 0
        assert 0 < ema[1] < 100
        # EMA variance is lower than raw variance.
        assert np.nanstd(ema) < np.nanstd(h.accuracies())

    def test_ema_handles_nan_gaps(self):
        h = History()
        h.append(_record(0, 50.0))
        h.append(_record(1, None))
        h.append(_record(2, 70.0))
        ema = h.ema_accuracy(0.5)
        assert ema[1] == 50.0  # carried forward

    def test_final_accuracy_stats(self):
        h = History()
        for i in range(20):
            h.append(_record(i, float(i)))
        stats = h.final_accuracy_stats(last_k=10)
        assert stats["mean"] == pytest.approx(14.5)
        assert stats["min"] == 10 and stats["max"] == 19
        assert stats["q1"] <= stats["median"] <= stats["q3"]

    def test_best_accuracy(self):
        h = History()
        for i, acc in enumerate([10, 90, 50]):
            h.append(_record(i, acc))
        assert h.best_accuracy() == 90

    def test_monotone_round_indices_enforced(self):
        h = History()
        h.append(_record(3, 10))
        with pytest.raises(ValueError):
            h.append(_record(3, 20))

    def test_accuracy_at_round(self):
        h = History()
        h.append(_record(0, 10))
        h.append(_record(1, 20))
        assert h.accuracy_at_round(1) == 20
        assert h.accuracy_at_round(9) is None

    def test_empty_stats_raise(self):
        with pytest.raises(ValueError):
            History().final_accuracy_stats()


class TestSamplers:
    def test_uniform_selects_k_distinct(self):
        s = UniformSampler(10, 4, seed=0)
        for t in range(20):
            sel = s.select(t)
            assert len(sel) == 4 == len(set(sel))
            assert all(0 <= c < 10 for c in sel)

    def test_uniform_deterministic_per_round(self):
        assert UniformSampler(10, 4, seed=1).select(5) == UniformSampler(10, 4, seed=1).select(5)

    def test_uniform_covers_all_clients_eventually(self):
        s = UniformSampler(10, 4, seed=0)
        seen = set()
        for t in range(50):
            seen.update(s.select(t))
        assert seen == set(range(10))

    def test_participation_rate(self):
        assert UniformSampler(50, 4).participation_rate == pytest.approx(0.08)

    def test_weighted_prefers_heavy(self):
        w = [10.0] + [0.01] * 9
        s = WeightedSampler(w, 2, seed=0)
        picks = [0 in s.select(t) for t in range(50)]
        assert np.mean(picks) > 0.9

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            WeightedSampler([-1.0, 1.0], 1)

    def test_fixed_schedule_cycles(self):
        s = FixedSampler([[0, 1], [2, 3]])
        assert s.select(0) == [0, 1]
        assert s.select(1) == [2, 3]
        assert s.select(2) == [0, 1]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            UniformSampler(3, 4)


class TestAggregation:
    def _upd(self, cid, values, n):
        return ClientUpdate(client_id=cid, weights=[np.array(values, dtype=np.float32)],
                            num_samples=n, train_loss=0.0)

    def test_fedavg_weighting(self):
        out = fedavg_aggregate([self._upd(0, [0.0], 1), self._upd(1, [3.0], 2)])
        np.testing.assert_allclose(out[0], [2.0])

    def test_uniform(self):
        out = uniform_aggregate([self._upd(0, [0.0], 1), self._upd(1, [3.0], 99)])
        np.testing.assert_allclose(out[0], [1.5])

    def test_identity_when_equal(self, rng):
        w = [rng.standard_normal((3, 2)).astype(np.float32)]
        ups = [ClientUpdate(i, [w[0].copy()], 5, 0.0) for i in range(4)]
        out = fedavg_aggregate(ups)
        np.testing.assert_allclose(out[0], w[0], atol=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([])

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            weighted_average_trees([[np.zeros(2)]], [-1.0])
        with pytest.raises(ValueError):
            weighted_average_trees([[np.zeros(2)]], [1.0, 2.0])

    def test_dtype_preserved(self):
        out = weighted_average_trees(
            [[np.zeros(2, dtype=np.float32)], [np.ones(2, dtype=np.float32)]], [1, 1]
        )
        assert out[0].dtype == np.float32


class TestClient:
    def test_empty_shard_rejected(self):
        ds = ArrayDataset(np.zeros((0, 1), dtype=np.float32), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            Client(0, ds)

    def test_iterations_per_round(self, rng):
        ds = ArrayDataset(rng.standard_normal((45, 2)).astype(np.float32),
                          rng.integers(0, 2, 45))
        c = Client(0, ds)
        cfg = FLConfig(rounds=1, n_clients=1, clients_per_round=1, batch_size=20, local_epochs=2)
        assert c.iterations_per_round(cfg) == 3 * 2

    def test_round_rng_independent(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 2)).astype(np.float32),
                          rng.integers(0, 2, 10))
        c = Client(3, ds, seed=0)
        a = c.round_rng(0).random(4)
        b = c.round_rng(1).random(4)
        assert not np.array_equal(a, b)
        np.testing.assert_array_equal(a, Client(3, ds, seed=0).round_rng(0).random(4))


class TestEvaluation:
    def test_perfect_model_scores_100(self, rng):
        """A model whose head memorizes a linear rule gets 100%."""
        model = build_mlp((1, 2, 2), 2, hidden=4, rng=rng)
        x = rng.standard_normal((40, 1, 2, 2)).astype(np.float32)
        y = (x.reshape(40, -1).sum(axis=1) > 0).astype(np.int64)
        ds = ArrayDataset(x, y)
        # train briefly to overfit
        from repro.nn.losses import CrossEntropyLoss
        from repro.optim import SGD

        opt = SGD(model.parameters(), lr=0.5)
        crit = CrossEntropyLoss()
        for _ in range(300):
            logits = model(x)
            _, d = crit(logits, y)
            model.zero_grad()
            model.backward(d)
            opt.step()
        acc, loss = evaluate_model(model, ds)
        assert acc > 95.0
        assert loss < 0.5

    def test_full_batch_gradient_matches_single_batch(self, rng):
        model = build_mlp((1, 2, 2), 2, hidden=4, rng=rng)
        x = rng.standard_normal((30, 1, 2, 2)).astype(np.float32)
        y = rng.integers(0, 2, 30).astype(np.int64)
        ds = ArrayDataset(x, y)
        g_chunked = full_batch_gradient(model, ds, batch_size=7)
        g_whole = full_batch_gradient(model, ds, batch_size=30)
        for a, b in zip(g_chunked, g_whole):
            np.testing.assert_allclose(a, b, atol=1e-5)

    def test_gradient_leaves_weights_unchanged(self, rng):
        model = build_mlp((1, 2, 2), 2, hidden=4, rng=rng)
        before = model.get_weights()
        x = rng.standard_normal((10, 1, 2, 2)).astype(np.float32)
        ds = ArrayDataset(x, rng.integers(0, 2, 10).astype(np.int64))
        full_batch_gradient(model, ds)
        for a, b in zip(before, model.get_weights()):
            np.testing.assert_array_equal(a, b)
